//! Quickstart: load a TPC-H dataset into simulated S3, deploy the Skyrise
//! query engine on the simulated Lambda platform, run TPC-H Q6, and print
//! the result, runtime, and the simulated AWS invoice.
//!
//! ```sh
//! cargo run --release -p skyrise --example quickstart
//! ```

use skyrise::data::tpch;
use skyrise::engine::{load_dataset, queries};
use skyrise::prelude::*;

fn main() {
    // Everything runs on a deterministic virtual clock: same seed, same
    // run, down to the last millisecond and cent.
    let mut sim = Sim::new(42);
    let ctx = sim.ctx();

    let handle = sim.spawn(async move {
        // 1. Serverless infrastructure: an S3 bucket and a Lambda platform
        //    in us-east-1, sharing one usage meter (the AWS bill).
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());

        // 2. Generate TPC-H data and store it as partitioned SPF files.
        let tables = tpch::generate(0.05, 7);
        println!(
            "generated lineitem: {} rows, orders: {} rows",
            tables.lineitem.num_rows(),
            tables.orders.num_rows()
        );
        for (name, parts, table) in [
            ("h_lineitem", 16, &tables.lineitem),
            ("h_orders", 4, &tables.orders),
        ] {
            let meta = load_dataset(
                &storage,
                &DatasetLayout {
                    name: name.into(),
                    partitions: parts,
                    target_partition_logical_bytes: None,
                    rows_per_group: 8192,
                },
                table,
            )
            .expect("dataset loads");
            println!(
                "loaded {name}: {} partitions, {:.1} MiB",
                meta.partitions.len(),
                meta.total_logical_bytes() as f64 / MIB as f64
            );
        }

        // 3. Deploy the engine (coordinator + worker + fan-out functions)
        //    and run TPC-H Q6.
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
        let response = engine
            .run(
                &queries::q6(),
                QueryConfig {
                    target_bytes_per_worker: 4 << 20,
                    ..QueryConfig::default()
                },
            )
            .await
            .expect("query succeeds");

        println!("\nTPC-H Q6 on serverless infrastructure:");
        println!(
            "  revenue        = {:.2}",
            response.rows.as_ref().unwrap()[0][0].as_f64()
        );
        println!("  runtime        = {:.3} s", response.runtime_secs);
        println!(
            "  worker time    = {:.3} s (cumulated)",
            response.cumulative_worker_secs
        );
        println!("  peak workers   = {}", response.peak_workers());
        println!("  storage req.   = {}", response.total_requests());
        for stage in &response.stages {
            println!(
                "    stage p{}: {} workers, {:.3} s, {:.1} MiB read",
                stage.pipeline,
                stage.fragments,
                stage.duration_secs,
                stage.logical_bytes_read as f64 / MIB as f64
            );
        }

        // 4. The invoice.
        let report = meter.borrow().report();
        println!("\nsimulated AWS invoice:");
        println!("  Lambda compute  ${:.6}", report.lambda_compute_usd);
        println!("  Lambda requests ${:.6}", report.lambda_request_usd);
        println!("  storage requests${:.6}", report.storage_request_usd);
        println!("  total           ${:.6}", report.total_usd());
    });

    sim.run();
    handle.try_take().expect("example completed");
    println!("\nok: quickstart finished deterministically");
}
