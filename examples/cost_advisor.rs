//! Cost advisor: apply the paper's Sec. 5 break-even analysis to a
//! workload description and print deployment advice — which compute mode,
//! which storage tier for caching, and which shuffle medium.
//!
//! ```sh
//! cargo run --release -p skyrise --example cost_advisor
//! ```

use skyrise::micro::text_table;
use skyrise::pricing::breakeven::{
    humanize_secs, table7_cell, table8_clusters, table8_s3_express, table8_s3_standard,
    HierarchyPair,
};

/// A user workload to advise on.
struct Workload {
    name: &'static str,
    /// Queries per hour.
    queries_per_hour: f64,
    /// Cost of one query on FaaS (cents) and the peak-provisioned
    /// cluster's hourly price (dollars) — e.g. measured via Table 6.
    faas_cents_per_query: f64,
    cluster_usd_per_hour: f64,
    /// Typical storage access size (bytes) and re-access interval (secs).
    access_bytes: u64,
    reaccess_secs: f64,
    /// Mean shuffle I/O size (bytes).
    shuffle_bytes: u64,
}

fn advise(w: &Workload) -> Vec<String> {
    let mut row = vec![w.name.to_string()];

    // Compute: FaaS vs peak-provisioned IaaS (Sec. 5.2).
    let break_even = w.cluster_usd_per_hour / (w.faas_cents_per_query / 100.0);
    row.push(if w.queries_per_hour < break_even {
        format!("FaaS (below {break_even:.0} Q/h)")
    } else {
        format!("IaaS (above {break_even:.0} Q/h)")
    });

    // Caching tier: find the cheapest tier whose break-even interval is
    // shorter than the re-access interval (Sec. 5.3.1 / Table 7).
    let tiers = [
        (HierarchyPair::RamSsd, "cache in RAM (over SSD)"),
        (HierarchyPair::SsdS3Standard, "cache on SSD (over S3)"),
    ];
    let mut cache = "leave in S3 (cold data)".to_string();
    for (pair, label) in tiers {
        let bei = table7_cell(pair, w.access_bytes);
        if w.reaccess_secs <= bei {
            cache = format!("{label} (BEI {})", humanize_secs(bei));
            break;
        }
    }
    row.push(cache);

    // Shuffle medium (Sec. 5.3.2 / Table 8): object storage wins when
    // accesses exceed the break-even size for the cluster type.
    let cluster = &table8_clusters()[0]; // c6g.xlarge on-demand
    let beas_mb = table8_s3_standard(cluster);
    let shuffle_mb = w.shuffle_bytes as f64 / 1e6;
    row.push(if shuffle_mb >= beas_mb {
        format!(
            "S3 Standard ({} >= {:.0} MB)",
            format_mb(shuffle_mb),
            beas_mb
        )
    } else {
        format!(
            "VM-based store ({} < {:.0} MB) or combine writes",
            format_mb(shuffle_mb),
            beas_mb
        )
    });
    let _ = table8_s3_express(cluster); // (never breaks even; see Table 8)
    row
}

fn format_mb(mb: f64) -> String {
    if mb < 1.0 {
        format!("{:.0} KB", mb * 1000.0)
    } else {
        format!("{mb:.1} MB")
    }
}

fn main() {
    println!("Skyrise cost advisor — the paper's Sec. 5 economics, applied\n");
    let workloads = [
        Workload {
            name: "nightly ETL",
            queries_per_hour: 4.0,
            faas_cents_per_query: 21.2,
            cluster_usd_per_hour: 38.6,
            access_bytes: 16 << 20,
            reaccess_secs: 24.0 * 3600.0,
            shuffle_bytes: 8 << 20,
        },
        Workload {
            name: "interactive BI",
            queries_per_hour: 900.0,
            faas_cents_per_query: 4.9,
            cluster_usd_per_hour: 27.3,
            access_bytes: 4 << 10,
            reaccess_secs: 10.0,
            shuffle_bytes: 256 << 10,
        },
        Workload {
            name: "hourly reporting",
            queries_per_hour: 40.0,
            faas_cents_per_query: 12.0,
            cluster_usd_per_hour: 30.0,
            access_bytes: 4 << 20,
            reaccess_secs: 3600.0,
            shuffle_bytes: 3 << 20,
        },
    ];

    let mut rows = vec![vec![
        "Workload".to_string(),
        "Compute".into(),
        "Hot-data tier".into(),
        "Shuffle medium".into(),
    ]];
    for w in &workloads {
        rows.push(advise(w));
    }
    println!("{}", text_table(&rows));

    println!("Rules derived from the paper:");
    println!(" - infrequent/peaky workloads pay off on FaaS; sustained rates on VMs");
    println!(" - hourly-accessed MiB-scale data is 'cold': keep it in object storage");
    println!(" - shuffles break even on S3 at ~2-16 MiB accesses; S3 Express never does");
}
