//! FaaS vs IaaS: run the paper's full query suite (TPC-H Q1, Q6, Q12 and
//! TPCx-BB Q3) on both execution modes of the Skyrise engine and compare
//! runtime and cost — a miniature of the paper's Sec. 5.2 analysis.
//!
//! ```sh
//! cargo run --release -p skyrise --example tpch_serverless
//! ```

use skyrise::data::{tpch, tpcxbb};
use skyrise::engine::{load_dataset, queries};
use skyrise::micro::text_table;
use skyrise::prelude::*;

fn load_all(storage: &Storage) {
    let t = tpch::generate(0.02, 7);
    let bb = tpcxbb::generate(0.2, 7);
    for (name, parts, table) in [
        ("h_lineitem", 16, &t.lineitem),
        ("h_orders", 4, &t.orders),
        ("bb_clickstreams", 8, &bb.clickstreams),
        ("bb_item", 1, &bb.item),
    ] {
        load_dataset(
            storage,
            &DatasetLayout {
                name: name.into(),
                partitions: parts,
                target_partition_logical_bytes: None,
                rows_per_group: 8192,
            },
            table,
        )
        .expect("dataset loads");
    }
}

fn main() {
    let mut sim = Sim::new(7);
    let ctx = sim.ctx();
    let handle = sim.spawn(async move {
        let config = QueryConfig {
            target_bytes_per_worker: 512 << 10,
            ..QueryConfig::default()
        };

        // --- FaaS deployment -------------------------------------------
        let faas_meter = shared_meter();
        let s1 = Storage::S3(S3Bucket::standard(&ctx, &faas_meter));
        load_all(&s1);
        let lambda = LambdaPlatform::new(&ctx, &faas_meter, Region::us_east_1());
        let faas = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), s1);
        faas.warm(32).await;

        // --- IaaS deployment (peak-provisioned VM cluster) -------------
        let iaas_meter = shared_meter();
        let s2 = Storage::S3(S3Bucket::standard(&ctx, &iaas_meter));
        load_all(&s2);
        let fleet = Ec2Fleet::new(&ctx, &iaas_meter);
        let vms = fleet
            .launch_many(&LaunchConfig::on_demand("c6g.xlarge"), 16)
            .await;
        let cluster = ShimCluster::new(&ctx, vms, 4);
        let cluster_usd_h = cluster.usd_per_hour();
        let iaas = Skyrise::deploy_simple(&ctx, ComputePlatform::Shim(cluster), s2);

        let mut rows = vec![vec![
            "Query".to_string(),
            "FaaS [s]".into(),
            "IaaS [s]".into(),
            "slowdown".into(),
            "peak workers".into(),
            "FaaS cost [c]".into(),
            "break-even [Q/h]".into(),
        ]];
        for plan in queries::suite() {
            let gb_s0 = faas_meter.borrow().lambda.gb_seconds;
            let inv0 = faas_meter.borrow().lambda.invocations;
            let f = faas.run(&plan, config.clone()).await.expect("faas");
            let gb_s1 = faas_meter.borrow().lambda.gb_seconds;
            let inv1 = faas_meter.borrow().lambda.invocations;
            let pricing = skyrise::pricing::LambdaPricing::arm();
            let cost = (gb_s1 - gb_s0) * pricing.gb_second()
                + (inv1 - inv0) as f64 * pricing.per_request;

            let i = iaas.run(&plan, config.clone()).await.expect("iaas");
            rows.push(vec![
                plan.name.clone(),
                format!("{:.3}", f.runtime_secs),
                format!("{:.3}", i.runtime_secs),
                format!("{:.2}x", f.runtime_secs / i.runtime_secs),
                f.peak_workers().to_string(),
                format!("{:.4}", cost * 100.0),
                format!("{:.0}", cluster_usd_h / cost),
            ]);
        }
        println!("{}", text_table(&rows));
        println!(
            "IaaS cluster: 16 x c6g.xlarge = ${cluster_usd_h:.2}/h (peak-provisioned)"
        );
        println!(
            "FaaS invoice so far: ${:.4}",
            faas_meter.borrow().report().total_usd()
        );
        println!(
            "\npaper Sec. 5.2: FaaS runs 6-10% slower but is economical below the\nbreak-even query rate; intra-query elasticity saves the peak-to-average factor."
        );
    });
    sim.run();
    handle.try_take().expect("example completed");
}
