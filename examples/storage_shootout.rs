//! Storage shootout: compare the four serverless storage services on the
//! three axes of the paper's Sec. 4.3 — throughput, IOPS, latency — and
//! print a buying-guide table.
//!
//! ```sh
//! cargo run --release -p skyrise --example storage_shootout
//! ```

use skyrise::micro::{run_closed_loop, text_table, StorageIoConfig};
use skyrise::prelude::*;
use skyrise::pricing::{StoragePricing, StorageService};

struct Row {
    name: &'static str,
    throughput_gib_s: f64,
    iops: f64,
    p50_ms: f64,
    p99_ms: f64,
    read_cost_cents_per_gib_s: f64,
}

fn bench_service(which: usize) -> Row {
    let mut sim = Sim::new(1000 + which as u64);
    let ctx = sim.ctx();
    let handle = sim.spawn(async move {
        let meter = shared_meter();
        let (storage, name, object): (Storage, &'static str, u64) = match which {
            0 => (
                Storage::S3(S3Bucket::standard(&ctx, &meter)),
                "S3 Standard",
                64 << 20,
            ),
            1 => (
                Storage::S3(S3Bucket::express(&ctx, &meter)),
                "S3 Express",
                64 << 20,
            ),
            2 => (
                Storage::Dynamo(DynamoTable::on_demand(&ctx, &meter)),
                "DynamoDB",
                400 << 10,
            ),
            _ => (
                Storage::Efs(EfsFilesystem::elastic(&ctx, &meter)),
                "EFS",
                4 << 20,
            ),
        };

        // Throughput: 32 clients x 32 threads moving large objects.
        let tput = run_closed_loop(
            &ctx,
            &storage,
            &StorageIoConfig {
                clients: 32,
                threads_per_client: 32,
                object_bytes: object,
                duration: SimDuration::from_secs(5),
                ..StorageIoConfig::default()
            },
        )
        .await
        .bytes_per_sec;

        // IOPS + latency: 1 KiB requests.
        let small = run_closed_loop(
            &ctx,
            &storage,
            &StorageIoConfig {
                clients: 48,
                threads_per_client: 32,
                object_bytes: 1024,
                duration: SimDuration::from_secs(5),
                ..StorageIoConfig::default()
            },
        )
        .await;

        let svc = match which {
            0 => StorageService::S3Standard,
            1 => StorageService::S3Express,
            2 => StorageService::DynamoDb,
            _ => StorageService::Efs,
        };
        // Cost of sustaining 1 GiB/s of reads for one second.
        let pricing = StoragePricing::of(svc);
        let per_req = pricing.request_cost(false, object);
        let reqs_per_gib_s = GIB as f64 / object as f64;
        let cost = per_req * reqs_per_gib_s * 100.0;

        Row {
            name,
            throughput_gib_s: tput / GIB as f64,
            iops: small.ops_per_sec,
            p50_ms: small.latency.median() * 1e3,
            p99_ms: small.latency.quantile(0.99) * 1e3,
            read_cost_cents_per_gib_s: cost,
        }
    });
    sim.run();
    handle.try_take().expect("bench completed")
}

fn main() {
    println!("Serverless storage shootout (simulated AWS, paper Sec. 4.3)\n");
    let rows: Vec<Row> = (0..4).map(bench_service).collect();
    let mut table = vec![vec![
        "Service".to_string(),
        "Throughput [GiB/s]".into(),
        "IOPS (1 KiB)".into(),
        "p50 [ms]".into(),
        "p99 [ms]".into(),
        "read cost [c/GiB/s]".into(),
    ]];
    for r in &rows {
        table.push(vec![
            r.name.into(),
            format!("{:.2}", r.throughput_gib_s),
            format!("{:.0}", r.iops),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p99_ms),
            format!("{:.5}", r.read_cost_cents_per_gib_s),
        ]);
    }
    println!("{}", text_table(&table));

    // The paper's conclusion, derived live from the measurements.
    let s3 = &rows[0];
    let best_tput = rows
        .iter()
        .max_by(|a, b| a.throughput_gib_s.total_cmp(&b.throughput_gib_s))
        .expect("rows");
    let best_iops = rows
        .iter()
        .max_by(|a, b| a.iops.total_cmp(&b.iops))
        .expect("rows");
    println!("highest throughput : {}", best_tput.name);
    println!("highest IOPS       : {}", best_iops.name);
    println!(
        "cheapest scalable  : {} ({:.5} c/GiB/s)",
        s3.name, s3.read_cost_cents_per_gib_s
    );
    println!("\npaper Sec. 4.3.4: \"S3 is the most suited option for scalable data processing\"");
}
