//! Fault-tolerance end-to-end: with a fault plan injecting transient
//! handler failures, sandbox crashes, coldstart spikes, and storage
//! throttling, the engine's per-task retries and speculative re-execution
//! keep the full query suite correct — while the same seed with retries
//! disabled demonstrably fails. Faulted executions must also stay
//! bit-for-bit deterministic (identical sanitizer digest trails).

use skyrise::data::{tpch, tpcxbb};
use skyrise::engine::reference::{self, rows_approx_eq};
use skyrise::engine::{queries, QueryConfig, Skyrise, TaskPolicy};
use skyrise::prelude::*;
use skyrise::sim::{FaultConfig, SanitizerReport};
use std::rc::Rc;

const SF: f64 = 0.01;
const SEED: u64 = 20_260_806;

/// Load the four datasets into a storage service (unscaled payloads).
fn load_all(storage: &Storage, tables: &tpch::TpchTables, bb: &tpcxbb::TpcxBbTables) {
    let layouts = [
        ("h_lineitem", 12, &tables.lineitem),
        ("h_orders", 6, &tables.orders),
        ("bb_clickstreams", 8, &bb.clickstreams),
        ("bb_item", 1, &bb.item),
    ];
    for (name, parts, batch) in layouts {
        skyrise::engine::load_dataset(
            storage,
            &DatasetLayout {
                name: name.into(),
                partitions: parts,
                target_partition_logical_bytes: None,
                rows_per_group: 4096,
            },
            batch,
        )
        .unwrap();
    }
}

/// Generate data, load it, and deploy a FaaS engine.
fn deploy(ctx: &SimCtx) -> Rc<Skyrise> {
    let meter = shared_meter();
    let storage = Storage::S3(S3Bucket::standard(ctx, &meter));
    let tables = tpch::generate(SF, SEED);
    let bb = tpcxbb::generate(SF * 10.0, SEED);
    load_all(&storage, &tables, &bb);
    let lambda = LambdaPlatform::new(ctx, &meter, Region::us_east_1());
    Skyrise::deploy_simple(ctx, ComputePlatform::Faas(lambda), storage)
}

/// An aggressive fault mix: roughly a third of invocations fail.
fn faulty() -> FaultConfig {
    FaultConfig {
        invoke_transient_prob: 0.3,
        sandbox_crash_prob: 0.05,
        coldstart_spike_prob: 0.1,
        storage_throttle_prob: 0.05,
        ..FaultConfig::default()
    }
}

/// Small fragments so multiple workers and real shuffles happen at SF 0.01.
fn config_with(policy: TaskPolicy) -> QueryConfig {
    QueryConfig {
        target_bytes_per_worker: 64 * 1024,
        max_parallelism: 6,
        include_rows: true,
        task_policy: policy,
    }
}

#[test]
fn suite_completes_correctly_under_faults_with_retries() {
    let mut sim = Sim::new(SEED);
    sim.install_faults(faulty());
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let engine = deploy(&ctx);
        let config = config_with(TaskPolicy {
            max_attempts: 10,
            ..TaskPolicy::default()
        });
        let mut responses = Vec::new();
        for plan in queries::suite() {
            responses.push(
                engine
                    .run(&plan, config.clone())
                    .await
                    .expect("query completes under injected faults"),
            );
        }
        responses
    });
    sim.run();
    let responses = h.try_take().expect("finished");

    // Every query still answers correctly (suite order: q1, q6, q12, bb_q3).
    let t = tpch::generate(SF, SEED);
    let bb = tpcxbb::generate(SF * 10.0, SEED);
    let q1_rows = responses[0].rows.as_ref().expect("q1 rows");
    assert!(
        rows_approx_eq(q1_rows, &reference::q1(&t.lineitem), 1e-9),
        "Q1 mismatch under faults"
    );
    let q6_got = responses[1].rows.as_ref().expect("q6 rows")[0][0].as_f64();
    let q6_ref = reference::q6(&t.lineitem);
    assert!(
        (q6_got - q6_ref).abs() / q6_ref < 1e-9,
        "Q6 {q6_got} vs reference {q6_ref}"
    );
    let q12_rows = responses[2].rows.as_ref().expect("q12 rows");
    assert!(
        rows_approx_eq(q12_rows, &reference::q12(&t.lineitem, &t.orders), 1e-9),
        "Q12 mismatch under faults"
    );
    let q3_rows = responses[3].rows.as_ref().expect("bb_q3 rows");
    assert!(
        rows_approx_eq(
            q3_rows,
            &reference::bb_q3(&bb.clickstreams, &bb.item, "Electronics", 10, 30),
            1e-9
        ),
        "BB Q3 mismatch under faults"
    );

    // The fault plan forced actual re-invocations somewhere in the suite.
    let retries: u32 = responses
        .iter()
        .flat_map(|r| &r.stages)
        .map(|s| s.task_retries)
        .sum();
    let speculative: u32 = responses
        .iter()
        .flat_map(|r| &r.stages)
        .map(|s| s.speculative_invokes)
        .sum();
    assert!(
        retries + speculative > 0,
        "expected nonzero retry/straggler counters under a 30% fault rate"
    );
    let failed_secs: f64 = responses
        .iter()
        .flat_map(|r| &r.stages)
        .map(|s| s.failed_attempt_secs)
        .sum();
    assert!(failed_secs > 0.0, "failed attempts should have cost time");
}

#[test]
fn stragglers_trigger_speculative_duplicates() {
    // No faults at all: speculation comes purely from the (deliberately
    // tiny) straggler timeout, and the first completion wins.
    let mut sim = Sim::new(SEED);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let engine = deploy(&ctx);
        let config = config_with(TaskPolicy {
            max_attempts: 3,
            straggler_base_secs: 0.15,
            straggler_bw: 1e12,
            straggler_slack: 1.0,
            speculate: true,
            ..TaskPolicy::default()
        });
        engine
            .run(&queries::q6(), config)
            .await
            .expect("q6 with speculation")
    });
    sim.run();
    let response = h.try_take().expect("finished");

    let got = response.rows.as_ref().expect("rows")[0][0].as_f64();
    let expect = reference::q6(&tpch::generate(SF, SEED).lineitem);
    assert!(
        (got - expect).abs() / expect < 1e-9,
        "speculative duplicates must not corrupt the result"
    );
    let speculative: u32 = response.stages.iter().map(|s| s.speculative_invokes).sum();
    assert!(
        speculative > 0,
        "a 150ms straggler timeout must re-trigger cold workers"
    );
    // No failures were injected, so no attempt actually failed.
    let retries: u32 = response.stages.iter().map(|s| s.task_retries).sum();
    assert_eq!(retries, 0, "speculation must not be booked as failure retries");
}

#[test]
fn retries_disabled_fails_under_same_faults() {
    // Same seed and fault plan as the passing suite run, but the policy
    // allows a single attempt per task: the first injected fault anywhere
    // is terminal for its query.
    let mut sim = Sim::new(SEED);
    sim.install_faults(faulty());
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let engine = deploy(&ctx);
        let config = config_with(TaskPolicy::disabled());
        for plan in queries::suite() {
            if let Err(err) = engine.run(&plan, config.clone()).await {
                return Some(err.to_string());
            }
        }
        None
    });
    sim.run();
    let failure = h.try_take().expect("finished");
    let message = failure.expect("with retries disabled, a ~30% fault rate must sink a query");
    assert!(
        message.contains("fault") || message.contains("crashed") || message.contains("attempts"),
        "unexpected failure mode: {message}"
    );
}

fn digest_run() -> (f64, SanitizerReport) {
    let mut sim = Sim::new(SEED);
    sim.install_faults(faulty());
    let sanitizer = sim.enable_sanitizer();
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let engine = deploy(&ctx);
        let config = config_with(TaskPolicy {
            max_attempts: 10,
            ..TaskPolicy::default()
        });
        engine
            .run(&queries::q12(), config)
            .await
            .expect("q12 under faults")
            .runtime_secs
    });
    sim.run();
    (
        h.try_take().expect("finished"),
        sanitizer.report().expect("sanitizer report"),
    )
}

#[test]
fn faulted_runs_are_digest_identical() {
    let (runtime_a, report_a) = digest_run();
    let (runtime_b, report_b) = digest_run();
    assert_eq!(
        runtime_a.to_bits(),
        runtime_b.to_bits(),
        "same seed + same fault plan must reproduce the exact runtime"
    );
    assert_eq!(
        report_a,
        report_b,
        "digest trails diverged; first divergence at event {:?}",
        report_a.first_divergence(&report_b)
    );
}
