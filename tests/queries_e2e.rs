//! End-to-end query correctness: the distributed engine (FaaS and IaaS
//! deployments, real coldstarts, real shuffles through simulated S3) must
//! produce the same answers as the row-at-a-time reference executor.

use skyrise::data::{tpch, tpcxbb};
use skyrise::engine::reference::{self, rows_approx_eq};
use skyrise::engine::{queries, QueryConfig, QueryResponse};
use skyrise::prelude::*;
use std::rc::Rc;

const SF: f64 = 0.01;
const SEED: u64 = 20_240_101;

/// Load the four datasets into a storage service (unscaled payloads).
fn load_all(storage: &Storage, tables: &tpch::TpchTables, bb: &tpcxbb::TpcxBbTables) {
    let layouts = [
        ("h_lineitem", 12, &tables.lineitem),
        ("h_orders", 6, &tables.orders),
        ("bb_clickstreams", 8, &bb.clickstreams),
        ("bb_item", 1, &bb.item),
    ];
    for (name, parts, batch) in layouts {
        skyrise::engine::load_dataset(
            storage,
            &DatasetLayout {
                name: name.into(),
                partitions: parts,
                target_partition_logical_bytes: None,
                rows_per_group: 4096,
            },
            batch,
        )
        .unwrap();
    }
}

/// Run one plan on a fresh FaaS deployment; returns the response.
fn run_faas(plan: &PhysicalPlan, config: QueryConfig) -> QueryResponse {
    let mut sim = Sim::new(SEED);
    let ctx = sim.ctx();
    let plan = plan.clone();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let tables = tpch::generate(SF, SEED);
        let bb = tpcxbb::generate(SF * 10.0, SEED);
        load_all(&storage, &tables, &bb);
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
        engine.run(&plan, config).await.expect("query runs")
    });
    sim.run();
    h.try_take().expect("finished")
}

fn small_config(parallel: u32) -> QueryConfig {
    QueryConfig {
        // Small fragments so multiple workers and real shuffles happen
        // even at SF 0.01.
        target_bytes_per_worker: 64 * 1024,
        max_parallelism: parallel,
        include_rows: true,
        ..QueryConfig::default()
    }
}

#[test]
fn q6_matches_reference_on_faas() {
    let response = run_faas(&queries::q6(), small_config(6));
    let rows = response.rows.expect("inlined rows");
    assert_eq!(rows.len(), 1);
    let got = rows[0][0].as_f64();
    let expect = reference::q6(&tpch::generate(SF, SEED).lineitem);
    assert!(
        (got - expect).abs() / expect < 1e-9,
        "engine {got} vs reference {expect}"
    );
    // Q6 is two stages: scan+partial agg, then final agg.
    assert_eq!(response.stages.len(), 2);
    assert!(response.stages[0].fragments > 1, "parallel scan");
    assert!(response.runtime_secs > 0.0);
}

#[test]
fn q1_matches_reference_on_faas() {
    let response = run_faas(&queries::q1(), small_config(6));
    let rows = response.rows.expect("inlined rows");
    let expect = reference::q1(&tpch::generate(SF, SEED).lineitem);
    assert_eq!(rows.len(), 4, "A/F, N/F, N/O, R/F");
    assert!(
        rows_approx_eq(&rows, &expect, 1e-9),
        "Q1 mismatch:\n{rows:?}\nvs\n{expect:?}"
    );
}

#[test]
fn q12_matches_reference_on_faas() {
    let response = run_faas(&queries::q12(), small_config(4));
    let rows = response.rows.expect("inlined rows");
    let t = tpch::generate(SF, SEED);
    let expect = reference::q12(&t.lineitem, &t.orders);
    assert!(
        rows_approx_eq(&rows, &expect, 1e-9),
        "Q12 mismatch:\n{rows:?}\nvs\n{expect:?}"
    );
    // Q12 runs four pipelines (two scans, join, final agg).
    assert_eq!(response.stages.len(), 4);
}

#[test]
fn bb_q3_matches_reference_on_faas() {
    let response = run_faas(&queries::bb_q3("Electronics", 10, 30), small_config(4));
    let rows = response.rows.expect("inlined rows");
    let bb = tpcxbb::generate(SF * 10.0, SEED);
    let expect = reference::bb_q3(&bb.clickstreams, &bb.item, "Electronics", 10, 30);
    assert!(
        rows_approx_eq(&rows, &expect, 1e-9),
        "Q3 mismatch:\n{rows:?}\nvs\n{expect:?}"
    );
}

#[test]
fn faas_and_iaas_agree_on_q6() {
    let mut sim = Sim::new(SEED);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let tables = tpch::generate(SF, SEED);
        let bb = tpcxbb::generate(SF * 10.0, SEED);

        // FaaS arm.
        let s1 = Storage::S3(S3Bucket::standard(&ctx, &meter));
        load_all(&s1, &tables, &bb);
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let faas = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), s1);
        let r1 = faas
            .run(&queries::q6(), small_config(4))
            .await
            .expect("faas");

        // IaaS arm: same plan on a VM cluster behind the shim.
        let s2 = Storage::S3(S3Bucket::standard(&ctx, &meter));
        load_all(&s2, &tables, &bb);
        let fleet = Ec2Fleet::new(&ctx, &meter);
        let vms = fleet
            .launch_many(&LaunchConfig::on_demand("c6g.xlarge"), 8)
            .await;
        let cluster = ShimCluster::new(&ctx, vms, 4);
        let iaas = Skyrise::deploy_simple(&ctx, ComputePlatform::Shim(cluster), s2);
        let r2 = iaas
            .run(&queries::q6(), small_config(4))
            .await
            .expect("iaas");
        (r1, r2)
    });
    sim.run();
    let (r1, r2) = h.try_take().unwrap();
    let v1 = r1.rows.unwrap()[0][0].as_f64();
    let v2 = r2.rows.unwrap()[0][0].as_f64();
    assert!((v1 - v2).abs() / v1.abs() < 1e-9, "{v1} vs {v2}");
    // The FaaS run pays coldstarts; the provisioned IaaS run does not.
    let cold1: u32 = r1.stages.iter().map(|s| s.cold_starts).sum();
    let cold2: u32 = r2.stages.iter().map(|s| s.cold_starts).sum();
    assert!(cold1 > 0);
    assert_eq!(cold2, 0);
}

#[test]
fn warm_runs_are_faster_than_cold() {
    let mut sim = Sim::new(SEED + 1);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let tables = tpch::generate(SF, SEED);
        let bb = tpcxbb::generate(SF * 10.0, SEED);
        load_all(&storage, &tables, &bb);
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
        let cold = engine
            .run(&queries::q6(), small_config(6))
            .await
            .expect("cold run");
        // Immediately rerun: sandboxes are warm.
        let warm = engine
            .run(&queries::q6(), small_config(6))
            .await
            .expect("warm run");
        (cold, warm)
    });
    sim.run();
    let (cold, warm) = h.try_take().unwrap();
    let cold_starts: u32 = warm.stages.iter().map(|s| s.cold_starts).sum();
    assert_eq!(cold_starts, 0, "second run fully warm");
    assert!(
        warm.runtime_secs < cold.runtime_secs,
        "warm {} vs cold {}",
        warm.runtime_secs,
        cold.runtime_secs
    );
}

#[test]
fn query_costs_are_metered() {
    let mut sim = Sim::new(SEED);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let tables = tpch::generate(SF, SEED);
        let bb = tpcxbb::generate(SF * 10.0, SEED);
        load_all(&storage, &tables, &bb);
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
        engine
            .run(&queries::q6(), small_config(6))
            .await
            .expect("runs");
        let m = meter.borrow();
        let report = m.report();
        (
            m.lambda.invocations,
            m.total_storage_requests(),
            report.total_usd(),
        )
    });
    sim.run();
    let (invocations, requests, usd) = h.try_take().unwrap();
    assert!(invocations >= 3, "coordinator + workers: {invocations}");
    assert!(requests > 20, "chunked reads + shuffle: {requests}");
    assert!(usd > 0.0);
}

#[test]
fn determinism_same_seed_same_response() {
    let a = run_faas(&queries::q6(), small_config(4));
    let b = run_faas(&queries::q6(), small_config(4));
    assert_eq!(a.runtime_secs, b.runtime_secs);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.total_requests(), b.total_requests());
    let _ = Rc::new(()); // silence unused-import lint paths
}

#[test]
fn write_combining_preserves_q12_results_with_fewer_writes() {
    // combine=4: four shuffle buckets share an object. Answers must be
    // identical; shuffle write count must drop ~4x.
    let run = |combine: u32| {
        let mut sim = Sim::new(SEED);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let meter = shared_meter();
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let tables = tpch::generate(SF, SEED);
            let bb = tpcxbb::generate(SF * 10.0, SEED);
            load_all(&storage, &tables, &bb);
            let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
            let mut plan = queries::q12();
            for p in plan.pipelines.iter_mut() {
                if let skyrise::engine::Sink::ShuffleWrite { combine: c, .. } = &mut p.sink {
                    *c = combine;
                }
            }
            let response = engine.run(&plan, small_config(8)).await.expect("q12 runs");
            let writes = {
                let m = meter.borrow();
                m.storage[&StorageService::S3Standard].write_requests
            };
            (response.rows.expect("rows"), writes)
        });
        sim.run();
        h.try_take().expect("finished")
    };
    let (rows1, writes1) = run(1);
    let (rows4, writes4) = run(4);
    let t = tpch::generate(SF, SEED);
    let expect = reference::q12(&t.lineitem, &t.orders);
    assert!(rows_approx_eq(&rows1, &expect, 1e-9));
    assert!(
        rows_approx_eq(&rows4, &expect, 1e-9),
        "combined shuffle must not change results"
    );
    assert!(
        (writes4 as f64) < 0.55 * writes1 as f64,
        "write combining cuts shuffle writes: {writes1} -> {writes4}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "schedules 300+ workers; run with --release"
)]
fn two_level_invocation_handles_wide_fanouts() {
    // >=256 fragments flips the coordinator into two-level invocation
    // (fan-out helpers). Results must be unchanged and all fragments served.
    let mut sim = Sim::new(SEED);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let tables = tpch::generate(0.02, SEED);
        skyrise::engine::load_dataset(
            &storage,
            &DatasetLayout {
                name: "h_lineitem".into(),
                partitions: 300,
                target_partition_logical_bytes: None,
                rows_per_group: 4096,
            },
            &tables.lineitem,
        )
        .unwrap();
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
        let response = engine
            .run(
                &queries::q6(),
                QueryConfig {
                    target_bytes_per_worker: 1, // one partition per worker
                    max_parallelism: 400,
                    include_rows: true,
                    ..QueryConfig::default()
                },
            )
            .await
            .expect("wide query runs");
        let revenue = response.rows.unwrap()[0][0].as_f64();
        (revenue, response.stages[0].fragments)
    });
    sim.run();
    let (revenue, fragments) = h.try_take().unwrap();
    assert_eq!(fragments, 300, "one worker per partition");
    let expect = reference::q6(&tpch::generate(0.02, SEED).lineitem);
    assert!(
        (revenue - expect).abs() / expect < 1e-9,
        "{revenue} vs {expect}"
    );
}
