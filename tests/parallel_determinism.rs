//! Parallel-vs-serial determinism contract plus property tests for the
//! scheduler's slab and timer heap.
//!
//! The acceptance bar of the parallel harness: running the experiment
//! suite with `--jobs 4` must be *indistinguishable* from `--jobs 1` —
//! identical per-simulation sanitizer digests in identical order, and
//! byte-identical `ExperimentResult` JSON. Worker threads may only change
//! wall-clock time, never a single simulated byte.
//!
//! The cheap experiments run in every `cargo test`; the full-suite
//! comparison mirrors `determinism_sweep.rs` and is `#[ignore]`d under
//! debug builds (release-mode CI runs it via `-- --ignored`).

use skyrise_bench::experiments as e;
use skyrise_bench::harness::{run_jobs, ExperimentJob};

/// Run the named experiments through the harness with 1 worker and with
/// `workers` workers, and assert the two runs are indistinguishable.
/// Returns the serial results so callers can make further assertions
/// against the (now provably job-count-independent) telemetry.
fn assert_parallel_matches_serial(
    names: &[&str],
    workers: usize,
) -> Vec<skyrise_bench::harness::CompletedExperiment> {
    let jobs = || -> Vec<ExperimentJob> {
        e::ALL
            .iter()
            .filter(|(name, _)| names.contains(name))
            .map(|&(name, run)| ExperimentJob {
                name,
                run,
                trace_out: None,
                metrics: true,
            })
            .collect()
    };
    let submitted = jobs().len();
    assert_eq!(submitted, names.len(), "unknown experiment name in filter");
    let serial = run_jobs(jobs(), 1);
    let parallel = run_jobs(jobs(), workers);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // Submission order is preserved regardless of completion order.
        assert_eq!(s.name, p.name, "result order diverged");
        assert_eq!(s.sims, p.sims, "{}: simulation count diverged", s.name);
        assert_eq!(
            s.digests, p.digests,
            "{}: sanitizer digests diverged between --jobs 1 and --jobs {workers}",
            s.name
        );
        let sj = serde_json::to_string(&s.result).expect("results serialise");
        let pj = serde_json::to_string(&p.result).expect("results serialise");
        assert_eq!(sj, pj, "{}: ExperimentResult JSON diverged", s.name);
        // Telemetry snapshots are part of the contract too: byte-identical
        // canonical JSON between --jobs 1 and --jobs N.
        assert_eq!(
            s.metrics.canonical_json(),
            p.metrics.canonical_json(),
            "{}: telemetry snapshot diverged between --jobs 1 and --jobs {workers}",
            s.name
        );
    }
    serial
}

/// Cheap subset (static pricing tables + the fastest figure): always on.
#[test]
fn cheap_experiments_identical_across_jobs() {
    assert_parallel_matches_serial(
        &[
            "table01", "table02", "table03", "table04", "table07", "table08", "fig05",
        ],
        4,
    );
}

/// The full suite, serial vs 4 workers. Long: release-mode CI only.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn full_suite_identical_across_jobs() {
    let all: Vec<&str> = e::ALL.iter().map(|&(name, _)| name).collect();
    assert_parallel_matches_serial(&all, 4);
}

/// The shuffle-read telemetry joins the determinism contract: the combining
/// ablation replays Q12 over both the whole-object (`combine = 1`) and
/// bucket-indexed read paths, and its `engine.shuffle.*` counters must land
/// in the merged snapshot — byte-identically across job counts (the
/// snapshot comparison in the shared helper) and with real traffic behind
/// them. Release-mode CI only: the ablation runs four query sweeps.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn shuffle_counters_identical_across_jobs() {
    let results = assert_parallel_matches_serial(&["ablation_combining"], 4);
    let snapshot = results[0].metrics.canonical_json();
    for counter in [
        "engine.shuffle.bytes_read",
        "engine.shuffle.bytes_whole_object",
        "engine.shuffle.bytes_pruned",
        "engine.shuffle.rows_demuxed",
        "engine.shuffle.bytes_decoded",
    ] {
        assert!(
            snapshot.contains(counter),
            "{counter} missing from the merged telemetry snapshot"
        );
    }
}

// ---------------------------------------------------------------------------
// Scheduler data structure properties: slab and timer heap vs naive oracles
// ---------------------------------------------------------------------------

mod scheduler_props {
    use proptest::prelude::*;
    use skyrise::sim::{SimTime, Slab, TimerHeap};
    use std::cmp::Reverse;
    use std::collections::BTreeMap;
    use std::collections::BinaryHeap;

    /// A random interleaving of timer operations.
    #[derive(Debug, Clone)]
    enum TimerOp {
        /// Insert a timer at `now + delta`.
        Insert(u64),
        /// Cancel the i-th live key (modulo the live set), if any.
        Cancel(usize),
        /// Advance `now` by `delta` and drain everything due.
        Fire(u64),
    }

    fn timer_ops() -> impl Strategy<Value = Vec<TimerOp>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u64..1_000).prop_map(TimerOp::Insert),
                1 => (0usize..64).prop_map(TimerOp::Cancel),
                2 => (0u64..500).prop_map(TimerOp::Fire),
            ],
            1..80,
        )
    }

    proptest! {
        /// The quaternary heap pops the same payloads at the same virtual
        /// times as a `BinaryHeap<Reverse<(deadline, seq)>>` oracle with
        /// tombstone cancellation — including ties, which must fire in
        /// insertion order.
        #[test]
        fn timer_heap_matches_binary_heap_oracle(ops in timer_ops()) {
            let mut heap: TimerHeap<u64> = TimerHeap::new();
            let mut oracle: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut cancelled: std::collections::BTreeSet<u64> = Default::default();
            // seq -> heap key, insertion-ordered; payload is the seq itself.
            let mut live: Vec<(u64, skyrise::sim::TimerKey)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for op in ops {
                match op {
                    TimerOp::Insert(delta) => {
                        let deadline = now + delta;
                        let key = heap.insert(SimTime::from_nanos(deadline), seq);
                        oracle.push(Reverse((deadline, seq)));
                        live.push((seq, key));
                        seq += 1;
                    }
                    TimerOp::Cancel(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let (s, key) = live.remove(i % live.len());
                        prop_assert_eq!(heap.cancel(key), Some(s));
                        // Double-cancel must be a no-op.
                        prop_assert_eq!(heap.cancel(key), None);
                        cancelled.insert(s);
                    }
                    TimerOp::Fire(delta) => {
                        now += delta;
                        let t = SimTime::from_nanos(now);
                        loop {
                            // Drain the oracle's tombstones first.
                            let due = oracle
                                .peek()
                                .map(|Reverse((d, _))| *d <= now)
                                .unwrap_or(false);
                            if !due {
                                break;
                            }
                            let Reverse((_, s)) = oracle.pop().expect("peeked");
                            if cancelled.contains(&s) {
                                continue;
                            }
                            prop_assert_eq!(
                                heap.pop_due(t),
                                Some(s),
                                "heap fired out of order at t={}",
                                now
                            );
                            live.retain(|&(ls, _)| ls != s);
                        }
                        prop_assert_eq!(heap.pop_due(t), None, "heap fired extra timer");
                    }
                }
            }
            prop_assert_eq!(heap.len(), live.len());
        }

        /// Slab insert/remove/lookup behaves like a `HashMap` keyed by the
        /// returned `SlabKey`, and stale keys (freed slots, reused slots)
        /// never resolve.
        #[test]
        fn slab_matches_hashmap_oracle(ops in prop::collection::vec(
            prop_oneof![
                2 => (0u32..1_000).prop_map(|v| (0u8, v as usize)),  // insert v
                1 => (0usize..64).prop_map(|i| (1u8, i)),            // remove i-th live
                1 => (0usize..64).prop_map(|i| (2u8, i)),            // lookup i-th live
            ],
            1..120,
        )) {
            let mut slab: Slab<usize> = Slab::new();
            let mut oracle: BTreeMap<u64, usize> = BTreeMap::new();
            // `SlabKey` is a plain `u64` (`generation << 32 | index`).
            let mut live: Vec<skyrise::sim::SlabKey> = Vec::new();
            let mut dead: Vec<skyrise::sim::SlabKey> = Vec::new();
            for (kind, v) in ops {
                match kind {
                    0 => {
                        let key = slab.insert(v);
                        prop_assert!(oracle.insert(key, v).is_none(),
                            "slab handed out a live key twice");
                        live.push(key);
                    }
                    1 => {
                        if live.is_empty() { continue; }
                        let key = live.remove(v % live.len());
                        let expect = oracle.remove(&key);
                        prop_assert_eq!(slab.remove(key), expect);
                        prop_assert_eq!(slab.remove(key), None, "double-remove resolved");
                        dead.push(key);
                    }
                    _ => {
                        if live.is_empty() { continue; }
                        let key = live[v % live.len()];
                        prop_assert_eq!(slab.get(key).copied(), oracle.get(&key).copied());
                    }
                }
            }
            prop_assert_eq!(slab.len(), oracle.len());
            for key in live {
                prop_assert!(slab.contains(key));
            }
            for key in dead {
                prop_assert!(!slab.contains(key), "stale key still resolves");
            }
        }
    }
}
