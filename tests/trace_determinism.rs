//! Determinism of the tracing subsystem: running the same experiment
//! twice with identical seeds must yield byte-identical JSONL traces
//! (and Chrome-trace JSON, and result JSON); a different seed must yield
//! a different trace.
//!
//! Uses fig05 (two short token-bucket measurements in one simulation) —
//! cheap enough to run three times even in debug builds.

use skyrise_bench::{capture_runs, experiments as e};

#[test]
fn same_seed_traces_are_byte_identical() {
    let (r1, s1) = capture_runs(true, false, 0, e::fig05);
    let (r2, s2) = capture_runs(true, false, 0, e::fig05);

    let json1 = serde_json::to_string(&r1).expect("result json");
    let json2 = serde_json::to_string(&r2).expect("result json");
    assert_eq!(json1, json2, "results diverged between identical runs");

    assert!(s1.events() > 0, "fig05 produced no trace events");
    assert_eq!(s1.jsonl(), s2.jsonl(), "JSONL traces diverged");
    assert_eq!(s1.chrome_json(), s2.chrome_json(), "Chrome traces diverged");
}

#[test]
fn different_seed_changes_the_trace() {
    let (_, base) = capture_runs(true, false, 0, e::fig05);
    let (_, shifted) = capture_runs(true, false, 1, e::fig05);
    assert!(base.events() > 0 && shifted.events() > 0);
    assert_ne!(
        base.jsonl(),
        shifted.jsonl(),
        "seed offset did not perturb the trace"
    );
}
