//! Cross-crate integration tests: the pieces of the platform working
//! together in ways no single crate exercises alone.

use skyrise::data::spf;
use skyrise::engine::{load_dataset, queries};
use skyrise::prelude::*;
use skyrise::storage::{RetryPolicy, RetryingClient};
use std::rc::Rc;

/// SPF's three-request remote protocol against simulated S3: trailer →
/// footer → column chunks, all as billed ranged GETs.
#[test]
fn spf_remote_reads_via_ranged_gets() {
    let mut sim = Sim::new(11);
    let ctx = sim.ctx();
    let meter = shared_meter();
    let meter2 = meter.clone();
    let h = sim.spawn(async move {
        let bucket = S3Bucket::standard(&ctx, &meter2);
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let batch = Batch::new(
            schema,
            vec![
                Column::Int64((0..10_000).collect()),
                Column::Float64((0..10_000).map(|i| i as f64 * 0.5).collect()),
            ],
        );
        let file = spf::write(std::slice::from_ref(&batch), 2_000);
        let file_len = file.len() as u64;
        bucket.backdoor().put("t.spf", Blob::new(file));

        let opts = RequestOpts::default();
        let trailer = bucket
            .get_range(
                "t.spf",
                file_len - spf::TRAILER_LEN,
                spf::TRAILER_LEN,
                &opts,
            )
            .await
            .unwrap();
        let (fstart, flen) = spf::footer_range(&trailer.bytes, file_len).unwrap();
        let footer_blob = bucket
            .get_range("t.spf", fstart, flen, &opts)
            .await
            .unwrap();
        let footer = spf::parse_footer(&footer_blob.bytes).unwrap();
        assert_eq!(footer.total_rows(), 10_000);
        assert_eq!(footer.row_groups.len(), 5);

        // Fetch only column "v" of row group 3.
        let meta = &footer.row_groups[3].chunks[1];
        let chunk = bucket
            .get_range("t.spf", meta.offset, meta.len, &opts)
            .await
            .unwrap();
        let col = spf::decode_chunk(meta, &chunk.bytes).unwrap();
        assert_eq!(col.as_f64()[0], 6_000.0 * 0.5);
        batch.num_rows()
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), 10_000);
    // Exactly three billed GETs.
    let m = meter.borrow();
    assert_eq!(
        m.storage[&skyrise::pricing::StorageService::S3Standard].read_requests,
        3
    );
}

/// The usage meter's invoice matches a hand-computed bill for a known
/// sequence of operations.
#[test]
fn invoice_matches_hand_computation() {
    let mut sim = Sim::new(12);
    let ctx = sim.ctx();
    let meter = shared_meter();
    let meter2 = meter.clone();
    sim.spawn(async move {
        let bucket = S3Bucket::standard(&ctx, &meter2);
        let opts = RequestOpts::default();
        // 10 puts + 20 gets of 1 MiB objects, spaced out to avoid throttles.
        for i in 0..10 {
            bucket
                .put(&format!("k{i}"), Blob::synthetic(1 << 20), &opts)
                .await
                .unwrap();
        }
        for i in 0..20 {
            bucket.get(&format!("k{}", i % 10), &opts).await.unwrap();
            ctx.sleep(SimDuration::from_millis(5)).await;
        }
    });
    sim.run();
    let report = meter.borrow().report();
    // S3 Standard: $5/M writes, $0.4/M reads, no transfer fees.
    let expect = 10.0 * 5e-6 + 20.0 * 4e-7;
    assert!(
        (report.storage_request_usd - expect).abs() < 1e-12,
        "{} vs {expect}",
        report.storage_request_usd
    );
}

/// Barriers: a worker polls the shared barrier object until the driver
/// opens it (the paper's subflow-synchronisation mechanism).
#[test]
fn barrier_blocks_pipeline_until_opened() {
    let mut sim = Sim::new(13);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
        let t = skyrise::data::tpch::generate(0.002, 3);
        load_dataset(
            &storage,
            &DatasetLayout {
                name: "h_lineitem".into(),
                partitions: 2,
                target_partition_logical_bytes: None,
                rows_per_group: 4096,
            },
            &t.lineitem,
        )
        .unwrap();
        let lambda = LambdaPlatform::new(&ctx, &meter, Region::us_east_1());
        let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);

        // Inject a barrier into Q6's scan pipeline.
        let mut plan = queries::q6();
        plan.pipelines[0].ops.insert(
            0,
            skyrise::engine::Op::Barrier {
                name: "scan-gate".into(),
            },
        );

        let engine2 = Rc::clone(&engine);
        let ctx2 = ctx.clone();
        let runner = ctx.spawn(async move { engine2.run_default(&plan).await });
        // Let the query start; it must be blocked at the barrier.
        ctx.sleep(SimDuration::from_secs(30)).await;
        assert!(!runner.is_finished(), "query blocked at barrier");
        engine.open_barrier("scan-gate");
        let response = runner.await.expect("query completes after barrier opens");
        let _ = ctx2;
        response.runtime_secs
    });
    sim.run();
    let runtime = h.try_take().unwrap();
    assert!(
        runtime >= 30.0,
        "runtime includes the barrier wait: {runtime}"
    );
}

/// Repeatedly rejected clients back off exponentially and become
/// stragglers (the paper's Fig. 11 explanation).
#[test]
fn throttled_clients_become_stragglers() {
    let mut sim = Sim::new(14);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let bucket = S3Bucket::standard(&ctx, &meter);
        bucket.backdoor().put("hot", Blob::synthetic(1024));
        let storage = Storage::S3(bucket);
        let client = RetryingClient::new(storage, ctx.clone(), RetryPolicy::eager());

        // A burst far over a single partition's capacity.
        let handles: Vec<_> = (0..9_000)
            .map(|_| {
                let client = client.clone();
                let ctx2 = ctx.clone();
                ctx.spawn(async move {
                    let t0 = ctx2.now();
                    let out = client.get("hot", 1024, &RequestOpts::default()).await;
                    (out.is_ok(), (ctx2.now() - t0).as_secs_f64())
                })
            })
            .collect();
        let results = join_all(handles).await;
        let ok = results.iter().filter(|(ok, _)| *ok).count();
        let slowest = results.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        let median = {
            let mut d: Vec<f64> = results.iter().map(|&(_, d)| d).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[d.len() / 2]
        };
        (ok, median, slowest)
    });
    sim.run();
    let (ok, median, slowest) = h.try_take().unwrap();
    assert!(ok > 8_000, "retries recover most requests: {ok}");
    // Stragglers wait out multiple exponential backoffs.
    assert!(
        slowest > 10.0 * median && slowest > 1.0,
        "straggler {slowest}s vs median {median}s"
    );
}

/// Lambda network burst interacts with storage: a worker-sized download
/// within the budget is an order of magnitude faster than beyond it.
#[test]
fn network_burst_shapes_storage_downloads() {
    let mut sim = Sim::new(15);
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let meter = shared_meter();
        let bucket = S3Bucket::standard(&ctx, &meter);
        bucket.backdoor().put("small", Blob::synthetic(180 << 20));
        bucket.backdoor().put("big", Blob::synthetic(900 << 20));
        let storage = Storage::S3(bucket);

        let mut rates = Vec::new();
        for key in ["small", "big"] {
            let nic = skyrise::net::presets::lambda_nic();
            let opts = RequestOpts::from_nic(&nic);
            let t0 = ctx.now();
            // Chunked parallel fetch, as the engine does.
            let logical: u64 = if key == "small" { 180 << 20 } else { 900 << 20 };
            let chunk = 8 << 20;
            let handles: Vec<_> = (0..logical / chunk)
                .map(|i| {
                    let storage = storage.clone();
                    let opts = opts.clone();
                    let key = key.to_string();
                    ctx.spawn(async move {
                        let real_len = 4096u64; // synthetic payload length
                        let real_chunk = (real_len * chunk / logical).max(1);
                        let off = (i * real_chunk).min(real_len - 1);
                        let len = real_chunk.min(real_len - off);
                        storage.get_range(&key, off, len, &opts).await.map(|_| ())
                    })
                })
                .collect();
            for r in join_all(handles).await {
                r.unwrap();
            }
            rates.push(logical as f64 / (ctx.now() - t0).as_secs_f64());
        }
        (rates[0], rates[1])
    });
    sim.run();
    let (small_rate, big_rate) = h.try_take().unwrap();
    assert!(
        small_rate > 3.0 * big_rate,
        "within-budget {small_rate:.2e} B/s vs beyond {big_rate:.2e} B/s"
    );
}

/// A full end-to-end run is bit-identical across replays of the same
/// seed: runtimes, invoices, and result bytes.
#[test]
fn full_stack_determinism() {
    fn run() -> (f64, f64, u64) {
        let mut sim = Sim::new(777);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter2));
            let t = skyrise::data::tpch::generate(0.005, 3);
            load_dataset(
                &storage,
                &DatasetLayout {
                    name: "h_lineitem".into(),
                    partitions: 6,
                    target_partition_logical_bytes: Some(64 << 20),
                    rows_per_group: 4096,
                },
                &t.lineitem,
            )
            .unwrap();
            let lambda = LambdaPlatform::new(&ctx, &meter2, Region::eu_west_1());
            let engine = Skyrise::deploy_simple(&ctx, ComputePlatform::Faas(lambda), storage);
            let r = engine.run_default(&queries::q6()).await.unwrap();
            (r.runtime_secs, r.total_requests())
        });
        sim.run();
        let (runtime, requests) = h.try_take().unwrap();
        let usd = meter.borrow().report().total_usd();
        (runtime, usd, requests)
    }
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
