//! Double-run determinism sweep: every experiment's simulation is executed
//! twice with the same seed and the runtime sanitizer's state digests must
//! be byte-identical. A divergence fails with the label of the first
//! diverging simulation and the event index of the first diverging digest
//! checkpoint (see `skyrise_sim::SanitizerReport::first_divergence`).
//!
//! Cheap experiments run in every `cargo test`; the long-running figures
//! are `#[ignore]`d in debug builds (mirroring `experiments_smoke.rs`) and
//! covered by release-mode CI / `cargo test --release -- --ignored`.

use skyrise::micro::ExperimentResult;
use skyrise_bench::experiments as e;
use skyrise_bench::harness::{run_jobs, ExperimentJob};

/// Run `f` twice with the same seeds — as two jobs on two parallel harness
/// workers — and assert the sanitizer digest trails match
/// simulation-by-simulation. Going through the harness makes every sweep
/// entry double as a check that worker threads don't perturb a run.
/// Both jobs run with telemetry registries installed, so the sweep also
/// proves the metrics layer is bit-stable: registry snapshots must be
/// byte-identical (and their digests are folded into the sanitizer trail).
fn assert_deterministic(name: &'static str, f: fn() -> ExperimentResult) {
    let jobs = vec![
        ExperimentJob {
            name,
            run: f,
            trace_out: None,
            metrics: true,
        },
        ExperimentJob {
            name,
            run: f,
            trace_out: None,
            metrics: true,
        },
    ];
    let mut done = run_jobs(jobs, 2);
    let b = done.pop().expect("two completed jobs");
    let a = done.pop().expect("two completed jobs");
    assert_eq!(a.sims, b.sims, "{name}: simulation count diverged");
    // Every simulation must have produced a sanitizer digest (the harness
    // enables the sanitizer unconditionally). Experiments that are pure
    // pricing arithmetic run zero simulations and pass vacuously.
    assert_eq!(
        a.digests.len() as u64,
        a.sims,
        "{name}: a simulation ran without its sanitizer"
    );
    assert_eq!(
        a.digests.len(),
        b.digests.len(),
        "{name}: runs executed a different number of sanitized simulations"
    );
    for ((label_a, rep_a), (label_b, rep_b)) in a.digests.iter().zip(&b.digests) {
        assert_eq!(label_a, label_b, "{name}: simulation order diverged");
        if rep_a != rep_b {
            panic!(
                "{name}: nondeterminism in {label_a}: digests {:#018x} vs {:#018x} \
                 ({} vs {} events), first divergence at event {:?}",
                rep_a.digest,
                rep_b.digest,
                rep_a.events,
                rep_b.events,
                rep_a.first_divergence(rep_b)
            );
        }
    }
    // Telemetry itself must be bit-stable, not just hash-equal: the merged
    // registry snapshots of both runs serialize to identical bytes.
    assert_eq!(
        a.metrics.canonical_json(),
        b.metrics.canonical_json(),
        "{name}: telemetry snapshot diverged between same-seed runs"
    );
    if a.sims > 0 {
        assert!(
            !a.metrics.is_empty(),
            "{name}: simulations ran without registering any metric"
        );
    }
}

macro_rules! sweep {
    ($($(#[$attr:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                assert_deterministic(stringify!($name), e::$name);
            }
        )+
    };
}

sweep! {
    // Cheap: static pricing tables + the fastest network figure.
    table01,
    table02,
    table03,
    table04,
    table07,
    table08,
    fig05,
    // Long-running simulations: skipped under debug (tier-1) builds.
    #[cfg_attr(debug_assertions, ignore)]
    table05,
    #[cfg_attr(debug_assertions, ignore)]
    table06,
    #[cfg_attr(debug_assertions, ignore)]
    fig06,
    #[cfg_attr(debug_assertions, ignore)]
    fig07,
    #[cfg_attr(debug_assertions, ignore)]
    fig08,
    #[cfg_attr(debug_assertions, ignore)]
    fig09,
    #[cfg_attr(debug_assertions, ignore)]
    fig10,
    #[cfg_attr(debug_assertions, ignore)]
    fig11,
    #[cfg_attr(debug_assertions, ignore)]
    fig12,
    #[cfg_attr(debug_assertions, ignore)]
    fig13,
    #[cfg_attr(debug_assertions, ignore)]
    fig14,
    #[cfg_attr(debug_assertions, ignore)]
    fig15,
    #[cfg_attr(debug_assertions, ignore)]
    ablation_combining,
    #[cfg_attr(debug_assertions, ignore)]
    ablation_binary_size,
    #[cfg_attr(debug_assertions, ignore)]
    extra_observations,
    // Faulted configuration: the fault plan's injections must replay
    // byte-identically — two same-seed runs of the fault-rate sweep
    // (retries, speculation, crashes and all) compare digest-equal.
    #[cfg_attr(debug_assertions, ignore)]
    reliability,
}
