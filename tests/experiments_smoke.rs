//! Smoke tests over the experiment harness: the cheap experiments run end
//! to end and produce the paper's qualitative findings. (The expensive
//! figures are covered by unit tests inside `skyrise-bench` and by the
//! `all_experiments` binary.)

use skyrise_bench::experiments as e;

#[test]
fn static_tables_run() {
    let t1 = e::table01();
    assert_eq!(t1.id, "table01");
    let t2 = e::table02();
    assert!(t2.scalars.contains_key("s3_warm_100k_iops_usd_per_hour"));
    let t3 = e::table03();
    assert_eq!(t3.id, "table03");
}

#[test]
fn breakeven_tables_match_paper_shape() {
    let t7 = e::table07();
    // RAM/SSD (4 KiB) is seconds; RAM/S3 Standard (4 KiB) is days.
    let ram_ssd = t7.scalars["RAM_SSD_4096b_secs"];
    let ram_s3 = t7.scalars["RAM_S3_Standard_4096b_secs"];
    assert!(ram_ssd < 120.0);
    assert!(ram_s3 > 86_400.0);

    let t8 = e::table08();
    // c6gn reserved breaks even at larger accesses than on-demand.
    let od = t8.scalars["s3std_c6gn.xlarge_on-demand_mb"];
    let rsv = t8.scalars["s3std_c6gn.xlarge_reserved_mb"];
    assert!(rsv > 2.0 * od, "{od} vs {rsv}");
}

#[test]
fn table04_extrapolates_dataset_sizes() {
    let t4 = e::table04();
    assert!(t4.scalars["h_lineitem_sf1000_gib"] > t4.scalars["h_orders_sf1000_gib"]);
    assert!(t4.scalars["bb_item_sf1000_gib"] < 1.0);
}

#[test]
fn fig05_smoke() {
    let r = e::fig05();
    assert_eq!(r.series.len(), 2);
    assert!(r.scalars["inbound_burst_gib_s"] > 1.0);
    // Results persist to a temp dir without error.
    let dir = std::env::temp_dir().join("skyrise-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    r.save(&dir).expect("results save");
    assert!(dir.join("fig05.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
