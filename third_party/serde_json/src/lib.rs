//! Vendored stand-in for `serde_json`.
//!
//! Re-exports the JSON value model implemented in the sibling `serde` stub
//! and provides the function/macro surface this workspace uses:
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`,
//! `to_value`, and `json!`.

pub use serde::json::{Error, Map, Number, Value};

/// Serialize to a JSON [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Serialize to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json_value();
    let mut out = String::new();
    serde::json::write_pretty(&v, &mut out, 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::from_json_value(&v)
}

/// Deserialize from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(s)
}

/// Construct a [`Value`] from JSON-like syntax, interpolating expressions
/// (a port of upstream serde_json's TT-muncher, over this stub's `Value`).
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays.
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    // Objects.
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};

    // Literals / expressions.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };

    // ---- @array: build a vec of elements ---------------------------------
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- @object: munch key/value pairs ----------------------------------
    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };

    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // Next value is `null` / `true` / `false`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };

    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };

    // Next value is a map.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };

    // Next value is an expression followed by comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };

    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "x".to_string();
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "s"],
            "nested": {"name": name, "flag": true},
            "n": null,
        });
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"][1].as_f64(), Some(2.5));
        assert_eq!(v["nested"]["name"], "x");
        assert!(v["n"].is_null());
        let s = v.to_string();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn to_string_round_trips_structs() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"k": [1, 2], "m": {"x": 1.0}});
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
