//! The JSON value model shared by the vendored `serde` / `serde_json`
//! stand-ins: [`Value`], [`Number`], a recursive-descent parser, and compact
//! + pretty writers. Object keys live in a `BTreeMap`, so serialization is
//! canonical (sorted keys) and deterministic — which the repo's digest
//! machinery relies on.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object representation (sorted keys, like upstream serde_json
/// without `preserve_order`).
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: positive integer, negative integer, or float.
#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point (always finite).
    Float(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (always available; may lose precision).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => write_f64(f, x),
        }
    }
}

/// Write a finite f64 so that it re-parses as a float (always keeps a `.`
/// or exponent, like upstream's ryu output does for e.g. `1.0`).
fn write_f64(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
        write!(f, "{s}")
    } else {
        write!(f, "{s}.0")
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value object (sorted keys).
    Object(Map<String, Value>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as `&str` when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, when this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Borrow the elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the map, when this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl fmt::Display for Value {
    /// Compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\x08' => write!(f, "\\b")?,
            '\x0c' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn write_compact(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write!(f, "{n}"),
        Value::String(s) => write_escaped(s, f),
        Value::Array(a) => {
            write!(f, "[")?;
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_compact(e, f)?;
            }
            write!(f, "]")
        }
        Value::Object(m) => {
            write!(f, "{{")?;
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_escaped(k, f)?;
                write!(f, ":")?;
                write_compact(e, f)?;
            }
            write!(f, "}}")
        }
    }
}

/// Render with 2-space indentation (upstream `to_string_pretty` style).
pub fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                let _ = write!(out, "{}", DisplayKey(k));
                out.push_str(": ");
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

struct DisplayKey<'a>(&'a str);
impl fmt::Display for DisplayKey<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_escaped(self.0, f)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// --- parser ----------------------------------------------------------------

/// Parse a JSON document (bytes must be UTF-8).
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        b: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), Error> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{lit}` at {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            let c = self.bump()?;
            match c {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\x08'),
                    b'f' => out.push('\x0c'),
                    b'u' => {
                        let cp = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // Surrogate pair.
                            self.expect("\\u")?;
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    e => {
                        return Err(Error::msg(format!("bad escape `\\{}`", e as char)));
                    }
                },
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect("[")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(out)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}`",
                        c as char
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect("{")?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(":")?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(out)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}`",
                        c as char
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"a":[1,2.5,-3,true,null,"x\n\"y\""],"b":{"c":1e3}}"#;
        let v = parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"]["c"].as_f64(), Some(1000.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn float_display_reparses_as_float() {
        let v = Value::from(1.0f64);
        assert_eq!(v.to_string(), "1.0");
        assert_eq!(parse("1.0").unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
