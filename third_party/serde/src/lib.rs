//! Vendored stand-in for `serde`.
//!
//! The workspace builds hermetically (no network, no registry), so the
//! serialization surface it needs is implemented here: `Serialize` /
//! `Deserialize` traits defined directly over a JSON value model (in
//! [`json`]), derive macros from the sibling `serde_derive` stub, and impls
//! for the std types the workspace serializes. The sibling `serde_json`
//! stub re-exports the value model and provides `to_string` / `from_str` /
//! `json!`.
//!
//! Fidelity notes relative to real serde + serde_json:
//! - externally tagged enums, `#[serde(default)]`, `#[serde(default =
//!   "path")]`, and missing-`Option`-means-`None` behave as upstream;
//! - JSON object keys are emitted in sorted (BTreeMap) order, like
//!   upstream serde_json without `preserve_order`;
//! - non-finite floats serialize as `null`, as upstream's `Value::from`.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Map, Number, Value};

/// Types that can serialize themselves into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse `self` out of a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_ser_de_int {
    ($($t:ty => $as:ident),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.$as()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_ser_de_int!(
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64
);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::from(*self)
    }
}
impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        // `null` round-trips as NaN: non-finite floats serialize to null.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::from(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for &'static str {
    /// `&'static str` fields (catalog instance names) round-trip by leaking
    /// the parsed string. Catalog deserialisation is rare and the names are
    /// tiny, so the leak is bounded in practice.
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::msg("expected null"))
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

// The "rc" feature surface: serialize through the pointer, reconstruct a
// fresh allocation on deserialize (no sharing round-trip, as upstream).
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::rc::Rc::new)
    }
}
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expect = [$( $n ),+].len();
                if arr.len() != expect {
                    return Err(Error::msg("tuple arity mismatch"));
                }
                Ok(($($t::from_json_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys must render to JSON object keys (strings). Split from
/// [`JsonKeyDe`] so the `Serialize` and `Deserialize` derive macros can each
/// emit their half for unit-only enums used as map keys.
pub trait JsonKeySer {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
}

/// Map keys must parse back from JSON object keys.
pub trait JsonKeyDe: Sized {
    /// Parse the key back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKeySer for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}
impl JsonKeyDe for String {
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKeySer for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
        impl JsonKeyDe for $t {
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg("bad integer map key"))
            }
        }
    )*};
}
impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKeySer + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_json_value());
        }
        Value::Object(m)
    }
}
impl<K: JsonKeyDe + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in obj {
            out.insert(K::from_key(k)?, V::from_json_value(v)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_json_value(v).map(Into::into)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Number {
    fn to_json_value(&self) -> Value {
        Value::Number(self.clone())
    }
}
