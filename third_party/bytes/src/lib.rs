//! Vendored stand-in for the `bytes` crate.
//!
//! The workspace builds hermetically (no network, no registry), so the small
//! API subset it needs — a cheaply clonable, refcounted, sliceable byte
//! buffer — is implemented here. Semantics match `bytes::Bytes` for the
//! methods provided: `clone` is O(1), `slice` shares the backing allocation.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing allocation (O(1), no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }
}
