//! Vendored stand-in for `proptest`.
//!
//! The workspace builds hermetically (no network, no registry), so the
//! property-testing surface it uses is implemented here: the `proptest!`
//! macro, `Strategy` with `prop_map`, `any::<T>()`, ranges, tuple and
//! `prop::collection::vec` composition, a regex-subset string strategy,
//! weighted `prop_oneof!`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, on purpose:
//! - sampling is seeded deterministically from the test's module path and
//!   case index — successive runs explore the same cases (no entropy, per
//!   the repo's determinism contract, and failures are always reproducible);
//! - there is **no shrinking**: a failing case reports its inputs via the
//!   assertion message only.

pub mod test_runner {
    //! Test configuration and the deterministic sample source.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A property failure (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with message.
        Fail(String),
        /// Case rejected (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic xoshiro256++ sample source.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeded from a test identifier and case index, via SplitMix64.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            let mut state = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng { s }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                let wide = (v as u128) * (bound as u128);
                if (wide as u64) <= zone {
                    return (wide >> 64) as u64;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sample: Box::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Weighted choice between strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from weighted boxed arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    // --- ranges ------------------------------------------------------------

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span == (1u128 << 64) {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    // --- tuples ------------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    // --- regex-subset string strategy ---------------------------------------

    /// `&str` patterns act as generators for matching strings. Supported
    /// subset: literal chars, `.`, classes `[a-z0-9_ ]` (ranges + literals),
    /// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the last two capped at 8).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    enum Atom {
        Literal(char),
        Dot,
        Class(Vec<(char, char)>),
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in `{pattern}`");
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::Dot
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().expect("dangling escape");
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(sample_atom(&atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Dot => {
                // Mostly printable ASCII, occasionally any non-newline char.
                if rng.below(10) < 9 {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                } else {
                    loop {
                        let cp = rng.below(0x11_0000) as u32;
                        if let Some(c) = char::from_u32(cp) {
                            if c != '\n' {
                                return c;
                            }
                        }
                    }
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick as u32).unwrap();
                    }
                    pick -= span;
                }
                ranges.first().map(|&(a, _)| a).unwrap_or('a')
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        #[doc(hidden)]
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            // Finite floats over a wide dynamic range (like upstream's
            // default f64 domain, which excludes NaN and infinities).
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            loop {
                let v = f32::from_bits(rng.next_u64() as u32);
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` module alias used by `prop::collection::vec(...)`.
pub mod prop {
    pub use super::arbitrary;
    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg=($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg=($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg=($cfg:expr) ) => {};
    ( cfg=($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
        $crate::__proptest_impl!{ cfg=($cfg) $($rest)* }
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert inside a property; failure aborts the case via `Err`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discard a case unless `cond` holds (counts as a pass here — no retry).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 1u64..=9, f in 0.25f64..0.75) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{0,3}") {
            prop_assert!(s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_tuple_compose(
            v in prop::collection::vec((0i64..4, "[ab]{1,2}"), 0..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 10);
            let _ = flag;
            for (n, s) in &v {
                prop_assert!((0..4).contains(n));
                prop_assert!(!s.is_empty() && s.len() <= 2);
            }
        }

        #[test]
        fn oneof_weights_cover(ops in prop::collection::vec(prop_oneof![
            3 => (0u64..100).prop_map(|v| (0u8, v)),
            1 => (0u64..10).prop_map(|v| (1u8, v)),
        ], 1..50)) {
            for (tag, _) in &ops {
                prop_assert!(*tag <= 1);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let mut r1 = crate::test_runner::TestRng::deterministic("t", 3);
        let mut r2 = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
