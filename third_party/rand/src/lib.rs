//! Vendored stand-in for the `rand` crate (API subset).
//!
//! The workspace builds hermetically (no network, no registry), so the
//! pieces of `rand` 0.8 it relies on are implemented here: `SmallRng`
//! (xoshiro256++, seeded through SplitMix64 exactly like upstream),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! `gen_bool`, and `fill_bytes`.
//!
//! There are deliberately **no entropy sources** (`thread_rng`,
//! `from_entropy`, OS randomness): every generator in this repository must
//! be a pure function of its seed — the simulator's determinism contract
//! depends on it, and `simlint` enforces it.

/// Core pseudo-random number generation: raw word output.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (matches
    /// upstream `rand_core`'s default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 with golden-gamma increment, low 32 bits per chunk.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values sampled uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as upstream's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (`span > 0`, `span <= 2^64`) via Lemire's
/// widening-multiply method with rejection, so there is no modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value over `T`'s standard domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded generator — xoshiro256++ like upstream's
    /// 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; perturb it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xB7E1_5162_8AED_2A6B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(1u64..=7);
            assert!((1..=7).contains(&w));
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
