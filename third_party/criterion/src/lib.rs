//! Vendored stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface with a
//! simple measurement loop: warm up, run a fixed number of timed iterations,
//! and print mean wall-clock time (plus throughput when configured). No
//! statistical analysis, plots, or HTML reports.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How batched inputs are sized in `iter_batched`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup per timed iteration.
    PerIteration,
    /// Small batches (treated like `PerIteration` here).
    SmallInput,
    /// Large batches (treated like `PerIteration` here).
    LargeInput,
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        let _ = std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            let _ = std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration setup excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set the number of timed iterations for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1) as u64;
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let iters = b.iterations.max(1);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1u64 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:>12.3} us/iter over {} iters{}",
            self.name,
            id,
            per_iter * 1e6,
            iters,
            rate
        );
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 30,
            _parent: self,
        }
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
