//! Vendored stand-in for `serde_derive` — hand-rolled (no syn/quote).
//!
//! Supports the item shapes this workspace actually derives on:
//! - structs with named fields,
//! - enums with unit / tuple / struct variants (externally tagged),
//! - `#[serde(default)]` and `#[serde(default = "path")]` on named fields,
//! - missing `Option<T>` fields deserialize to `None`.
//!
//! Generates impls of the simplified `serde::Serialize` /
//! `serde::Deserialize` traits (defined over the JSON value model in the
//! sibling `serde` stub). Generation is by string assembly + `.parse()`,
//! which keeps the crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level serde configuration.
#[derive(Default, Clone)]
struct FieldAttrs {
    /// `#[serde(default)]`
    default: bool,
    /// `#[serde(default = "path")]`
    default_path: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
    /// Whether the field type's head identifier is `Option`.
    is_option: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// Tuple struct; arity 1 (newtype) serializes transparently as the inner
    /// value, higher arities as an array — matching upstream serde.
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::TupleStruct { name, arity } => gen_tuple_struct_ser(name, *arity),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::TupleStruct { name, arity } => gen_tuple_struct_de(name, *arity),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;

    // No generics are used by this workspace's derived types. Tuple structs
    // present a Parenthesis group where named structs present a Brace group.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                return match kind.as_str() {
                    "struct" => Item::Struct {
                        name,
                        fields: parse_named_fields(body),
                    },
                    "enum" => Item::Enum {
                        name,
                        variants: parse_variants(body),
                    },
                    other => panic!("serde_derive: cannot derive for `{other}` items"),
                };
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0i32;
                let mut arity = if inner.is_empty() { 0 } else { 1 };
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                        _ => {}
                    }
                }
                return Item::TupleStruct { name, arity };
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stub: generic types are not supported (type {name})")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no body found for {name}"),
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Collect any `#[...]` attribute groups at the cursor, returning the parsed
/// serde field attrs among them.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let group = match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            _ => panic!("serde_derive: malformed attribute"),
        };
        *i += 2;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => continue,
        };
        let args: Vec<TokenTree> = args.into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            match &args[j] {
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    if let Some(TokenTree::Punct(eq)) = args.get(j + 1) {
                        if eq.as_char() == '=' {
                            let lit = match args.get(j + 2) {
                                Some(TokenTree::Literal(l)) => l.to_string(),
                                _ => panic!("serde_derive: default = expects a string literal"),
                            };
                            attrs.default_path = Some(lit.trim_matches('"').to_string());
                            j += 3;
                            continue;
                        }
                    }
                    attrs.default = true;
                    j += 1;
                }
                TokenTree::Punct(_) => j += 1,
                other => panic!("serde_derive stub: unsupported serde attribute `{other}`"),
            }
        }
    }
    attrs
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other}"),
        }
        // Scan the type: track `<`/`>` depth so commas inside generics don't
        // terminate the field. Token *trees* make (), [], {} atomic already.
        let mut depth = 0i32;
        let mut is_option = false;
        let mut first = true;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Ident(id) if first => {
                    is_option = id.to_string() == "Option";
                    first = false;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            attrs,
            is_option,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level commas to get the arity.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0i32;
                let mut arity = if inner.is_empty() { 0 } else { 1 };
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                        _ => {}
                    }
                }
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --- generation ------------------------------------------------------------

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "m.insert(\"{0}\".to_string(), ::serde::Serialize::to_json_value(&self.{0}));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n\
         let mut m = ::serde::json::Map::new();\n{inserts}\
         ::serde::json::Value::Object(m)\n}}\n}}\n"
    )
}

fn gen_tuple_struct_ser(name: &str, arity: usize) -> String {
    let inner = if arity == 1 {
        "::serde::Serialize::to_json_value(&self.0)".to_string()
    } else {
        let elems: Vec<String> = (0..arity)
            .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
            .collect();
        format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n{inner}\n}}\n}}\n"
    )
}

fn gen_tuple_struct_de(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(v)?))")
    } else {
        let elems: Vec<String> = (0..arity)
            .map(|k| format!("::serde::Deserialize::from_json_value(&arr[{k}])?"))
            .collect();
        format!(
            "let arr = v.as_array().ok_or_else(|| \
             ::serde::json::Error::msg(\"expected array for {name}\"))?;\n\
             if arr.len() != {arity} {{\n\
             return ::std::result::Result::Err(::serde::json::Error::msg(\
             \"wrong arity for {name}\"));\n}}\n\
             ::std::result::Result::Ok({name}({}))",
            elems.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// `obj.get("f")` handling for one named field: present → deserialize,
/// missing → default / None / error.
fn field_from_obj(ctx: &str, f: &Field) -> String {
    let missing = if let Some(path) = &f.attrs.default_path {
        format!("{path}()")
    } else if f.attrs.default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::json::Error::msg(\
             \"missing field `{}` in {}\"))",
            f.name, ctx
        )
    };
    format!(
        "{0}: match obj.get(\"{0}\") {{\n\
         ::std::option::Option::Some(x) => ::serde::Deserialize::from_json_value(x)?,\n\
         ::std::option::Option::None => {missing},\n}},\n",
        f.name
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&field_from_obj(name, f));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{\n\
         let obj = v.as_object().ok_or_else(|| \
         ::serde::json::Error::msg(\"expected object for {name}\"))?;\n\
         ::std::result::Result::Ok({name} {{\n{body}}})\n}}\n}}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::json::Value::String(\"{vn}\".to_string()),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                let pat = binds.join(", ");
                let inner = if *arity == 1 {
                    "::serde::Serialize::to_json_value(f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                        .collect();
                    format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({pat}) => {{\n\
                     let mut m = ::serde::json::Map::new();\n\
                     m.insert(\"{vn}\".to_string(), {inner});\n\
                     ::serde::json::Value::Object(m)\n}}\n"
                ));
            }
            VariantShape::Struct(fields) => {
                let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut inserts = String::new();
                for f in fields {
                    inserts.push_str(&format!(
                        "inner.insert(\"{0}\".to_string(), \
                         ::serde::Serialize::to_json_value({0}));\n",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{\n\
                     let mut inner = ::serde::json::Map::new();\n{inserts}\
                     let mut m = ::serde::json::Map::new();\n\
                     m.insert(\"{vn}\".to_string(), ::serde::json::Value::Object(inner));\n\
                     ::serde::json::Value::Object(m)\n}}\n",
                    pat.join(", ")
                ));
            }
        }
    }
    let mut out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n\
         match self {{\n{arms}}}\n}}\n}}\n"
    );
    // Unit-only enums additionally work as JSON map keys.
    if variants
        .iter()
        .all(|v| matches!(v.shape, VariantShape::Unit))
    {
        let key_arms: String = variants
            .iter()
            .map(|v| format!("{name}::{0} => \"{0}\".to_string(),\n", v.name))
            .collect();
        out.push_str(&format!(
            "impl ::serde::JsonKeySer for {name} {{\n\
             fn to_key(&self) -> ::std::string::String {{\n\
             match self {{\n{key_arms}}}\n}}\n}}\n"
        ));
    }
    out
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                str_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                if *arity == 1 {
                    obj_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(val)?)),\n"
                    ));
                } else {
                    let elems: Vec<String> = (0..*arity)
                        .map(|k| format!("::serde::Deserialize::from_json_value(&arr[{k}])?"))
                        .collect();
                    obj_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let arr = val.as_array().ok_or_else(|| \
                         ::serde::json::Error::msg(\"expected array for {name}::{vn}\"))?;\n\
                         if arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::json::Error::msg(\
                         \"wrong arity for {name}::{vn}\"));\n}}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                        elems.join(", ")
                    ));
                }
            }
            VariantShape::Struct(fields) => {
                let mut body = String::new();
                for f in fields {
                    body.push_str(&field_from_obj(&format!("{name}::{vn}"), f));
                }
                obj_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let obj = val.as_object().ok_or_else(|| \
                     ::serde::json::Error::msg(\"expected object for {name}::{vn}\"))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{\n{body}}})\n}}\n"
                ));
            }
        }
    }
    let mut out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{\n\
         if let ::std::option::Option::Some(s) = v.as_str() {{\n\
         return match s {{\n{str_arms}\
         _ => ::std::result::Result::Err(::serde::json::Error::msg(\
         \"unknown variant for {name}\")),\n}};\n}}\n\
         let obj = v.as_object().ok_or_else(|| \
         ::serde::json::Error::msg(\"expected string or object for {name}\"))?;\n\
         let (tag, val) = obj.iter().next().ok_or_else(|| \
         ::serde::json::Error::msg(\"empty object for {name}\"))?;\n\
         match tag.as_str() {{\n{obj_arms}\
         _ => ::std::result::Result::Err(::serde::json::Error::msg(\
         \"unknown variant for {name}\")),\n}}\n}}\n}}\n"
    );
    // Unit-only enums additionally parse back as JSON map keys.
    if variants
        .iter()
        .all(|v| matches!(v.shape, VariantShape::Unit))
    {
        let key_arms: String = variants
            .iter()
            .map(|v| {
                format!(
                    "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                    v.name
                )
            })
            .collect();
        out.push_str(&format!(
            "impl ::serde::JsonKeyDe for {name} {{\n\
             fn from_key(s: &str) -> \
             ::std::result::Result<Self, ::serde::json::Error> {{\n\
             match s {{\n{key_arms}\
             _ => ::std::result::Result::Err(::serde::json::Error::msg(\
             \"unknown key variant for {name}\")),\n}}\n}}\n}}\n"
        ));
    }
    out
}
