//! Scalar expressions: the vectorised evaluation layer under filters,
//! projections, and aggregate arguments. Expressions serialise to JSON as
//! part of physical plans (the coordinator receives "a physical query plan
//! in JSON format", paper Sec. 3.2) and include a scalar-UDF hook (Q12 and
//! TPCx-BB Q3 are "join queries with a broad set of operators, including
//! user-defined functions").

use serde::{Deserialize, Serialize};
use skyrise_data::{Batch, Column, Value};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer operands promote to float).
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison producing booleans.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction of sub-predicates.
    And(Vec<Expr>),
    /// Disjunction of sub-predicates.
    Or(Vec<Expr>),
    /// Negation of a boolean expression.
    Not(Box<Expr>),
    /// Arithmetic over numerics.
    Arith {
        /// Arithmetic operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Membership in a literal list (e.g. `l_shipmode IN ('MAIL','SHIP')`).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Literal membership list.
        list: Vec<Value>,
    },
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case {
        /// Boolean condition.
        when: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
    /// Scalar UDF by registry name, applied row-wise.
    Udf {
        /// Registry name of the UDF.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// `Col` helper.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_string())
    }

    /// Integer literal.
    pub fn lit_i64(v: i64) -> Expr {
        Expr::Lit(Value::Int64(v))
    }

    /// Float literal.
    pub fn lit_f64(v: f64) -> Expr {
        Expr::Lit(Value::Float64(v))
    }

    /// String literal.
    pub fn lit_str(v: &str) -> Expr {
        Expr::Lit(Value::Utf8(v.to_string()))
    }

    /// Comparison builder.
    pub fn cmp(self, op: CmpOp, right: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Arithmetic builder.
    pub fn arith(self, op: ArithOp, right: Expr) -> Expr {
        Expr::Arith {
            op,
            left: Box::new(self),
            right: Box::new(right),
        }
    }
}

/// A named output expression (projection item).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedExpr {
    /// Output column name.
    pub name: String,
    /// The expression computing it.
    pub expr: Expr,
}

impl NamedExpr {
    /// Shorthand constructor.
    pub fn new(name: &str, expr: Expr) -> Self {
        NamedExpr {
            name: name.to_string(),
            expr,
        }
    }
}

/// A registered scalar UDF: rows of argument values to one output value.
pub type ScalarUdf = Rc<dyn Fn(&[Value]) -> Value>;

/// UDF registry shared by workers.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    udfs: BTreeMap<String, ScalarUdf>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a UDF under a name.
    pub fn register(&mut self, name: &str, udf: ScalarUdf) {
        self.udfs.insert(name.to_string(), udf);
    }

    /// The registry with the built-ins the paper's query suite uses.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        // Q12's CASE logic as a UDF: 1 when the order priority is urgent
        // or high, else 0.
        reg.register(
            "is_high_priority",
            Rc::new(|args: &[Value]| {
                let hit = matches!(&args[0], Value::Utf8(s) if s == "1-URGENT" || s == "2-HIGH");
                Value::Int64(hit as i64)
            }),
        );
        reg
    }

    pub(crate) fn get(&self, name: &str) -> Option<&ScalarUdf> {
        self.udfs.get(name)
    }
}

/// Errors during expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Referenced column is absent from the input schema.
    UnknownColumn(String),
    /// UDF name is not registered.
    UnknownUdf(String),
    /// Operand types are incompatible with the operator.
    TypeMismatch(&'static str),
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExprError::UnknownUdf(u) => write!(f, "unknown UDF {u}"),
            ExprError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Evaluate an expression over a batch, producing one value per row.
pub fn evaluate(expr: &Expr, batch: &Batch, udfs: &UdfRegistry) -> Result<Column, ExprError> {
    let n = batch.num_rows();
    match expr {
        Expr::Col(name) => batch
            .schema
            .index_of(name)
            .map(|i| batch.columns[i].clone())
            .ok_or_else(|| ExprError::UnknownColumn(name.clone())),
        Expr::Lit(v) => Ok(broadcast(v, n)),
        Expr::Cmp { op, left, right } => {
            let l = evaluate(left, batch, udfs)?;
            let r = evaluate(right, batch, udfs)?;
            compare(*op, &l, &r)
        }
        Expr::And(parts) => {
            let mut acc = vec![true; n];
            for p in parts {
                let c = evaluate(p, batch, udfs)?;
                let b = expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a &= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        Expr::Or(parts) => {
            let mut acc = vec![false; n];
            for p in parts {
                let c = evaluate(p, batch, udfs)?;
                let b = expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a |= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        Expr::Not(inner) => {
            let c = evaluate(inner, batch, udfs)?;
            let b = expect_bool(&c)?;
            Ok(Column::Bool(b.iter().map(|&x| !x).collect()))
        }
        Expr::Arith { op, left, right } => {
            let l = evaluate(left, batch, udfs)?;
            let r = evaluate(right, batch, udfs)?;
            arithmetic(*op, &l, &r)
        }
        Expr::InList { expr, list } => {
            let c = evaluate(expr, batch, udfs)?;
            let mut out = Vec::with_capacity(n);
            match &c {
                Column::Utf8(v) => {
                    let set: Vec<&str> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Utf8(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect();
                    for s in v {
                        out.push(set.contains(&s.as_str()));
                    }
                }
                Column::Int64(v) => {
                    let set: Vec<i64> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int64(i) => Some(*i),
                            _ => None,
                        })
                        .collect();
                    for x in v {
                        out.push(set.contains(x));
                    }
                }
                _ => return Err(ExprError::TypeMismatch("IN on unsupported type")),
            }
            Ok(Column::Bool(out))
        }
        Expr::Case {
            when,
            then,
            otherwise,
        } => {
            let cond_col = evaluate(when, batch, udfs)?;
            let cond = expect_bool(&cond_col)?;
            let t = evaluate(then, batch, udfs)?;
            let o = evaluate(otherwise, batch, udfs)?;
            select(cond, &t, &o)
        }
        Expr::Udf { name, args } => {
            let udf = udfs
                .get(name)
                .ok_or_else(|| ExprError::UnknownUdf(name.clone()))?;
            let cols: Vec<Column> = args
                .iter()
                .map(|a| evaluate(a, batch, udfs))
                .collect::<Result<_, _>>()?;
            let mut row = Vec::with_capacity(cols.len());
            let mut out: Option<Column> = None;
            for i in 0..n {
                row.clear();
                for c in &cols {
                    row.push(c.value(i));
                }
                let v = udf(&row);
                match (&mut out, &v) {
                    (None, Value::Int64(_)) => out = Some(Column::Int64(Vec::with_capacity(n))),
                    (None, Value::Float64(_)) => out = Some(Column::Float64(Vec::with_capacity(n))),
                    (None, Value::Utf8(_)) => out = Some(Column::Utf8(Vec::with_capacity(n))),
                    (None, Value::Bool(_)) => out = Some(Column::Bool(Vec::with_capacity(n))),
                    _ => {}
                }
                match (out.as_mut().expect("initialised"), v) {
                    (Column::Int64(vs), Value::Int64(x)) => vs.push(x),
                    (Column::Float64(vs), Value::Float64(x)) => vs.push(x),
                    (Column::Utf8(vs), Value::Utf8(x)) => vs.push(x),
                    (Column::Bool(vs), Value::Bool(x)) => vs.push(x),
                    _ => return Err(ExprError::TypeMismatch("UDF changed its return type")),
                }
            }
            Ok(out.unwrap_or(Column::Int64(Vec::new())))
        }
    }
}

/// Evaluate a predicate to a selection mask.
pub fn evaluate_mask(
    expr: &Expr,
    batch: &Batch,
    udfs: &UdfRegistry,
) -> Result<Vec<bool>, ExprError> {
    let c = evaluate(expr, batch, udfs)?;
    expect_bool(&c).map(<[bool]>::to_vec)
}

pub(crate) fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Int64(x) => Column::Int64(vec![*x; n]),
        Value::Float64(x) => Column::Float64(vec![*x; n]),
        Value::Utf8(x) => Column::Utf8(vec![x.clone(); n]),
        Value::Bool(x) => Column::Bool(vec![*x; n]),
    }
}

pub(crate) fn expect_bool(c: &Column) -> Result<&[bool], ExprError> {
    match c {
        Column::Bool(v) => Ok(v),
        _ => Err(ExprError::TypeMismatch("expected boolean")),
    }
}

pub(crate) fn compare(op: CmpOp, l: &Column, r: &Column) -> Result<Column, ExprError> {
    fn cmp_iter<T: PartialOrd>(op: CmpOp, l: &[T], r: &[T]) -> Vec<bool> {
        l.iter()
            .zip(r)
            .map(|(a, b)| match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            })
            .collect()
    }
    Ok(Column::Bool(match (l, r) {
        (Column::Int64(a), Column::Int64(b)) => cmp_iter(op, a, b),
        (Column::Float64(a), Column::Float64(b)) => cmp_iter(op, a, b),
        (Column::Utf8(a), Column::Utf8(b)) => cmp_iter(op, a, b),
        (Column::Int64(a), Column::Float64(b)) => {
            let a: Vec<f64> = a.iter().map(|&x| x as f64).collect();
            cmp_iter(op, &a, b)
        }
        (Column::Float64(a), Column::Int64(b)) => {
            let b: Vec<f64> = b.iter().map(|&x| x as f64).collect();
            cmp_iter(op, a, &b)
        }
        _ => return Err(ExprError::TypeMismatch("incomparable columns")),
    }))
}

pub(crate) fn arithmetic(op: ArithOp, l: &Column, r: &Column) -> Result<Column, ExprError> {
    fn f(op: ArithOp, a: f64, b: f64) -> f64 {
        match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }
    Ok(match (l, r) {
        (Column::Int64(a), Column::Int64(b)) => {
            if op == ArithOp::Div {
                Column::Float64(
                    a.iter()
                        .zip(b)
                        .map(|(&x, &y)| x as f64 / y as f64)
                        .collect(),
                )
            } else {
                Column::Int64(
                    a.iter()
                        .zip(b)
                        .map(|(&x, &y)| match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => unreachable!(),
                        })
                        .collect(),
                )
            }
        }
        (Column::Float64(a), Column::Float64(b)) => {
            Column::Float64(a.iter().zip(b).map(|(&x, &y)| f(op, x, y)).collect())
        }
        (Column::Int64(a), Column::Float64(b)) => {
            Column::Float64(a.iter().zip(b).map(|(&x, &y)| f(op, x as f64, y)).collect())
        }
        (Column::Float64(a), Column::Int64(b)) => {
            Column::Float64(a.iter().zip(b).map(|(&x, &y)| f(op, x, y as f64)).collect())
        }
        _ => return Err(ExprError::TypeMismatch("arithmetic on non-numeric")),
    })
}

pub(crate) fn select(cond: &[bool], t: &Column, o: &Column) -> Result<Column, ExprError> {
    Ok(match (t, o) {
        (Column::Int64(a), Column::Int64(b)) => Column::Int64(
            cond.iter()
                .enumerate()
                .map(|(i, &c)| if c { a[i] } else { b[i] })
                .collect(),
        ),
        (Column::Float64(a), Column::Float64(b)) => Column::Float64(
            cond.iter()
                .enumerate()
                .map(|(i, &c)| if c { a[i] } else { b[i] })
                .collect(),
        ),
        (Column::Utf8(a), Column::Utf8(b)) => Column::Utf8(
            cond.iter()
                .enumerate()
                .map(|(i, &c)| if c { a[i].clone() } else { b[i].clone() })
                .collect(),
        ),
        _ => return Err(ExprError::TypeMismatch("CASE branches differ in type")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_data::{DataType, Field, Schema};

    fn batch() -> Batch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]);
        Batch::new(
            schema,
            vec![
                Column::Int64(vec![1, 2, 3, 4, 5]),
                Column::Float64(vec![1.5, 2.5, 3.5, 4.5, 5.5]),
                Column::Utf8(
                    ["MAIL", "SHIP", "AIR", "MAIL", "RAIL"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
            ],
        )
    }

    fn udfs() -> UdfRegistry {
        UdfRegistry::with_builtins()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = evaluate(&Expr::col("a"), &b, &udfs()).unwrap();
        assert_eq!(c.as_i64(), &[1, 2, 3, 4, 5]);
        let l = evaluate(&Expr::lit_f64(9.0), &b, &udfs()).unwrap();
        assert_eq!(l.as_f64(), &[9.0; 5]);
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let b = batch();
        let pred = Expr::And(vec![
            Expr::col("a").cmp(CmpOp::Ge, Expr::lit_i64(2)),
            Expr::col("b").cmp(CmpOp::Lt, Expr::lit_f64(5.0)),
        ]);
        let mask = evaluate_mask(&pred, &b, &udfs()).unwrap();
        assert_eq!(mask, vec![false, true, true, true, false]);
        let neg = evaluate_mask(&Expr::Not(Box::new(pred)), &b, &udfs()).unwrap();
        assert_eq!(neg, vec![true, false, false, false, true]);
    }

    #[test]
    fn mixed_type_comparison_coerces() {
        let b = batch();
        let mask = evaluate_mask(
            &Expr::col("a").cmp(CmpOp::Gt, Expr::lit_f64(2.5)),
            &b,
            &udfs(),
        )
        .unwrap();
        assert_eq!(mask, vec![false, false, true, true, true]);
    }

    #[test]
    fn arithmetic_q6_style() {
        // l_extendedprice * l_discount
        let b = batch();
        let e = Expr::col("b").arith(ArithOp::Mul, Expr::col("a"));
        let c = evaluate(&e, &b, &udfs()).unwrap();
        assert_eq!(c.as_f64(), &[1.5, 5.0, 10.5, 18.0, 27.5]);
        let div = evaluate(
            &Expr::col("a").arith(ArithOp::Div, Expr::lit_i64(2)),
            &b,
            &udfs(),
        )
        .unwrap();
        assert_eq!(div.as_f64()[2], 1.5);
    }

    #[test]
    fn in_list_on_strings() {
        let b = batch();
        let e = Expr::InList {
            expr: Box::new(Expr::col("s")),
            list: vec![Value::Utf8("MAIL".into()), Value::Utf8("SHIP".into())],
        };
        let mask = evaluate_mask(&e, &b, &udfs()).unwrap();
        assert_eq!(mask, vec![true, true, false, true, false]);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = Expr::Case {
            when: Box::new(Expr::col("a").cmp(CmpOp::Le, Expr::lit_i64(2))),
            then: Box::new(Expr::lit_i64(1)),
            otherwise: Box::new(Expr::lit_i64(0)),
        };
        let c = evaluate(&e, &b, &udfs()).unwrap();
        assert_eq!(c.as_i64(), &[1, 1, 0, 0, 0]);
    }

    #[test]
    fn builtin_udf_high_priority() {
        let schema = Schema::new(vec![Field::new("p", DataType::Utf8)]);
        let b = Batch::new(
            schema,
            vec![Column::Utf8(vec![
                "1-URGENT".into(),
                "5-LOW".into(),
                "2-HIGH".into(),
            ])],
        );
        let e = Expr::Udf {
            name: "is_high_priority".into(),
            args: vec![Expr::col("p")],
        };
        let c = evaluate(&e, &b, &udfs()).unwrap();
        assert_eq!(c.as_i64(), &[1, 0, 1]);
    }

    #[test]
    fn errors_are_reported() {
        let b = batch();
        assert!(matches!(
            evaluate(&Expr::col("zzz"), &b, &udfs()),
            Err(ExprError::UnknownColumn(_))
        ));
        assert!(matches!(
            evaluate(
                &Expr::Udf {
                    name: "nope".into(),
                    args: vec![]
                },
                &b,
                &udfs()
            ),
            Err(ExprError::UnknownUdf(_))
        ));
        assert!(matches!(
            evaluate(
                &Expr::col("s").arith(ArithOp::Add, Expr::lit_i64(1)),
                &b,
                &udfs()
            ),
            Err(ExprError::TypeMismatch(_))
        ));
    }

    #[test]
    fn exprs_serialize_to_json() {
        let e = Expr::And(vec![
            Expr::col("x").cmp(CmpOp::Lt, Expr::lit_i64(5)),
            Expr::InList {
                expr: Box::new(Expr::col("m")),
                list: vec![Value::Utf8("MAIL".into())],
            },
        ]);
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
