//! Per-invocation scratch arena for operator kernels.
//!
//! The vectorised pipeline allocates many short-lived buffers per worker
//! invocation: selection vectors, normalized key words, hash-table
//! scratch, gather location tables. Rather than hitting the global
//! allocator for each, kernels draw them from a thread-local [`Arena`]
//! that recycles buffers *within* one invocation and is reset *between*
//! invocations (`execute_chain` resets on entry), so a warm worker's
//! steady-state allocation traffic is bounded by its widest operator.
//!
//! The arena also meters itself: every draw adds the **requested** byte
//! count (capacity the kernel asked for, not what the pool happened to
//! hold) to a counter, so the numbers are identical across `--jobs`
//! levels and feed the deterministic telemetry/sanitizer digests. The
//! counters are plain `Cell` bumps — no branch on whether metrics are
//! enabled; the worker decides at emission time.
//!
//! Buffers drawn from the arena are ordinary `Vec`s: kernels may hand
//! them back with `recycle_*` for reuse, or simply let them drop (e.g.
//! a selection vector that escapes into the output stream) — recycling
//! is best-effort, never required for correctness.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Allocation metering for one chain invocation (reported separately
/// from `OpChainStats`, which must stay bit-compatible with the scalar
/// oracle's).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArenaReport {
    /// Total bytes requested from the arena during the invocation.
    pub bytes_allocated: u64,
    /// Arena resets performed (one per chain invocation).
    pub resets: u64,
    /// Requested bytes attributed to each operator, in chain order.
    pub per_op: Vec<(&'static str, u64)>,
}

#[derive(Default)]
struct Pools {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    i64s: Vec<Vec<i64>>,
    locs: Vec<Vec<(u32, u32)>>,
}

#[derive(Default)]
struct Inner {
    pools: RefCell<Pools>,
    bytes: Cell<u64>,
    resets: Cell<u64>,
}

/// Handle to the thread-local scratch arena. Cheap to clone (one `Rc`).
#[derive(Clone, Default)]
pub struct Arena {
    inner: Rc<Inner>,
}

thread_local! {
    static CURRENT: Arena = Arena::default();
}

/// Cap on buffers retained per pool — beyond this, returned buffers drop
/// to the global allocator instead of accumulating.
const POOL_CAP: usize = 16;

impl Arena {
    /// The calling thread's arena.
    pub fn current() -> Arena {
        CURRENT.with(|a| a.clone())
    }

    /// Start a new invocation: clears pools (releasing held memory) and
    /// the byte counter, and bumps the reset count.
    pub fn reset(&self) {
        let mut pools = self.inner.pools.borrow_mut();
        pools.u32s.clear();
        pools.u64s.clear();
        pools.i64s.clear();
        pools.locs.clear();
        self.inner.bytes.set(0);
        self.inner.resets.set(self.inner.resets.get() + 1);
    }

    /// Bytes requested since the last [`reset`](Self::reset).
    pub fn bytes_allocated(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Resets performed since the arena was created.
    pub fn resets(&self) -> u64 {
        self.inner.resets.get()
    }

    /// Meter `bytes` of externally-allocated scratch against this arena
    /// (e.g. a buffer sized inside a callee that cannot see the arena).
    pub fn note(&self, bytes: usize) {
        self.inner.bytes.set(self.inner.bytes.get() + bytes as u64);
    }

    /// Draw an empty `Vec<u32>` with room for `cap` elements.
    pub fn u32s(&self, cap: usize) -> Vec<u32> {
        self.note(cap * 4);
        let mut v = self.inner.pools.borrow_mut().u32s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Return a `Vec<u32>` for reuse within this invocation.
    pub fn recycle_u32(&self, mut v: Vec<u32>) {
        v.clear();
        let mut pools = self.inner.pools.borrow_mut();
        if pools.u32s.len() < POOL_CAP {
            pools.u32s.push(v);
        }
    }

    /// Draw an empty `Vec<u64>` with room for `cap` elements.
    pub fn u64s(&self, cap: usize) -> Vec<u64> {
        self.note(cap * 8);
        let mut v = self.inner.pools.borrow_mut().u64s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Return a `Vec<u64>` for reuse within this invocation.
    pub fn recycle_u64(&self, mut v: Vec<u64>) {
        v.clear();
        let mut pools = self.inner.pools.borrow_mut();
        if pools.u64s.len() < POOL_CAP {
            pools.u64s.push(v);
        }
    }

    /// Draw an empty `Vec<i64>` with room for `cap` elements.
    pub fn i64s(&self, cap: usize) -> Vec<i64> {
        self.note(cap * 8);
        let mut v = self.inner.pools.borrow_mut().i64s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Return a `Vec<i64>` for reuse within this invocation.
    pub fn recycle_i64(&self, mut v: Vec<i64>) {
        v.clear();
        let mut pools = self.inner.pools.borrow_mut();
        if pools.i64s.len() < POOL_CAP {
            pools.i64s.push(v);
        }
    }

    /// Draw an empty `Vec<(u32, u32)>` (gather location table) with room
    /// for `cap` elements.
    pub fn locs(&self, cap: usize) -> Vec<(u32, u32)> {
        self.note(cap * 8);
        let mut v = self.inner.pools.borrow_mut().locs.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Return a location table for reuse within this invocation.
    pub fn recycle_locs(&self, mut v: Vec<(u32, u32)>) {
        v.clear();
        let mut pools = self.inner.pools.borrow_mut();
        if pools.locs.len() < POOL_CAP {
            pools.locs.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_metered_by_request_not_capacity() {
        let a = Arena::default();
        a.reset();
        assert_eq!(a.bytes_allocated(), 0);
        let v = a.u32s(100);
        assert_eq!(a.bytes_allocated(), 400);
        a.recycle_u32(v);
        // The recycled buffer has capacity >= 100, but a smaller draw is
        // metered at its requested size — determinism across pool states.
        let _v2 = a.u32s(10);
        assert_eq!(a.bytes_allocated(), 440);
    }

    #[test]
    fn recycling_reuses_allocations() {
        let a = Arena::default();
        a.reset();
        let mut v = a.u64s(64);
        v.push(7);
        let ptr = v.as_ptr();
        a.recycle_u64(v);
        let v2 = a.u64s(32);
        assert!(v2.is_empty());
        assert_eq!(v2.as_ptr(), ptr);
    }

    #[test]
    fn reset_clears_counters_and_pools() {
        let a = Arena::default();
        a.reset();
        let v = a.i64s(8);
        a.recycle_i64(v);
        let r0 = a.resets();
        a.reset();
        assert_eq!(a.bytes_allocated(), 0);
        assert_eq!(a.resets(), r0 + 1);
        // Pool was cleared: the next draw is a fresh allocation (still
        // metered identically).
        let _ = a.locs(4);
        assert_eq!(a.bytes_allocated(), 32);
    }

    #[test]
    fn thread_local_identity() {
        let a = Arena::current();
        let b = Arena::current();
        a.note(5);
        assert_eq!(b.bytes_allocated() >= 5, true);
    }
}
