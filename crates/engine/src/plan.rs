//! Physical query plans.
//!
//! A plan is a DAG of **pipelines** (paper Sec. 3.2: "a plan contains
//! pipelines of physical operators as well as the dependencies between the
//! pipelines"). Each pipeline consumes one or more inputs (a base-table
//! scan or an upstream pipeline's shuffle output), applies a chain of
//! operators, and terminates in a sink (hash-partitioned shuffle write, or
//! the final result). The coordinator fragments each pipeline for
//! data-parallel execution.

use crate::expr::{Expr, NamedExpr};
use serde::{Deserialize, Serialize};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum of the argument.
    Sum,
    /// Row count.
    Count,
    /// Arithmetic mean (distributed as sum + count).
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// One aggregate in a `HashAggregate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggExpr {
    /// Aggregate function to apply.
    pub func: AggFunc,
    /// Argument (ignored for `Count`).
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Shorthand constructor.
    pub fn new(func: AggFunc, expr: Expr, name: &str) -> Self {
        AggExpr {
            func,
            expr,
            name: name.to_string(),
        }
    }
}

/// Aggregation phase in a distributed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggMode {
    /// Produce per-fragment partial states (sums and counts).
    Partial,
    /// Merge partial states into final values.
    Final,
    /// Single-phase (only valid when one fragment sees all data).
    Single,
}

/// A physical operator within a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Row filter.
    Filter {
        /// Predicate rows must satisfy.
        predicate: Expr,
    },
    /// Projection / computed columns.
    Project {
        /// Output columns.
        exprs: Vec<NamedExpr>,
    },
    /// Group-by aggregation.
    HashAggregate {
        /// Grouping key columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<AggExpr>,
        /// Phase within a distributed plan.
        mode: AggMode,
    },
    /// Inner equi-join: the probe side is the pipeline's stream (input 0),
    /// the build side is materialised from another pipeline input.
    HashJoin {
        /// Index of the pipeline input materialising the build side.
        build_input: usize,
        /// Join key on the build side.
        build_key: String,
        /// Join key on the probe (streamed) side.
        probe_key: String,
        /// Build-side columns carried into the output.
        build_columns: Vec<String>,
    },
    /// Sort by columns (`true` = ascending).
    Sort {
        /// `(column, ascending)` sort keys, most significant first.
        by: Vec<(String, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Row budget.
        n: u64,
    },
    /// TPCx-BB Q3's sessionisation: consumes clicks (stream, sorted
    /// internally per user by time) and emits `(item_sk, views)` pairs
    /// counting views of category items within the last `window` clicks
    /// before a purchase. `category_input` materialises the filtered item
    /// dimension.
    SessionizeQ3 {
        /// Pipeline input materialising the filtered item dimension.
        category_input: usize,
        /// Number of preceding clicks inspected per purchase.
        window: usize,
    },
    /// Synchronisation barrier for subflow analysis (paper Sec. 3.2): the
    /// worker polls a shared queue object until the barrier opens.
    Barrier {
        /// Barrier object name.
        name: String,
    },
}

/// Where a pipeline's input rows come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputSpec {
    /// Scan a catalogued dataset with projection and an optional zone-map
    /// predicate pushed into the SPF reader.
    Scan {
        /// Catalogued dataset name.
        dataset: String,
        /// Columns to read (empty = all).
        projection: Vec<String>,
        /// Predicate pushed into the SPF reader's zone maps.
        predicate: Option<Expr>,
    },
    /// Read the shuffle output of an upstream pipeline (this fragment's
    /// partition from every upstream fragment).
    Shuffle {
        /// Producing pipeline id.
        from_pipeline: u32,
    },
}

fn one() -> u32 {
    1
}

/// Pipeline sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sink {
    /// Hash-partition rows by key columns and write one object per
    /// `combine` downstream fragments. `combine > 1` is the paper's
    /// *write combining* (Sec. 5.3.2): fewer, larger shuffle objects to
    /// push access sizes over the object-storage break-even.
    ShuffleWrite {
        /// Hash-partitioning key columns (empty = everything to bucket 0).
        partition_by: Vec<String>,
        /// Buckets per written object (write combining).
        #[serde(default = "one")]
        combine: u32,
    },
    /// Write the final query result object.
    Result,
}

/// One pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Unique id within the plan.
    pub id: u32,
    /// Input sources; index 0 is the streamed side.
    pub inputs: Vec<InputSpec>,
    /// Operator chain applied to the stream.
    pub ops: Vec<Op>,
    /// Where the pipeline's output goes.
    pub sink: Sink,
    /// Fragment-count hint; `None` lets the coordinator size by input
    /// bytes.
    pub fragments: Option<u32>,
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Human-readable query name (e.g. "tpch-q6").
    pub name: String,
    /// The pipeline DAG.
    pub pipelines: Vec<Pipeline>,
}

impl PhysicalPlan {
    /// Pipeline by id.
    pub fn pipeline(&self, id: u32) -> &Pipeline {
        self.pipelines
            .iter()
            .find(|p| p.id == id)
            .unwrap_or_else(|| panic!("no pipeline {id}"))
    }

    /// Upstream pipeline ids a pipeline depends on.
    pub fn dependencies(&self, id: u32) -> Vec<u32> {
        let mut deps: Vec<u32> = self
            .pipeline(id)
            .inputs
            .iter()
            .filter_map(|i| match i {
                InputSpec::Shuffle { from_pipeline } => Some(*from_pipeline),
                InputSpec::Scan { .. } => None,
            })
            .collect();
        // HashJoin/SessionizeQ3 build inputs are already in `inputs`.
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Pipelines in a dependency-respecting execution order (stages).
    /// Panics on cyclic plans.
    pub fn stages(&self) -> Vec<u32> {
        let mut done: Vec<u32> = Vec::new();
        let mut remaining: Vec<u32> = self.pipelines.iter().map(|p| p.id).collect();
        while !remaining.is_empty() {
            let ready: Vec<u32> = remaining
                .iter()
                .copied()
                .filter(|&id| self.dependencies(id).iter().all(|d| done.contains(d)))
                .collect();
            assert!(!ready.is_empty(), "cyclic pipeline dependencies");
            for id in &ready {
                done.push(*id);
                remaining.retain(|r| r != id);
            }
        }
        done
    }

    /// The terminal (result) pipeline.
    pub fn result_pipeline(&self) -> &Pipeline {
        self.pipelines
            .iter()
            .find(|p| matches!(p.sink, Sink::Result))
            .expect("plan has a result pipeline")
    }

    /// JSON wire form (what the driver submits to the coordinator).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plans serialise")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn join_plan() -> PhysicalPlan {
        PhysicalPlan {
            name: "test-join".into(),
            pipelines: vec![
                Pipeline {
                    id: 0,
                    inputs: vec![InputSpec::Scan {
                        dataset: "orders".into(),
                        projection: vec!["o_orderkey".into()],
                        predicate: None,
                    }],
                    ops: vec![],
                    sink: Sink::ShuffleWrite {
                        partition_by: vec!["o_orderkey".into()],
                        combine: 1,
                    },
                    fragments: Some(4),
                },
                Pipeline {
                    id: 1,
                    inputs: vec![InputSpec::Scan {
                        dataset: "lineitem".into(),
                        projection: vec!["l_orderkey".into()],
                        predicate: Some(Expr::col("l_orderkey").cmp(CmpOp::Gt, Expr::lit_i64(0))),
                    }],
                    ops: vec![],
                    sink: Sink::ShuffleWrite {
                        partition_by: vec!["l_orderkey".into()],
                        combine: 1,
                    },
                    fragments: Some(8),
                },
                Pipeline {
                    id: 2,
                    inputs: vec![
                        InputSpec::Shuffle { from_pipeline: 1 },
                        InputSpec::Shuffle { from_pipeline: 0 },
                    ],
                    ops: vec![Op::HashJoin {
                        build_input: 1,
                        build_key: "o_orderkey".into(),
                        probe_key: "l_orderkey".into(),
                        build_columns: vec![],
                    }],
                    sink: Sink::Result,
                    fragments: Some(4),
                },
            ],
        }
    }

    #[test]
    fn dependencies_and_stages() {
        let plan = join_plan();
        assert_eq!(plan.dependencies(0), Vec::<u32>::new());
        assert_eq!(plan.dependencies(2), vec![0, 1]);
        let stages = plan.stages();
        let pos = |id: u32| {
            stages
                .iter()
                .position(|&x| x == id)
                .expect("pipeline in stage order")
        };
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn result_pipeline_found() {
        assert_eq!(join_plan().result_pipeline().id, 2);
    }

    #[test]
    fn json_round_trip() {
        let plan = join_plan();
        let json = plan.to_json();
        let back = PhysicalPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert!(json.contains("ShuffleWrite"));
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_plans_rejected() {
        let plan = PhysicalPlan {
            name: "cycle".into(),
            pipelines: vec![
                Pipeline {
                    id: 0,
                    inputs: vec![InputSpec::Shuffle { from_pipeline: 1 }],
                    ops: vec![],
                    sink: Sink::ShuffleWrite {
                        partition_by: vec![],
                        combine: 1,
                    },
                    fragments: None,
                },
                Pipeline {
                    id: 1,
                    inputs: vec![InputSpec::Shuffle { from_pipeline: 0 }],
                    ops: vec![],
                    sink: Sink::Result,
                    fragments: None,
                },
            ],
        };
        plan.stages();
    }
}
