//! Zone-map predicate pushdown and shuffle-read projection inference.
//!
//! Scans skip SPF row groups whose min/max statistics prove the pushed
//! predicate can never match ("file metadata is read to identify relevant
//! data and push down projections and selections", paper Sec. 3.2). The
//! analysis is conservative: only provably-disjoint groups are skipped.
//!
//! [`shuffle_projection`] runs the same idea on the exchange path: a
//! backward pass over a consumer pipeline's operator chain computes the
//! column set it can possibly touch on one of its inputs, so the shuffle
//! reader decodes only those chunks (DESIGN.md "Shuffle exchange format").

use crate::expr::{CmpOp, Expr};
use crate::operators::partial_columns;
use crate::plan::{AggMode, Op};
use skyrise_data::spf::{ChunkStats, RowGroupMeta};
use skyrise_data::{Schema, Value};
use std::collections::BTreeSet;

/// True when the row group provably contains no matching row.
pub fn prune_row_group(predicate: &Expr, schema: &Schema, rg: &RowGroupMeta) -> bool {
    never_matches(predicate, schema, rg)
}

/// Conservative three-valued analysis: returns true only when no row in
/// the group can satisfy `expr`.
fn never_matches(expr: &Expr, schema: &Schema, rg: &RowGroupMeta) -> bool {
    match expr {
        // AND never matches if any conjunct never matches.
        Expr::And(parts) => parts.iter().any(|p| never_matches(p, schema, rg)),
        // OR never matches only if every disjunct never matches.
        Expr::Or(parts) => !parts.is_empty() && parts.iter().all(|p| never_matches(p, schema, rg)),
        Expr::Cmp { op, left, right } => {
            // Only `col <op> literal` / `literal <op> col` shapes prune.
            match (&**left, &**right) {
                (Expr::Col(c), Expr::Lit(v)) => cmp_never(*op, stats_of(schema, rg, c), v),
                (Expr::Lit(v), Expr::Col(c)) => cmp_never(flip(*op), stats_of(schema, rg, c), v),
                _ => false,
            }
        }
        Expr::InList { expr, list } => {
            if let Expr::Col(c) = &**expr {
                if let Some(stats) = stats_of(schema, rg, c) {
                    return list.iter().all(|v| cmp_never(CmpOp::Eq, Some(stats), v));
                }
            }
            false
        }
        _ => false,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

fn stats_of<'a>(schema: &Schema, rg: &'a RowGroupMeta, col: &str) -> Option<&'a ChunkStats> {
    let idx = schema.index_of(col)?;
    rg.chunks.get(idx)?.stats.as_ref()
}

/// `col <op> lit` can never hold for any value in `[min, max]`?
fn cmp_never(op: CmpOp, stats: Option<&ChunkStats>, lit: &Value) -> bool {
    let Some(stats) = stats else { return false };
    match (&stats.min, &stats.max, lit) {
        (Value::Int64(lo), Value::Int64(hi), Value::Int64(v)) => int_never(op, *lo, *hi, *v),
        (Value::Int64(lo), Value::Int64(hi), Value::Float64(v)) => {
            float_never(op, *lo as f64, *hi as f64, *v)
        }
        (Value::Float64(lo), Value::Float64(hi), Value::Float64(v)) => {
            float_never(op, *lo, *hi, *v)
        }
        (Value::Float64(lo), Value::Float64(hi), Value::Int64(v)) => {
            float_never(op, *lo, *hi, *v as f64)
        }
        (Value::Utf8(lo), Value::Utf8(hi), Value::Utf8(v)) => str_never(op, lo, hi, v),
        _ => false,
    }
}

fn int_never(op: CmpOp, lo: i64, hi: i64, v: i64) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

fn float_never(op: CmpOp, lo: f64, hi: f64, v: f64) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

fn str_never(op: CmpOp, lo: &str, hi: &str, v: &str) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

// ---------------------------------------------------------------------------
// shuffle-read projection inference
// ---------------------------------------------------------------------------

/// Collect every column name referenced by `expr` into `out`.
pub fn expr_columns(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Col(name) => {
            out.insert(name.clone());
        }
        Expr::Lit(_) => {}
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            expr_columns(left, out);
            expr_columns(right, out);
        }
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                expr_columns(p, out);
            }
        }
        Expr::Not(inner) => expr_columns(inner, out),
        Expr::InList { expr, .. } => expr_columns(expr, out),
        Expr::Case {
            when,
            then,
            otherwise,
        } => {
            expr_columns(when, out);
            expr_columns(then, out);
            expr_columns(otherwise, out);
        }
        Expr::Udf { args, .. } => {
            for a in args {
                expr_columns(a, out);
            }
        }
    }
}

/// Column demand during the backward pass: either "everything the input
/// provides" (unknown schema upstream of a schema-determining operator)
/// or an explicit set.
enum Need {
    All,
    Cols(BTreeSet<String>),
}

impl Need {
    fn add_expr(&mut self, expr: &Expr) {
        if let Need::Cols(cols) = self {
            expr_columns(expr, cols);
        }
    }
}

/// The set of columns the operator chain can possibly touch on pipeline
/// input `input_idx`, inferred by a backward pass from the sink. `None`
/// means "all columns" — either the demand is genuinely unbounded (no
/// schema-determining operator between the input and the sink) or the
/// input is the pass-through stream of an empty chain.
///
/// The result is a *superset* of the columns actually read, so decoding
/// only these from a shuffle segment cannot change query results.
pub fn shuffle_projection(ops: &[Op], input_idx: usize) -> Option<Vec<String>> {
    if input_idx > 0 {
        // Build-side inputs: referenced only by materialising operators.
        let mut cols = BTreeSet::new();
        let mut referenced = false;
        for op in ops {
            match op {
                Op::HashJoin {
                    build_input,
                    build_key,
                    build_columns,
                    ..
                } if *build_input == input_idx => {
                    referenced = true;
                    cols.insert(build_key.clone());
                    cols.extend(build_columns.iter().cloned());
                }
                Op::SessionizeQ3 { category_input, .. } if *category_input == input_idx => {
                    referenced = true;
                    cols.insert("i_item_sk".to_string());
                }
                _ => {}
            }
        }
        return if referenced && !cols.is_empty() {
            Some(cols.into_iter().collect())
        } else {
            None
        };
    }
    // Stream side: walk the chain backwards from "sink needs everything".
    let mut need = Need::All;
    for op in ops.iter().rev() {
        match op {
            Op::Limit { .. } | Op::Barrier { .. } => {}
            Op::Filter { predicate } => need.add_expr(predicate),
            Op::Sort { by } => {
                if let Need::Cols(cols) = &mut need {
                    cols.extend(by.iter().map(|(c, _)| c.clone()));
                }
            }
            Op::Project { exprs } => {
                let mut cols = BTreeSet::new();
                for e in exprs {
                    let wanted = match &need {
                        Need::All => true,
                        Need::Cols(n) => n.contains(&e.name),
                    };
                    if wanted {
                        expr_columns(&e.expr, &mut cols);
                    }
                }
                need = Need::Cols(cols);
            }
            Op::HashAggregate {
                group_by,
                aggregates,
                mode,
            } => {
                let mut cols: BTreeSet<String> = group_by.iter().cloned().collect();
                for a in aggregates {
                    match mode {
                        // Final merges the partial state columns.
                        AggMode::Final => cols.extend(partial_columns(a)),
                        // Conservatively keep the argument's columns even
                        // for Count (whose argument is ignored).
                        AggMode::Partial | AggMode::Single => expr_columns(&a.expr, &mut cols),
                    }
                }
                need = Need::Cols(cols);
            }
            Op::HashJoin {
                probe_key,
                build_columns,
                ..
            } => {
                // Output = stream columns + build_columns; the stream must
                // provide the demanded non-build columns plus the probe key.
                if let Need::Cols(cols) = &mut need {
                    for c in build_columns {
                        cols.remove(c);
                    }
                    cols.insert(probe_key.clone());
                }
            }
            Op::SessionizeQ3 { .. } => {
                need = Need::Cols(
                    [
                        "wcs_user_sk",
                        "wcs_click_date_sk",
                        "wcs_click_time_sk",
                        "wcs_item_sk",
                        "wcs_sales_sk",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                );
            }
        }
    }
    match need {
        Need::All => None,
        // Reading zero columns would lose row counts; fall back to all.
        Need::Cols(cols) if cols.is_empty() => None,
        Need::Cols(cols) => Some(cols.into_iter().collect()),
    }
}

/// The chain's leading `Filter` predicates — those that run before any
/// row-reshaping operator, and therefore see the shuffled rows as decoded.
/// Safe for *pruning only*: the filters still execute, so a row group the
/// zone maps cannot disprove passes through unchanged.
pub fn leading_predicates(ops: &[Op]) -> Vec<&Expr> {
    let mut preds = Vec::new();
    for op in ops {
        match op {
            Op::Filter { predicate } => preds.push(predicate),
            Op::Barrier { .. } => {}
            _ => break,
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_data::spf::{self};
    use skyrise_data::{Batch, Column, DataType, Field};

    fn file() -> (Vec<u8>, Schema, Vec<RowGroupMeta>) {
        // Two row groups: k in [0,49] and [50,99].
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("m", DataType::Utf8),
        ]);
        let batch = Batch::new(
            std::rc::Rc::clone(&schema),
            vec![
                Column::Int64((0..100).collect()),
                Column::Utf8((0..100).map(|i| format!("{:03}", i / 50)).collect()),
            ],
        );
        let bytes = spf::write(&[batch], 50);
        let footer = spf::read_footer(&bytes).unwrap();
        (
            (*bytes).to_vec(),
            (*footer.schema).clone(),
            footer.row_groups,
        )
    }

    #[test]
    fn equality_prunes_disjoint_groups() {
        let (_, schema, rgs) = file();
        let pred = Expr::col("k").cmp(CmpOp::Eq, Expr::lit_i64(75));
        assert!(prune_row_group(&pred, &schema, &rgs[0]));
        assert!(!prune_row_group(&pred, &schema, &rgs[1]));
    }

    #[test]
    fn range_predicates_prune() {
        let (_, schema, rgs) = file();
        let lt = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(50));
        assert!(!prune_row_group(&lt, &schema, &rgs[0]));
        assert!(prune_row_group(&lt, &schema, &rgs[1]));
        let ge = Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(50));
        assert!(prune_row_group(&ge, &schema, &rgs[0]));
        // Flipped literal-first form.
        let flipped = Expr::lit_i64(50).cmp(CmpOp::Gt, Expr::col("k"));
        assert!(!prune_row_group(&flipped, &schema, &rgs[0]));
        assert!(prune_row_group(&flipped, &schema, &rgs[1]));
    }

    #[test]
    fn and_or_combine_correctly() {
        let (_, schema, rgs) = file();
        let p1 = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(10));
        let p2 = Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(90));
        // AND with a never-matching conjunct prunes.
        let and = Expr::And(vec![p1.clone(), p2.clone()]);
        assert!(prune_row_group(&and, &schema, &rgs[0]));
        // OR prunes only when all branches prune.
        let or = Expr::Or(vec![p1, p2]);
        assert!(!prune_row_group(&or, &schema, &rgs[0]));
        let or_both_far = Expr::Or(vec![
            Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(500)),
            Expr::col("k").cmp(CmpOp::Eq, Expr::lit_i64(-3)),
        ]);
        assert!(prune_row_group(&or_both_far, &schema, &rgs[0]));
    }

    #[test]
    fn in_list_and_strings() {
        let (_, schema, rgs) = file();
        let inlist = Expr::InList {
            expr: Box::new(Expr::col("m")),
            list: vec![Value::Utf8("001".into())],
        };
        assert!(
            prune_row_group(&inlist, &schema, &rgs[0]),
            "group 0 is all 000"
        );
        assert!(!prune_row_group(&inlist, &schema, &rgs[1]));
    }

    #[test]
    fn projection_infers_final_aggregate_partial_columns() {
        use crate::plan::{AggExpr, AggFunc};
        // Q1-style consumer: Final aggregate over shuffled partials.
        let ops = vec![Op::HashAggregate {
            group_by: vec!["flag".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("qty"), "sum_qty"),
                AggExpr::new(AggFunc::Avg, Expr::col("qty"), "avg_qty"),
            ],
            mode: AggMode::Final,
        }];
        let cols = shuffle_projection(&ops, 0).unwrap();
        assert_eq!(
            cols,
            vec!["avg_qty__cnt", "avg_qty__sum", "flag", "sum_qty"]
        );
    }

    #[test]
    fn projection_tracks_join_probe_side_and_build_side() {
        let ops = vec![
            Op::HashJoin {
                build_input: 1,
                build_key: "o_orderkey".into(),
                probe_key: "l_orderkey".into(),
                build_columns: vec!["o_orderpriority".into()],
            },
            Op::HashAggregate {
                group_by: vec!["o_orderpriority".into()],
                aggregates: vec![],
                mode: AggMode::Partial,
            },
        ];
        // Stream needs only the probe key: the group key comes from the
        // build side.
        assert_eq!(shuffle_projection(&ops, 0).unwrap(), vec!["l_orderkey"]);
        // Build input needs its key plus carried columns.
        assert_eq!(
            shuffle_projection(&ops, 1).unwrap(),
            vec!["o_orderkey", "o_orderpriority"]
        );
        // An input no operator references has unbounded demand.
        assert_eq!(shuffle_projection(&ops, 2), None);
    }

    #[test]
    fn projection_unbounded_without_schema_determining_op() {
        // Filter + Limit never narrow the schema.
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(3)),
            },
            Op::Limit { n: 10 },
        ];
        assert_eq!(shuffle_projection(&ops, 0), None);
        assert_eq!(shuffle_projection(&[], 0), None);
    }

    #[test]
    fn projection_includes_filter_and_sort_demand() {
        use crate::expr::NamedExpr;
        let ops = vec![
            Op::Project {
                exprs: vec![
                    NamedExpr {
                        name: "a".into(),
                        expr: Expr::col("x"),
                    },
                    NamedExpr {
                        name: "b".into(),
                        expr: Expr::col("y"),
                    },
                ],
            },
            Op::Filter {
                predicate: Expr::col("a").cmp(CmpOp::Gt, Expr::lit_i64(0)),
            },
            Op::Sort {
                by: vec![("b".into(), true)],
            },
        ];
        // Downstream demand {a, b} maps through the projection to {x, y}.
        assert_eq!(shuffle_projection(&ops, 0).unwrap(), vec!["x", "y"]);
    }

    #[test]
    fn leading_predicates_stop_at_first_reshaping_op() {
        let p1 = Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(1));
        let p2 = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(9));
        let ops = vec![
            Op::Filter {
                predicate: p1.clone(),
            },
            Op::Barrier { name: "b".into() },
            Op::Filter {
                predicate: p2.clone(),
            },
            Op::Limit { n: 1 },
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Eq, Expr::lit_i64(5)),
            },
        ];
        let preds = leading_predicates(&ops);
        assert_eq!(preds, vec![&p1, &p2]);
    }

    #[test]
    fn unknown_columns_and_complex_exprs_never_prune() {
        let (_, schema, rgs) = file();
        let unknown = Expr::col("zzz").cmp(CmpOp::Eq, Expr::lit_i64(1));
        assert!(!prune_row_group(&unknown, &schema, &rgs[0]));
        let complex = Expr::col("k").cmp(CmpOp::Eq, Expr::col("k"));
        assert!(!prune_row_group(&complex, &schema, &rgs[0]));
    }
}
