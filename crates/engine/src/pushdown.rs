//! Zone-map predicate pushdown.
//!
//! Scans skip SPF row groups whose min/max statistics prove the pushed
//! predicate can never match ("file metadata is read to identify relevant
//! data and push down projections and selections", paper Sec. 3.2). The
//! analysis is conservative: only provably-disjoint groups are skipped.

use crate::expr::{CmpOp, Expr};
use skyrise_data::spf::{ChunkStats, RowGroupMeta};
use skyrise_data::{Schema, Value};

/// True when the row group provably contains no matching row.
pub fn prune_row_group(predicate: &Expr, schema: &Schema, rg: &RowGroupMeta) -> bool {
    never_matches(predicate, schema, rg)
}

/// Conservative three-valued analysis: returns true only when no row in
/// the group can satisfy `expr`.
fn never_matches(expr: &Expr, schema: &Schema, rg: &RowGroupMeta) -> bool {
    match expr {
        // AND never matches if any conjunct never matches.
        Expr::And(parts) => parts.iter().any(|p| never_matches(p, schema, rg)),
        // OR never matches only if every disjunct never matches.
        Expr::Or(parts) => !parts.is_empty() && parts.iter().all(|p| never_matches(p, schema, rg)),
        Expr::Cmp { op, left, right } => {
            // Only `col <op> literal` / `literal <op> col` shapes prune.
            match (&**left, &**right) {
                (Expr::Col(c), Expr::Lit(v)) => cmp_never(*op, stats_of(schema, rg, c), v),
                (Expr::Lit(v), Expr::Col(c)) => cmp_never(flip(*op), stats_of(schema, rg, c), v),
                _ => false,
            }
        }
        Expr::InList { expr, list } => {
            if let Expr::Col(c) = &**expr {
                if let Some(stats) = stats_of(schema, rg, c) {
                    return list.iter().all(|v| cmp_never(CmpOp::Eq, Some(stats), v));
                }
            }
            false
        }
        _ => false,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

fn stats_of<'a>(schema: &Schema, rg: &'a RowGroupMeta, col: &str) -> Option<&'a ChunkStats> {
    let idx = schema.index_of(col)?;
    rg.chunks.get(idx)?.stats.as_ref()
}

/// `col <op> lit` can never hold for any value in `[min, max]`?
fn cmp_never(op: CmpOp, stats: Option<&ChunkStats>, lit: &Value) -> bool {
    let Some(stats) = stats else { return false };
    match (&stats.min, &stats.max, lit) {
        (Value::Int64(lo), Value::Int64(hi), Value::Int64(v)) => int_never(op, *lo, *hi, *v),
        (Value::Int64(lo), Value::Int64(hi), Value::Float64(v)) => {
            float_never(op, *lo as f64, *hi as f64, *v)
        }
        (Value::Float64(lo), Value::Float64(hi), Value::Float64(v)) => {
            float_never(op, *lo, *hi, *v)
        }
        (Value::Float64(lo), Value::Float64(hi), Value::Int64(v)) => {
            float_never(op, *lo, *hi, *v as f64)
        }
        (Value::Utf8(lo), Value::Utf8(hi), Value::Utf8(v)) => str_never(op, lo, hi, v),
        _ => false,
    }
}

fn int_never(op: CmpOp, lo: i64, hi: i64, v: i64) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

fn float_never(op: CmpOp, lo: f64, hi: f64, v: f64) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

fn str_never(op: CmpOp, lo: &str, hi: &str, v: &str) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Ne => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_data::spf::{self};
    use skyrise_data::{Batch, Column, DataType, Field};

    fn file() -> (Vec<u8>, Schema, Vec<RowGroupMeta>) {
        // Two row groups: k in [0,49] and [50,99].
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("m", DataType::Utf8),
        ]);
        let batch = Batch::new(
            std::rc::Rc::clone(&schema),
            vec![
                Column::Int64((0..100).collect()),
                Column::Utf8((0..100).map(|i| format!("{:03}", i / 50)).collect()),
            ],
        );
        let bytes = spf::write(&[batch], 50);
        let footer = spf::read_footer(&bytes).unwrap();
        (
            (*bytes).to_vec(),
            (*footer.schema).clone(),
            footer.row_groups,
        )
    }

    #[test]
    fn equality_prunes_disjoint_groups() {
        let (_, schema, rgs) = file();
        let pred = Expr::col("k").cmp(CmpOp::Eq, Expr::lit_i64(75));
        assert!(prune_row_group(&pred, &schema, &rgs[0]));
        assert!(!prune_row_group(&pred, &schema, &rgs[1]));
    }

    #[test]
    fn range_predicates_prune() {
        let (_, schema, rgs) = file();
        let lt = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(50));
        assert!(!prune_row_group(&lt, &schema, &rgs[0]));
        assert!(prune_row_group(&lt, &schema, &rgs[1]));
        let ge = Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(50));
        assert!(prune_row_group(&ge, &schema, &rgs[0]));
        // Flipped literal-first form.
        let flipped = Expr::lit_i64(50).cmp(CmpOp::Gt, Expr::col("k"));
        assert!(!prune_row_group(&flipped, &schema, &rgs[0]));
        assert!(prune_row_group(&flipped, &schema, &rgs[1]));
    }

    #[test]
    fn and_or_combine_correctly() {
        let (_, schema, rgs) = file();
        let p1 = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(10));
        let p2 = Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(90));
        // AND with a never-matching conjunct prunes.
        let and = Expr::And(vec![p1.clone(), p2.clone()]);
        assert!(prune_row_group(&and, &schema, &rgs[0]));
        // OR prunes only when all branches prune.
        let or = Expr::Or(vec![p1, p2]);
        assert!(!prune_row_group(&or, &schema, &rgs[0]));
        let or_both_far = Expr::Or(vec![
            Expr::col("k").cmp(CmpOp::Gt, Expr::lit_i64(500)),
            Expr::col("k").cmp(CmpOp::Eq, Expr::lit_i64(-3)),
        ]);
        assert!(prune_row_group(&or_both_far, &schema, &rgs[0]));
    }

    #[test]
    fn in_list_and_strings() {
        let (_, schema, rgs) = file();
        let inlist = Expr::InList {
            expr: Box::new(Expr::col("m")),
            list: vec![Value::Utf8("001".into())],
        };
        assert!(
            prune_row_group(&inlist, &schema, &rgs[0]),
            "group 0 is all 000"
        );
        assert!(!prune_row_group(&inlist, &schema, &rgs[1]));
    }

    #[test]
    fn unknown_columns_and_complex_exprs_never_prune() {
        let (_, schema, rgs) = file();
        let unknown = Expr::col("zzz").cmp(CmpOp::Eq, Expr::lit_i64(1));
        assert!(!prune_row_group(&unknown, &schema, &rgs[0]));
        let complex = Expr::col("k").cmp(CmpOp::Eq, Expr::col("k"));
        assert!(!prune_row_group(&complex, &schema, &rgs[0]));
    }
}
