//! One-time operator binding and the normalized-key executor.
//!
//! The legacy chain in [`crate::operators`] re-resolves every column name
//! via `Schema::index_of` linear search on every batch and funnels all
//! key processing through per-row `Vec<ScalarKey>` allocations. This
//! module runs the same operator chain two layers faster:
//!
//! 1. **Binding pass** — [`bind`-time] resolution of every `Op`/`Expr`
//!    column name to a column index against the pipeline's input
//!    schemas, done once per `WorkerTask`. Schema propagation needs only
//!    field *names* (projections rename, joins append build columns,
//!    aggregates emit group + aggregate columns), so binding never
//!    evaluates anything.
//! 2. **Normalized-key kernels** — grouping, joining, and sorting run on
//!    [`skyrise_data::KeyBuffer`]'s contiguous fixed-width encoding
//!    (order-equal to the legacy `ScalarKey` order), and `Filter` tracks
//!    a selection vector instead of materialising a new batch per
//!    predicate; consumers gather once.
//!
//! Every kernel reproduces the legacy path bit-for-bit: group output
//! order equals the old `BTreeMap<Vec<ScalarKey>, _>` iteration order,
//! per-group float accumulation order equals the old stream-row order,
//! and join match lists keep build-row order. The legacy path stays
//! available as the property-test oracle and as a benchmark baseline via
//! [`set_legacy_kernels`].

use crate::error::EngineError;
use crate::expr::{self, ArithOp, CmpOp, Expr, ExprError, NamedExpr, ScalarUdf, UdfRegistry};
use crate::operators::{self, column_from_values, AggState, OpChainStats};
use crate::plan::{AggExpr, AggFunc, AggMode, Op};
use skyrise_data::{Batch, Column, Field, KeyBuffer, Schema, Value};
use std::cell::Cell;

thread_local! {
    static FORCE_LEGACY: Cell<bool> = const { Cell::new(false) };
}

/// Force [`execute_chain`] through the legacy `ScalarKey` operators
/// (used by `kernel_bench` to time the pre-optimisation baseline).
pub fn set_legacy_kernels(on: bool) {
    FORCE_LEGACY.with(|f| f.set(on));
}

/// Whether the legacy kernels are currently forced.
pub fn legacy_kernels() -> bool {
    FORCE_LEGACY.with(|f| f.get())
}

// ---------------------------------------------------------------------------
// bound expressions
// ---------------------------------------------------------------------------

/// An expression with column references resolved to indices and UDFs
/// resolved to their registry entries.
enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp {
        op: CmpOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    And(Vec<BoundExpr>),
    Or(Vec<BoundExpr>),
    Not(Box<BoundExpr>),
    Arith {
        op: ArithOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<Value>,
    },
    Case {
        when: Box<BoundExpr>,
        then: Box<BoundExpr>,
        otherwise: Box<BoundExpr>,
    },
    Udf {
        udf: ScalarUdf,
        args: Vec<BoundExpr>,
    },
}

fn bind_expr(e: &Expr, names: &[String], udfs: &UdfRegistry) -> Result<BoundExpr, EngineError> {
    Ok(match e {
        Expr::Col(name) => BoundExpr::Col(
            names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| EngineError::Expr(ExprError::UnknownColumn(name.clone())))?,
        ),
        Expr::Lit(v) => BoundExpr::Lit(v.clone()),
        Expr::Cmp { op, left, right } => BoundExpr::Cmp {
            op: *op,
            left: Box::new(bind_expr(left, names, udfs)?),
            right: Box::new(bind_expr(right, names, udfs)?),
        },
        Expr::And(parts) => BoundExpr::And(
            parts
                .iter()
                .map(|p| bind_expr(p, names, udfs))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Or(parts) => BoundExpr::Or(
            parts
                .iter()
                .map(|p| bind_expr(p, names, udfs))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Not(inner) => BoundExpr::Not(Box::new(bind_expr(inner, names, udfs)?)),
        Expr::Arith { op, left, right } => BoundExpr::Arith {
            op: *op,
            left: Box::new(bind_expr(left, names, udfs)?),
            right: Box::new(bind_expr(right, names, udfs)?),
        },
        Expr::InList { expr, list } => BoundExpr::InList {
            expr: Box::new(bind_expr(expr, names, udfs)?),
            list: list.clone(),
        },
        Expr::Case {
            when,
            then,
            otherwise,
        } => BoundExpr::Case {
            when: Box::new(bind_expr(when, names, udfs)?),
            then: Box::new(bind_expr(then, names, udfs)?),
            otherwise: Box::new(bind_expr(otherwise, names, udfs)?),
        },
        Expr::Udf { name, args } => BoundExpr::Udf {
            udf: udfs
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::Expr(ExprError::UnknownUdf(name.clone())))?,
            args: args
                .iter()
                .map(|a| bind_expr(a, names, udfs))
                .collect::<Result<_, _>>()?,
        },
    })
}

/// Evaluate a bound expression over a batch. Mirrors
/// [`crate::expr::evaluate`] minus the per-batch name resolution.
fn evaluate_bound(e: &BoundExpr, batch: &Batch) -> Result<Column, ExprError> {
    let n = batch.num_rows();
    match e {
        BoundExpr::Col(i) => Ok(batch.columns[*i].clone()),
        BoundExpr::Lit(v) => Ok(expr::broadcast(v, n)),
        BoundExpr::Cmp { op, left, right } => {
            let l = evaluate_bound(left, batch)?;
            let r = evaluate_bound(right, batch)?;
            expr::compare(*op, &l, &r)
        }
        BoundExpr::And(parts) => {
            let mut acc = vec![true; n];
            for p in parts {
                let c = evaluate_bound(p, batch)?;
                let b = expr::expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a &= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        BoundExpr::Or(parts) => {
            let mut acc = vec![false; n];
            for p in parts {
                let c = evaluate_bound(p, batch)?;
                let b = expr::expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a |= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        BoundExpr::Not(inner) => {
            let c = evaluate_bound(inner, batch)?;
            let b = expr::expect_bool(&c)?;
            Ok(Column::Bool(b.iter().map(|&x| !x).collect()))
        }
        BoundExpr::Arith { op, left, right } => {
            let l = evaluate_bound(left, batch)?;
            let r = evaluate_bound(right, batch)?;
            expr::arithmetic(*op, &l, &r)
        }
        BoundExpr::InList { expr: inner, list } => {
            let c = evaluate_bound(inner, batch)?;
            let mut out = Vec::with_capacity(n);
            match &c {
                Column::Utf8(v) => {
                    let set: Vec<&str> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Utf8(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect();
                    for s in v {
                        out.push(set.contains(&s.as_str()));
                    }
                }
                Column::Int64(v) => {
                    let set: Vec<i64> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int64(i) => Some(*i),
                            _ => None,
                        })
                        .collect();
                    for x in v {
                        out.push(set.contains(x));
                    }
                }
                _ => return Err(ExprError::TypeMismatch("IN on unsupported type")),
            }
            Ok(Column::Bool(out))
        }
        BoundExpr::Case {
            when,
            then,
            otherwise,
        } => {
            let cond_col = evaluate_bound(when, batch)?;
            let cond = expr::expect_bool(&cond_col)?;
            let t = evaluate_bound(then, batch)?;
            let o = evaluate_bound(otherwise, batch)?;
            expr::select(cond, &t, &o)
        }
        BoundExpr::Udf { udf, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| evaluate_bound(a, batch))
                .collect::<Result<_, _>>()?;
            let mut row = Vec::with_capacity(cols.len());
            let mut out: Option<Column> = None;
            for i in 0..n {
                row.clear();
                for c in &cols {
                    row.push(c.value(i));
                }
                let v = udf(&row);
                match (&mut out, &v) {
                    (None, Value::Int64(_)) => out = Some(Column::Int64(Vec::with_capacity(n))),
                    (None, Value::Float64(_)) => out = Some(Column::Float64(Vec::with_capacity(n))),
                    (None, Value::Utf8(_)) => out = Some(Column::Utf8(Vec::with_capacity(n))),
                    (None, Value::Bool(_)) => out = Some(Column::Bool(Vec::with_capacity(n))),
                    _ => {}
                }
                match (out.as_mut().expect("initialised"), v) {
                    (Column::Int64(vs), Value::Int64(x)) => vs.push(x),
                    (Column::Float64(vs), Value::Float64(x)) => vs.push(x),
                    (Column::Utf8(vs), Value::Utf8(x)) => vs.push(x),
                    (Column::Bool(vs), Value::Bool(x)) => vs.push(x),
                    _ => return Err(ExprError::TypeMismatch("UDF changed its return type")),
                }
            }
            Ok(out.unwrap_or(Column::Int64(Vec::new())))
        }
    }
}

// ---------------------------------------------------------------------------
// bound operators
// ---------------------------------------------------------------------------

enum BoundAggKind {
    /// Partial/Single: evaluate the argument per batch (`None` = Count,
    /// which ignores its argument — the legacy path never binds it).
    Eval(Option<BoundExpr>),
    /// Final: merge partial-state columns located by index.
    Merge {
        primary: usize,
        secondary: Option<usize>,
    },
}

struct BoundAgg {
    func: AggFunc,
    name: String,
    kind: BoundAggKind,
}

/// Column indices of the Q3 click stream used by sessionisation.
struct SessionCols {
    users: usize,
    dates: usize,
    times: usize,
    items: usize,
    sales: usize,
}

enum BoundOp {
    Filter(BoundExpr),
    Project(Vec<(String, BoundExpr)>),
    HashAggregate {
        group_idx: Vec<usize>,
        group_names: Vec<String>,
        aggs: Vec<BoundAgg>,
        mode: AggMode,
    },
    HashJoin {
        build_input: usize,
        build_key: usize,
        probe_key: usize,
        build_cols: Vec<usize>,
    },
    Sort {
        by: Vec<(usize, bool)>,
    },
    Limit(usize),
    SessionizeQ3 {
        category_input: usize,
        category_col: usize,
        cols: SessionCols,
        window: usize,
    },
    Barrier,
}

fn idx_of(names: &[String], name: &str, what: &str) -> Result<usize, EngineError> {
    names
        .iter()
        .position(|n| n == name)
        .ok_or_else(|| EngineError::Plan(format!("unknown {what} column {name}")))
}

/// Resolve every column reference of an operator chain against the
/// pipeline's input schemas (names only) — once per task, not per batch.
fn bind_ops(
    ops: &[Op],
    input_names: &[Vec<String>],
    udfs: &UdfRegistry,
) -> Result<Vec<BoundOp>, EngineError> {
    let mut cur: Vec<String> = input_names
        .first()
        .cloned()
        .ok_or_else(|| EngineError::Plan("pipeline has no inputs".into()))?;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let bound = match op {
            Op::Filter { predicate } => BoundOp::Filter(bind_expr(predicate, &cur, udfs)?),
            Op::Project { exprs } => {
                let bound: Vec<(String, BoundExpr)> = exprs
                    .iter()
                    .map(|ne: &NamedExpr| Ok((ne.name.clone(), bind_expr(&ne.expr, &cur, udfs)?)))
                    .collect::<Result<_, EngineError>>()?;
                cur = bound.iter().map(|(n, _)| n.clone()).collect();
                BoundOp::Project(bound)
            }
            Op::HashAggregate {
                group_by,
                aggregates,
                mode,
            } => {
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| idx_of(&cur, g, "key"))
                    .collect::<Result<_, _>>()?;
                let aggs: Vec<BoundAgg> = aggregates
                    .iter()
                    .map(|a: &AggExpr| {
                        let kind = match mode {
                            AggMode::Partial | AggMode::Single => match a.func {
                                AggFunc::Count => BoundAggKind::Eval(None),
                                _ => BoundAggKind::Eval(Some(bind_expr(&a.expr, &cur, udfs)?)),
                            },
                            AggMode::Final => {
                                let names = operators::partial_columns(a);
                                let missing = |n: &str| {
                                    EngineError::Plan(format!("missing partial column {n}"))
                                };
                                let primary = cur
                                    .iter()
                                    .position(|n| n == &names[0])
                                    .ok_or_else(|| missing(&names[0]))?;
                                let secondary = names
                                    .get(1)
                                    .map(|n| {
                                        cur.iter().position(|c| c == n).ok_or_else(|| missing(n))
                                    })
                                    .transpose()?;
                                BoundAggKind::Merge { primary, secondary }
                            }
                        };
                        Ok(BoundAgg {
                            func: a.func,
                            name: a.name.clone(),
                            kind,
                        })
                    })
                    .collect::<Result<_, EngineError>>()?;
                let group_names = group_by.clone();
                cur = group_names.clone();
                for a in aggregates {
                    if matches!(mode, AggMode::Partial) {
                        cur.extend(operators::partial_columns(a));
                    } else {
                        cur.push(a.name.clone());
                    }
                }
                BoundOp::HashAggregate {
                    group_idx,
                    group_names,
                    aggs,
                    mode: *mode,
                }
            }
            Op::HashJoin {
                build_input,
                build_key,
                probe_key,
                build_columns,
            } => {
                let build_names = input_names
                    .get(*build_input)
                    .ok_or_else(|| EngineError::Plan(format!("no build input {build_input}")))?;
                let bound = BoundOp::HashJoin {
                    build_input: *build_input,
                    build_key: idx_of(build_names, build_key, "key")?,
                    probe_key: idx_of(&cur, probe_key, "key")?,
                    build_cols: build_columns
                        .iter()
                        .map(|c| idx_of(build_names, c, "build"))
                        .collect::<Result<_, _>>()?,
                };
                cur.extend(build_columns.iter().cloned());
                bound
            }
            Op::Sort { by } => BoundOp::Sort {
                by: by
                    .iter()
                    .map(|(name, asc)| Ok((idx_of(&cur, name, "sort")?, *asc)))
                    .collect::<Result<_, EngineError>>()?,
            },
            Op::Limit { n } => BoundOp::Limit(*n as usize),
            Op::SessionizeQ3 {
                category_input,
                window,
            } => {
                let item_names = input_names
                    .get(*category_input)
                    .ok_or_else(|| EngineError::Plan(format!("no input {category_input}")))?;
                let bound = BoundOp::SessionizeQ3 {
                    category_input: *category_input,
                    category_col: idx_of(item_names, "i_item_sk", "key")?,
                    cols: SessionCols {
                        users: idx_of(&cur, "wcs_user_sk", "key")?,
                        dates: idx_of(&cur, "wcs_click_date_sk", "key")?,
                        times: idx_of(&cur, "wcs_click_time_sk", "key")?,
                        items: idx_of(&cur, "wcs_item_sk", "key")?,
                        sales: idx_of(&cur, "wcs_sales_sk", "key")?,
                    },
                    window: *window,
                };
                cur = vec!["item_sk".to_string(), "views".to_string()];
                bound
            }
            Op::Barrier { .. } => BoundOp::Barrier,
        };
        out.push(bound);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// selection-vector stream
// ---------------------------------------------------------------------------

/// A batch plus an optional selection vector: `sel` lists the live row
/// indices (in order). Filters refine `sel` without copying columns; the
/// next materialising consumer gathers once.
struct SelBatch {
    batch: Batch,
    sel: Option<Vec<usize>>,
}

impl SelBatch {
    fn wrap(batch: Batch) -> SelBatch {
        SelBatch { batch, sel: None }
    }

    fn rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.num_rows(),
        }
    }

    fn materialise(self) -> Batch {
        match self.sel {
            Some(s) => self.batch.take(&s),
            None => self.batch,
        }
    }
}

fn materialise_all(stream: Vec<SelBatch>) -> Vec<Batch> {
    stream.into_iter().map(SelBatch::materialise).collect()
}

// ---------------------------------------------------------------------------
// the bound executor
// ---------------------------------------------------------------------------

/// Run an operator chain over materialised inputs via the binding pass
/// and the normalized-key kernels. Produces bit-identical output to
/// [`crate::operators::execute_ops`], which remains the oracle; falls
/// back to it when the legacy mode is forced ([`set_legacy_kernels`]) or
/// when an input stream carries no batches (no schema to bind against).
pub fn execute_chain(
    ops: &[Op],
    inputs: &[Vec<Batch>],
    udfs: &UdfRegistry,
) -> Result<(Vec<Batch>, OpChainStats), EngineError> {
    if legacy_kernels() || inputs.is_empty() || inputs.iter().any(Vec::is_empty) {
        return operators::execute_ops(ops, inputs, udfs);
    }
    let input_names: Vec<Vec<String>> = inputs
        .iter()
        .map(|batches| {
            batches[0]
                .schema
                .fields
                .iter()
                .map(|f| f.name.clone())
                .collect()
        })
        .collect();
    let bound = bind_ops(ops, &input_names, udfs)?;
    let mut stream: Vec<SelBatch> = inputs[0].iter().cloned().map(SelBatch::wrap).collect();
    let rows_in = stream.iter().map(|b| b.rows() as u64).sum();
    for op in &bound {
        stream = apply_bound(op, stream, inputs)?;
    }
    let out = materialise_all(stream);
    let stats = OpChainStats {
        rows_in,
        rows_out: out.iter().map(|b| b.num_rows() as u64).sum(),
    };
    Ok((out, stats))
}

fn apply_bound(
    op: &BoundOp,
    stream: Vec<SelBatch>,
    inputs: &[Vec<Batch>],
) -> Result<Vec<SelBatch>, EngineError> {
    match op {
        BoundOp::Filter(pred) => stream
            .into_iter()
            .map(|sb| {
                let mask_col = evaluate_bound(pred, &sb.batch)?;
                let mask = expr::expect_bool(&mask_col)?;
                let keep: Vec<usize> = match &sb.sel {
                    None => (0..sb.batch.num_rows()).filter(|&i| mask[i]).collect(),
                    Some(s) => s.iter().copied().filter(|&i| mask[i]).collect(),
                };
                Ok(SelBatch {
                    batch: sb.batch,
                    sel: Some(keep),
                })
            })
            .collect::<Result<_, ExprError>>()
            .map_err(EngineError::from),
        BoundOp::Project(exprs) => stream
            .into_iter()
            .map(|sb| {
                let b = sb.materialise();
                let mut fields = Vec::with_capacity(exprs.len());
                let mut columns = Vec::with_capacity(exprs.len());
                for (name, e) in exprs {
                    let col = evaluate_bound(e, &b)?;
                    fields.push(Field::new(name, col.data_type()));
                    columns.push(col);
                }
                Ok(SelBatch::wrap(Batch::new(Schema::new(fields), columns)))
            })
            .collect::<Result<_, ExprError>>()
            .map_err(EngineError::from),
        BoundOp::HashAggregate {
            group_idx,
            group_names,
            aggs,
            mode,
        } => {
            let batches = materialise_all(stream);
            hash_aggregate(&batches, group_idx, group_names, aggs, *mode)
                .map(|b| vec![SelBatch::wrap(b)])
        }
        BoundOp::HashJoin {
            build_input,
            build_key,
            probe_key,
            build_cols,
        } => {
            let probe = materialise_all(stream);
            let build = &inputs[*build_input];
            hash_join(&probe, build, *build_key, *probe_key, build_cols)
                .map(|bs| bs.into_iter().map(SelBatch::wrap).collect())
        }
        BoundOp::Sort { by } => {
            let batches = materialise_all(stream);
            sort(&batches, by).map(|b| vec![SelBatch::wrap(b)])
        }
        BoundOp::Limit(n) => Ok(limit(stream, *n)),
        BoundOp::SessionizeQ3 {
            category_input,
            category_col,
            cols,
            window,
        } => {
            let clicks = materialise_all(stream);
            let items = &inputs[*category_input];
            sessionize_q3(&clicks, items, *category_col, cols, *window)
                .map(|b| vec![SelBatch::wrap(b)])
        }
        BoundOp::Barrier => Ok(stream),
    }
}

/// Prefix-limit on selection vectors: slices full batches, truncates
/// selections — no gather unless a filter already created one.
fn limit(stream: Vec<SelBatch>, n: usize) -> Vec<SelBatch> {
    let mut remaining = n;
    let mut out = Vec::new();
    for sb in stream {
        if remaining == 0 {
            if out.is_empty() {
                out.push(SelBatch::wrap(sb.batch.slice(0, 0)));
            }
            break;
        }
        let take = sb.rows().min(remaining);
        remaining -= take;
        out.push(match sb.sel {
            None => SelBatch::wrap(sb.batch.slice(0, take)),
            Some(s) => SelBatch {
                batch: sb.batch,
                sel: Some(s[..take].to_vec()),
            },
        });
    }
    out
}

// ---------------------------------------------------------------------------
// normalized-key kernels
// ---------------------------------------------------------------------------

/// Grouping of all rows of a batch run by normalized composite key.
struct Grouping {
    keys: KeyBuffer,
    /// Flat row index (across non-empty batches) → group id. Group ids
    /// are assigned in normalized-key order, which equals the legacy
    /// `BTreeMap<Vec<ScalarKey>, _>` iteration order.
    group_of: Vec<u32>,
    /// Group id → one flat row holding that key.
    rep: Vec<u32>,
}

fn group_rows(batches: &[&Batch], cols: &[usize]) -> Grouping {
    let keys = KeyBuffer::encode(batches, cols);
    let order = keys.sort_indices();
    let mut group_of = vec![0u32; keys.rows()];
    let mut rep: Vec<u32> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let start = order[i] as usize;
        let gid = rep.len() as u32;
        rep.push(order[i]);
        while i < order.len() && keys.row(order[i] as usize) == keys.row(start) {
            group_of[order[i] as usize] = gid;
            i += 1;
        }
    }
    Grouping {
        keys,
        group_of,
        rep,
    }
}

fn hash_aggregate(
    stream: &[Batch],
    group_idx: &[usize],
    group_names: &[String],
    aggs: &[BoundAgg],
    mode: AggMode,
) -> Result<Batch, EngineError> {
    let nonempty: Vec<&Batch> = stream.iter().filter(|b| b.num_rows() > 0).collect();
    let grouping = group_rows(&nonempty, group_idx);
    let n_groups = grouping.rep.len();
    let mut states: Vec<Vec<AggState>> = (0..n_groups)
        .map(|_| aggs.iter().map(|a| AggState::new(a.func)).collect())
        .collect();

    // Accumulate in original stream-row order: each group's updates hit
    // in the same order as the legacy path, so float sums agree exactly.
    let mut flat = 0usize;
    for batch in &nonempty {
        match mode {
            AggMode::Partial | AggMode::Single => {
                let args: Vec<Column> = aggs
                    .iter()
                    .map(|a| match &a.kind {
                        BoundAggKind::Eval(None) => Ok(Column::Int64(vec![1; batch.num_rows()])),
                        BoundAggKind::Eval(Some(e)) => {
                            evaluate_bound(e, batch).map_err(EngineError::from)
                        }
                        BoundAggKind::Merge { .. } => unreachable!("bound for Final mode"),
                    })
                    .collect::<Result<_, _>>()?;
                for row in 0..batch.num_rows() {
                    let st = &mut states[grouping.group_of[flat] as usize];
                    for (s, col) in st.iter_mut().zip(&args) {
                        s.update(&col.value(row));
                    }
                    flat += 1;
                }
            }
            AggMode::Final => {
                let cols: Vec<(&Column, Option<&Column>)> = aggs
                    .iter()
                    .map(|a| match &a.kind {
                        BoundAggKind::Merge { primary, secondary } => (
                            &batch.columns[*primary],
                            secondary.map(|i| &batch.columns[i]),
                        ),
                        BoundAggKind::Eval(_) => unreachable!("bound for Partial/Single mode"),
                    })
                    .collect();
                for row in 0..batch.num_rows() {
                    let st = &mut states[grouping.group_of[flat] as usize];
                    for (s, (primary, secondary)) in st.iter_mut().zip(&cols) {
                        s.merge(
                            &primary.value(row),
                            secondary.map(|c| c.value(row)).as_ref(),
                        );
                    }
                    flat += 1;
                }
            }
        }
    }

    // Assemble the output batch exactly as the legacy path does, with
    // groups in normalized-key (== ScalarKey BTreeMap) order.
    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    for (gi, gname) in group_names.iter().enumerate() {
        let vals: Vec<Value> = grouping
            .rep
            .iter()
            .map(|&r| grouping.keys.value(r as usize, gi))
            .collect();
        let col = column_from_values(&vals);
        fields.push(Field::new(gname, col.data_type()));
        columns.push(col);
    }

    let emit_final = !matches!(mode, AggMode::Partial);
    for (ai, agg) in aggs.iter().enumerate() {
        match (agg.func, emit_final) {
            (AggFunc::Avg, false) => {
                let mut sums = Vec::with_capacity(n_groups);
                let mut counts = Vec::with_capacity(n_groups);
                for st in &states {
                    let AggState::Avg { sum, count } = &st[ai] else {
                        unreachable!()
                    };
                    sums.push(*sum);
                    counts.push(*count);
                }
                fields.push(Field::new(
                    &format!("{}__sum", agg.name),
                    skyrise_data::DataType::Float64,
                ));
                columns.push(Column::Float64(sums));
                fields.push(Field::new(
                    &format!("{}__cnt", agg.name),
                    skyrise_data::DataType::Int64,
                ));
                columns.push(Column::Int64(counts));
            }
            _ => {
                let mut vals: Vec<Value> = Vec::with_capacity(n_groups);
                for st in &states {
                    vals.push(match &st[ai] {
                        AggState::Sum(s) => Value::Float64(*s),
                        AggState::Count(c) => Value::Int64(*c),
                        AggState::Avg { sum, count } => Value::Float64(if *count == 0 {
                            0.0
                        } else {
                            sum / *count as f64
                        }),
                        AggState::Min(m) | AggState::Max(m) => {
                            m.clone().unwrap_or(Value::Float64(f64::NAN))
                        }
                    });
                }
                let col = column_from_values(&vals);
                fields.push(Field::new(&agg.name, col.data_type()));
                columns.push(col);
            }
        }
    }

    if n_groups == 0 && group_names.is_empty() && emit_final {
        // Global aggregate over zero rows still yields one row of zeros.
        for c in columns.iter_mut() {
            match c {
                Column::Float64(v) => v.push(0.0),
                Column::Int64(v) => v.push(0),
                Column::Utf8(v) => v.push(String::new()),
                Column::Bool(v) => v.push(false),
            }
        }
    }

    Ok(Batch::new(Schema::new(fields), columns))
}

fn hash_join(
    probe: &[Batch],
    build: &[Batch],
    build_key: usize,
    probe_key: usize,
    build_cols: &[usize],
) -> Result<Vec<Batch>, EngineError> {
    if build.is_empty() || probe.is_empty() {
        return Err(EngineError::Plan(
            "hash join requires materialised build and probe inputs".into(),
        ));
    }
    let build_all = Batch::concat(build);
    // Build side: normalized keys sorted (key, row). Equal keys keep
    // build-row order, matching the legacy table's insertion order.
    let kb = KeyBuffer::encode(&[&build_all], &[build_key]);
    let order = kb.sort_indices();
    let sorted: Vec<u64> = order.iter().map(|&r| kb.word(r as usize, 0)).collect();
    let build_col_refs: Vec<(&Field, &Column)> = build_cols
        .iter()
        .map(|&i| (&build_all.schema.fields[i], &build_all.columns[i]))
        .collect();

    let mut out = Vec::new();
    for pb in probe {
        // Probe without allocation: encode the probe column against the
        // build dictionary, then binary-search the sorted key run.
        let enc = kb.encode_probe(0, &pb.columns[probe_key]);
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        for (prow, e) in enc.iter().enumerate() {
            let Some(k) = e else { continue };
            let mut j = sorted.partition_point(|&x| x < *k);
            while j < sorted.len() && sorted[j] == *k {
                probe_idx.push(prow);
                build_idx.push(order[j] as usize);
                j += 1;
            }
        }
        let mut fields: Vec<Field> = pb.schema.fields.clone();
        let mut columns: Vec<Column> = pb.take(&probe_idx).columns;
        for (f, c) in &build_col_refs {
            fields.push((*f).clone());
            columns.push(c.take(&build_idx));
        }
        out.push(Batch::new(Schema::new(fields), columns));
    }
    Ok(out)
}

fn sort(stream: &[Batch], by: &[(usize, bool)]) -> Result<Batch, EngineError> {
    if stream.is_empty() {
        return Err(EngineError::Plan("sort over no batches".into()));
    }
    let all = Batch::concat(stream);
    let cols: Vec<usize> = by.iter().map(|(i, _)| *i).collect();
    let kb = KeyBuffer::encode(&[&all], &cols);
    let mut idx: Vec<usize> = (0..all.num_rows()).collect();
    idx.sort_by(|&a, &b| {
        for (c, (_, asc)) in by.iter().enumerate() {
            let ord = kb.word(a, c).cmp(&kb.word(b, c));
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(all.take(&idx))
}

fn sessionize_q3(
    clicks: &[Batch],
    items: &[Batch],
    category_col: usize,
    cols: &SessionCols,
    window: usize,
) -> Result<Batch, EngineError> {
    use skyrise_data::DataType;
    // Category membership as a sorted vector + binary search (same
    // membership, same ascending iteration as the legacy BTreeSet).
    let mut category: Vec<i64> = items
        .iter()
        .flat_map(|b| b.columns[category_col].as_i64().iter().copied())
        .collect();
    category.sort_unstable();
    category.dedup();
    let in_category = |x: i64| category.binary_search(&x).is_ok();

    let out_schema = Schema::new(vec![
        Field::new("item_sk", DataType::Int64),
        Field::new("views", DataType::Int64),
    ]);
    if clicks.is_empty() {
        return Ok(Batch::new(
            out_schema,
            vec![Column::Int64(vec![]), Column::Int64(vec![])],
        ));
    }
    let all = Batch::concat(clicks);
    let users = all.columns[cols.users].as_i64();
    let dates = all.columns[cols.dates].as_i64();
    let times = all.columns[cols.times].as_i64();
    let item_sk = all.columns[cols.items].as_i64();
    let sales = all.columns[cols.sales].as_i64();

    // Order clicks per user by (date, time).
    let mut idx: Vec<usize> = (0..all.num_rows()).collect();
    idx.sort_by_key(|&i| (users[i], dates[i], times[i]));

    let mut views: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    let mut start = 0usize;
    while start < idx.len() {
        let user = users[idx[start]];
        let mut end = start;
        while end < idx.len() && users[idx[end]] == user {
            end += 1;
        }
        let session = &idx[start..end];
        for (pos, &click) in session.iter().enumerate() {
            let is_purchase = sales[click] != 0 && in_category(item_sk[click]);
            if !is_purchase {
                continue;
            }
            let from = pos.saturating_sub(window);
            for &prior in &session[from..pos] {
                let viewed = item_sk[prior];
                if in_category(viewed) {
                    *views.entry(viewed).or_insert(0) += 1;
                }
            }
        }
        start = end;
    }

    Ok(Batch::new(
        out_schema,
        vec![
            Column::Int64(views.keys().copied().collect()),
            Column::Int64(views.values().copied().collect()),
        ],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;
    use skyrise_data::DataType;
    use std::rc::Rc;

    fn udfs() -> UdfRegistry {
        UdfRegistry::with_builtins()
    }

    fn lineitems() -> Vec<Batch> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("flag", DataType::Utf8),
        ]);
        vec![
            Batch::new(
                Rc::clone(&schema),
                vec![
                    Column::Int64(vec![1, 2, 3]),
                    Column::Float64(vec![10.0, 20.0, 30.0]),
                    Column::Utf8(vec!["A".into(), "B".into(), "A".into()]),
                ],
            ),
            Batch::new(
                schema,
                vec![
                    Column::Int64(vec![4, 5]),
                    Column::Float64(vec![40.0, 50.0]),
                    Column::Utf8(vec!["B".into(), "A".into()]),
                ],
            ),
        ]
    }

    /// Every operator shape through both executors: identical batches.
    fn assert_matches_oracle(ops: &[Op], inputs: &[Vec<Batch>]) {
        let (new, new_stats) = execute_chain(ops, inputs, &udfs()).unwrap();
        let (old, old_stats) = operators::execute_ops(ops, inputs, &udfs()).unwrap();
        let new_all = Batch::concat(&new);
        let old_all = Batch::concat(&old);
        assert_eq!(new_all.schema, old_all.schema);
        assert_eq!(new_all.columns, old_all.columns);
        assert_eq!(new_stats, old_stats);
    }

    #[test]
    fn filter_project_matches_oracle() {
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(2)),
            },
            Op::Filter {
                predicate: Expr::col("flag").cmp(CmpOp::Eq, Expr::lit_str("A")),
            },
            Op::Project {
                exprs: vec![NamedExpr::new(
                    "double",
                    Expr::col("price").arith(ArithOp::Mul, Expr::lit_f64(2.0)),
                )],
            },
        ];
        assert_matches_oracle(&ops, &[lineitems()]);
    }

    #[test]
    fn aggregate_matches_oracle_all_modes() {
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("price"), "total"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
            AggExpr::new(AggFunc::Avg, Expr::col("price"), "avg_price"),
            AggExpr::new(AggFunc::Min, Expr::col("k"), "min_k"),
            AggExpr::new(AggFunc::Max, Expr::col("flag"), "max_flag"),
        ];
        for mode in [AggMode::Single, AggMode::Partial] {
            let ops = vec![Op::HashAggregate {
                group_by: vec!["flag".into()],
                aggregates: aggs.clone(),
                mode,
            }];
            assert_matches_oracle(&ops, &[lineitems()]);
        }
        // Global aggregate (no group keys).
        let ops = vec![Op::HashAggregate {
            group_by: vec![],
            aggregates: aggs,
            mode: AggMode::Single,
        }];
        assert_matches_oracle(&ops, &[lineitems()]);
    }

    #[test]
    fn join_sort_limit_matches_oracle() {
        let orders_schema = Schema::new(vec![
            Field::new("o_key", DataType::Int64),
            Field::new("prio", DataType::Utf8),
        ]);
        let orders = vec![Batch::new(
            orders_schema,
            vec![
                Column::Int64(vec![1, 2, 4, 2]),
                Column::Utf8(vec!["HI".into(), "LO".into(), "HI".into(), "MED".into()]),
            ],
        )];
        let ops = vec![
            Op::HashJoin {
                build_input: 1,
                build_key: "o_key".into(),
                probe_key: "k".into(),
                build_columns: vec!["prio".into()],
            },
            Op::Sort {
                by: vec![("prio".into(), true), ("k".into(), false)],
            },
            Op::Limit { n: 3 },
        ];
        assert_matches_oracle(&ops, &[lineitems(), orders]);
    }

    #[test]
    fn legacy_toggle_forces_oracle_path() {
        set_legacy_kernels(true);
        let ops = vec![Op::Limit { n: 2 }];
        let (out, _) = execute_chain(&ops, &[lineitems()], &udfs()).unwrap();
        set_legacy_kernels(false);
        assert_eq!(Batch::concat(&out).num_rows(), 2);
    }

    #[test]
    fn binding_errors_match_legacy_shapes() {
        let ops = vec![Op::Sort {
            by: vec![("zzz".into(), true)],
        }];
        let err = execute_chain(&ops, &[lineitems()], &udfs()).unwrap_err();
        assert!(err.to_string().contains("unknown sort column zzz"));
        let ops = vec![Op::Filter {
            predicate: Expr::col("zzz").cmp(crate::expr::CmpOp::Eq, Expr::lit_i64(1)),
        }];
        let err = execute_chain(&ops, &[lineitems()], &udfs()).unwrap_err();
        assert!(err.to_string().contains("unknown column zzz"));
    }
}
