//! One-time operator binding and the selection-vector executor.
//!
//! The legacy chain in [`crate::operators`] re-resolves every column name
//! via `Schema::index_of` linear search on every batch and funnels all
//! key processing through per-row `Vec<ScalarKey>` allocations. This
//! module runs the same operator chain several layers faster:
//!
//! 1. **Binding pass** — [`bind`-time] resolution of every `Op`/`Expr`
//!    column name to a column index against the pipeline's input
//!    schemas, done once per `WorkerTask`. Schema propagation needs only
//!    field *names* (projections rename, joins append build columns,
//!    aggregates emit group + aggregate columns), so binding never
//!    evaluates anything.
//! 2. **Selection vectors end-to-end** — `Filter` refines a [`Sel`]
//!    instead of materialising, and every consumer (aggregate, join
//!    probe, sort, sessionise, limit, shuffle partition) accepts the
//!    selection directly: keys are encoded, hashes folded, and
//!    accumulators updated *under the sel*; rows are gathered at most
//!    once, at final emission. `Project` evaluates on the full batch
//!    (expressions are total and row-wise pure) and carries the
//!    selection through untouched.
//! 3. **Normalized-key kernels** — grouping, joining, and sorting run on
//!    [`skyrise_data::KeyBuffer`]'s contiguous fixed-width encoding
//!    (order-equal to the legacy `ScalarKey` order), with typed
//!    per-group accumulators instead of per-row `Value` boxing.
//! 4. **Arena scratch + dictionary reuse** — transient buffers (sel
//!    vectors, key words, gather tables) come from the per-invocation
//!    [`crate::arena::Arena`]; string key columns are dictionary-encoded
//!    once per invocation via [`skyrise_data::DictCache`] no matter how
//!    many operators touch them.
//!
//! Every kernel reproduces the legacy path bit-for-bit: group output
//! order equals the old `BTreeMap<Vec<ScalarKey>, _>` iteration order,
//! per-group float accumulation order equals the old stream-row order,
//! and join match lists keep build-row order. The legacy path stays
//! available as the property-test oracle and as a benchmark baseline via
//! [`set_legacy_kernels`].

use crate::arena::{Arena, ArenaReport};
use crate::error::EngineError;
use crate::expr::{self, ArithOp, CmpOp, Expr, ExprError, NamedExpr, ScalarUdf, UdfRegistry};
use crate::operators::{self, column_from_values, OpChainStats};
use crate::plan::{AggExpr, AggFunc, AggMode, Op};
use skyrise_data::keys::{DictCache, SelSpec};
use skyrise_data::{Batch, Column, Field, KeyBuffer, Schema, Value};
use std::cell::Cell;
use std::rc::Rc;

thread_local! {
    static FORCE_LEGACY: Cell<bool> = const { Cell::new(false) };
}

/// Force [`execute_chain`] through the legacy `ScalarKey` operators
/// (used by `kernel_bench` to time the pre-optimisation baseline).
pub fn set_legacy_kernels(on: bool) {
    FORCE_LEGACY.with(|f| f.set(on));
}

/// Whether the legacy kernels are currently forced.
pub fn legacy_kernels() -> bool {
    FORCE_LEGACY.with(|f| f.get())
}

// ---------------------------------------------------------------------------
// bound expressions
// ---------------------------------------------------------------------------

/// An expression with column references resolved to indices and UDFs
/// resolved to their registry entries.
enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp {
        op: CmpOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    And(Vec<BoundExpr>),
    Or(Vec<BoundExpr>),
    Not(Box<BoundExpr>),
    Arith {
        op: ArithOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<Value>,
    },
    Case {
        when: Box<BoundExpr>,
        then: Box<BoundExpr>,
        otherwise: Box<BoundExpr>,
    },
    Udf {
        udf: ScalarUdf,
        args: Vec<BoundExpr>,
    },
}

fn bind_expr(e: &Expr, names: &[String], udfs: &UdfRegistry) -> Result<BoundExpr, EngineError> {
    Ok(match e {
        Expr::Col(name) => BoundExpr::Col(
            names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| EngineError::Expr(ExprError::UnknownColumn(name.clone())))?,
        ),
        Expr::Lit(v) => BoundExpr::Lit(v.clone()),
        Expr::Cmp { op, left, right } => BoundExpr::Cmp {
            op: *op,
            left: Box::new(bind_expr(left, names, udfs)?),
            right: Box::new(bind_expr(right, names, udfs)?),
        },
        Expr::And(parts) => BoundExpr::And(
            parts
                .iter()
                .map(|p| bind_expr(p, names, udfs))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Or(parts) => BoundExpr::Or(
            parts
                .iter()
                .map(|p| bind_expr(p, names, udfs))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Not(inner) => BoundExpr::Not(Box::new(bind_expr(inner, names, udfs)?)),
        Expr::Arith { op, left, right } => BoundExpr::Arith {
            op: *op,
            left: Box::new(bind_expr(left, names, udfs)?),
            right: Box::new(bind_expr(right, names, udfs)?),
        },
        Expr::InList { expr, list } => BoundExpr::InList {
            expr: Box::new(bind_expr(expr, names, udfs)?),
            list: list.clone(),
        },
        Expr::Case {
            when,
            then,
            otherwise,
        } => BoundExpr::Case {
            when: Box::new(bind_expr(when, names, udfs)?),
            then: Box::new(bind_expr(then, names, udfs)?),
            otherwise: Box::new(bind_expr(otherwise, names, udfs)?),
        },
        Expr::Udf { name, args } => BoundExpr::Udf {
            udf: udfs
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::Expr(ExprError::UnknownUdf(name.clone())))?,
            args: args
                .iter()
                .map(|a| bind_expr(a, names, udfs))
                .collect::<Result<_, _>>()?,
        },
    })
}

/// Evaluate a bound expression over a batch. Mirrors
/// [`crate::expr::evaluate`] minus the per-batch name resolution.
///
/// Evaluation is total and row-wise pure (integer division promotes to
/// float instead of trapping), so callers may evaluate over a full batch
/// and consume the result under a selection vector: values at unselected
/// rows are computed and discarded, never observed.
fn evaluate_bound(e: &BoundExpr, batch: &Batch) -> Result<Column, ExprError> {
    let n = batch.num_rows();
    match e {
        BoundExpr::Col(i) => Ok(batch.columns[*i].clone()),
        BoundExpr::Lit(v) => Ok(expr::broadcast(v, n)),
        BoundExpr::Cmp { op, left, right } => {
            let l = evaluate_bound(left, batch)?;
            let r = evaluate_bound(right, batch)?;
            expr::compare(*op, &l, &r)
        }
        BoundExpr::And(parts) => {
            let mut acc = vec![true; n];
            for p in parts {
                let c = evaluate_bound(p, batch)?;
                let b = expr::expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a &= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        BoundExpr::Or(parts) => {
            let mut acc = vec![false; n];
            for p in parts {
                let c = evaluate_bound(p, batch)?;
                let b = expr::expect_bool(&c)?;
                for (a, &x) in acc.iter_mut().zip(b) {
                    *a |= x;
                }
            }
            Ok(Column::Bool(acc))
        }
        BoundExpr::Not(inner) => {
            let c = evaluate_bound(inner, batch)?;
            let b = expr::expect_bool(&c)?;
            Ok(Column::Bool(b.iter().map(|&x| !x).collect()))
        }
        BoundExpr::Arith { op, left, right } => {
            let l = evaluate_bound(left, batch)?;
            let r = evaluate_bound(right, batch)?;
            expr::arithmetic(*op, &l, &r)
        }
        BoundExpr::InList { expr: inner, list } => {
            let c = evaluate_bound(inner, batch)?;
            let mut out = Vec::with_capacity(n);
            match &c {
                Column::Utf8(v) => {
                    let set: Vec<&str> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Utf8(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect();
                    for s in v {
                        out.push(set.contains(&s.as_str()));
                    }
                }
                Column::Int64(v) => {
                    let set: Vec<i64> = list
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int64(i) => Some(*i),
                            _ => None,
                        })
                        .collect();
                    for x in v {
                        out.push(set.contains(x));
                    }
                }
                _ => return Err(ExprError::TypeMismatch("IN on unsupported type")),
            }
            Ok(Column::Bool(out))
        }
        BoundExpr::Case {
            when,
            then,
            otherwise,
        } => {
            let cond_col = evaluate_bound(when, batch)?;
            let cond = expr::expect_bool(&cond_col)?;
            let t = evaluate_bound(then, batch)?;
            let o = evaluate_bound(otherwise, batch)?;
            expr::select(cond, &t, &o)
        }
        BoundExpr::Udf { udf, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| evaluate_bound(a, batch))
                .collect::<Result<_, _>>()?;
            let mut row = Vec::with_capacity(cols.len());
            let mut out: Option<Column> = None;
            for i in 0..n {
                row.clear();
                for c in &cols {
                    row.push(c.value(i));
                }
                let v = udf(&row);
                match (&mut out, &v) {
                    (None, Value::Int64(_)) => out = Some(Column::Int64(Vec::with_capacity(n))),
                    (None, Value::Float64(_)) => out = Some(Column::Float64(Vec::with_capacity(n))),
                    (None, Value::Utf8(_)) => out = Some(Column::Utf8(Vec::with_capacity(n))),
                    (None, Value::Bool(_)) => out = Some(Column::Bool(Vec::with_capacity(n))),
                    _ => {}
                }
                match (out.as_mut().expect("initialised"), v) {
                    (Column::Int64(vs), Value::Int64(x)) => vs.push(x),
                    (Column::Float64(vs), Value::Float64(x)) => vs.push(x),
                    (Column::Utf8(vs), Value::Utf8(x)) => vs.push(x),
                    (Column::Bool(vs), Value::Bool(x)) => vs.push(x),
                    _ => return Err(ExprError::TypeMismatch("UDF changed its return type")),
                }
            }
            Ok(out.unwrap_or(Column::Int64(Vec::new())))
        }
    }
}

// ---------------------------------------------------------------------------
// bound operators
// ---------------------------------------------------------------------------

enum BoundAggKind {
    /// Partial/Single: evaluate the argument per batch (`None` = Count,
    /// which ignores its argument — the legacy path never binds it).
    Eval(Option<BoundExpr>),
    /// Final: merge partial-state columns located by index.
    Merge {
        primary: usize,
        secondary: Option<usize>,
    },
}

struct BoundAgg {
    func: AggFunc,
    name: String,
    kind: BoundAggKind,
}

/// Column indices of the Q3 click stream used by sessionisation.
struct SessionCols {
    users: usize,
    dates: usize,
    times: usize,
    items: usize,
    sales: usize,
}

enum BoundOp {
    Filter(BoundExpr),
    Project(Vec<(String, BoundExpr)>),
    HashAggregate {
        group_idx: Vec<usize>,
        group_names: Vec<String>,
        aggs: Vec<BoundAgg>,
        mode: AggMode,
    },
    HashJoin {
        build_input: usize,
        build_key: usize,
        probe_key: usize,
        build_cols: Vec<usize>,
    },
    Sort {
        by: Vec<(usize, bool)>,
    },
    Limit(usize),
    SessionizeQ3 {
        category_input: usize,
        category_col: usize,
        cols: SessionCols,
        window: usize,
    },
    Barrier,
}

impl BoundOp {
    /// Telemetry label — matches the worker's per-operator counters.
    fn label(&self) -> &'static str {
        match self {
            BoundOp::Filter(_) => "filter",
            BoundOp::Project(_) => "project",
            BoundOp::HashAggregate { .. } => "hash-aggregate",
            BoundOp::HashJoin { .. } => "hash-join",
            BoundOp::Sort { .. } => "sort",
            BoundOp::Limit(_) => "limit",
            BoundOp::SessionizeQ3 { .. } => "sessionize",
            BoundOp::Barrier => "barrier",
        }
    }
}

fn idx_of(names: &[String], name: &str, what: &str) -> Result<usize, EngineError> {
    names
        .iter()
        .position(|n| n == name)
        .ok_or_else(|| EngineError::Plan(format!("unknown {what} column {name}")))
}

/// Resolve every column reference of an operator chain against the
/// pipeline's input schemas (names only) — once per task, not per batch.
fn bind_ops(
    ops: &[Op],
    input_names: &[Vec<String>],
    udfs: &UdfRegistry,
) -> Result<Vec<BoundOp>, EngineError> {
    let mut cur: Vec<String> = input_names
        .first()
        .cloned()
        .ok_or_else(|| EngineError::Plan("pipeline has no inputs".into()))?;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let bound = match op {
            Op::Filter { predicate } => BoundOp::Filter(bind_expr(predicate, &cur, udfs)?),
            Op::Project { exprs } => {
                let bound: Vec<(String, BoundExpr)> = exprs
                    .iter()
                    .map(|ne: &NamedExpr| Ok((ne.name.clone(), bind_expr(&ne.expr, &cur, udfs)?)))
                    .collect::<Result<_, EngineError>>()?;
                cur = bound.iter().map(|(n, _)| n.clone()).collect();
                BoundOp::Project(bound)
            }
            Op::HashAggregate {
                group_by,
                aggregates,
                mode,
            } => {
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| idx_of(&cur, g, "key"))
                    .collect::<Result<_, _>>()?;
                let aggs: Vec<BoundAgg> = aggregates
                    .iter()
                    .map(|a: &AggExpr| {
                        let kind = match mode {
                            AggMode::Partial | AggMode::Single => match a.func {
                                AggFunc::Count => BoundAggKind::Eval(None),
                                _ => BoundAggKind::Eval(Some(bind_expr(&a.expr, &cur, udfs)?)),
                            },
                            AggMode::Final => {
                                let names = operators::partial_columns(a);
                                let missing = |n: &str| {
                                    EngineError::Plan(format!("missing partial column {n}"))
                                };
                                let primary = cur
                                    .iter()
                                    .position(|n| n == &names[0])
                                    .ok_or_else(|| missing(&names[0]))?;
                                let secondary = names
                                    .get(1)
                                    .map(|n| {
                                        cur.iter().position(|c| c == n).ok_or_else(|| missing(n))
                                    })
                                    .transpose()?;
                                BoundAggKind::Merge { primary, secondary }
                            }
                        };
                        Ok(BoundAgg {
                            func: a.func,
                            name: a.name.clone(),
                            kind,
                        })
                    })
                    .collect::<Result<_, EngineError>>()?;
                let group_names = group_by.clone();
                cur = group_names.clone();
                for a in aggregates {
                    if matches!(mode, AggMode::Partial) {
                        cur.extend(operators::partial_columns(a));
                    } else {
                        cur.push(a.name.clone());
                    }
                }
                BoundOp::HashAggregate {
                    group_idx,
                    group_names,
                    aggs,
                    mode: *mode,
                }
            }
            Op::HashJoin {
                build_input,
                build_key,
                probe_key,
                build_columns,
            } => {
                let build_names = input_names
                    .get(*build_input)
                    .ok_or_else(|| EngineError::Plan(format!("no build input {build_input}")))?;
                let bound = BoundOp::HashJoin {
                    build_input: *build_input,
                    build_key: idx_of(build_names, build_key, "key")?,
                    probe_key: idx_of(&cur, probe_key, "key")?,
                    build_cols: build_columns
                        .iter()
                        .map(|c| idx_of(build_names, c, "build"))
                        .collect::<Result<_, _>>()?,
                };
                cur.extend(build_columns.iter().cloned());
                bound
            }
            Op::Sort { by } => BoundOp::Sort {
                by: by
                    .iter()
                    .map(|(name, asc)| Ok((idx_of(&cur, name, "sort")?, *asc)))
                    .collect::<Result<_, EngineError>>()?,
            },
            Op::Limit { n } => BoundOp::Limit(*n as usize),
            Op::SessionizeQ3 {
                category_input,
                window,
            } => {
                let item_names = input_names
                    .get(*category_input)
                    .ok_or_else(|| EngineError::Plan(format!("no input {category_input}")))?;
                let bound = BoundOp::SessionizeQ3 {
                    category_input: *category_input,
                    category_col: idx_of(item_names, "i_item_sk", "key")?,
                    cols: SessionCols {
                        users: idx_of(&cur, "wcs_user_sk", "key")?,
                        dates: idx_of(&cur, "wcs_click_date_sk", "key")?,
                        times: idx_of(&cur, "wcs_click_time_sk", "key")?,
                        items: idx_of(&cur, "wcs_item_sk", "key")?,
                        sales: idx_of(&cur, "wcs_sales_sk", "key")?,
                    },
                    window: *window,
                };
                cur = vec!["item_sk".to_string(), "views".to_string()];
                bound
            }
            Op::Barrier { .. } => BoundOp::Barrier,
        };
        out.push(bound);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// selection-vector stream
// ---------------------------------------------------------------------------

/// Which rows of a batch are live, in order.
#[derive(Debug, Clone)]
pub enum Sel {
    /// Every row.
    All,
    /// The first `n` rows (produced by `Limit` over unfiltered batches).
    Prefix(usize),
    /// Exactly these row indices, in order.
    Rows(Vec<u32>),
}

/// A shared batch plus a selection vector: filters refine [`Sel`] without
/// copying columns; consumers probe/accumulate under the selection and
/// gather at most once, at final emission. The batch is an `Rc` so a
/// selection can ride through `Limit`/`Barrier`/shuffle without cloning
/// column data.
#[derive(Debug, Clone)]
pub struct SelBatch {
    pub(crate) batch: Rc<Batch>,
    pub(crate) sel: Sel,
}

impl SelBatch {
    /// Wrap a fully-live batch.
    pub fn wrap(batch: Batch) -> SelBatch {
        SelBatch {
            batch: Rc::new(batch),
            sel: Sel::All,
        }
    }

    /// The underlying (unselected) batch.
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Live row count.
    pub fn rows(&self) -> usize {
        match &self.sel {
            Sel::All => self.batch.num_rows(),
            Sel::Prefix(n) => (*n).min(self.batch.num_rows()),
            Sel::Rows(s) => s.len(),
        }
    }

    /// The selection as the encoder's borrowed view.
    fn spec(&self) -> SelSpec<'_> {
        match &self.sel {
            Sel::All => SelSpec::All,
            Sel::Prefix(n) => SelSpec::Prefix(*n),
            Sel::Rows(s) => SelSpec::Rows(s),
        }
    }

    /// Gather the live rows into a standalone batch. Trivial selections
    /// (full range, full prefix, identity row list) return the batch
    /// unchanged — no copy when this holds the only reference.
    pub fn materialise(self) -> Batch {
        let n = self.batch.num_rows();
        let whole = |rc: Rc<Batch>| Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone());
        match self.sel {
            Sel::All => whole(self.batch),
            Sel::Prefix(k) if k >= n => whole(self.batch),
            Sel::Prefix(k) => self.batch.slice(0, k),
            Sel::Rows(r) => {
                let identity = r.len() == n && r.iter().enumerate().all(|(i, &x)| x as usize == i);
                if identity {
                    whole(self.batch)
                } else {
                    self.batch.take_u32(&r)
                }
            }
        }
    }
}

fn materialise_all(stream: Vec<SelBatch>) -> Vec<Batch> {
    stream.into_iter().map(SelBatch::materialise).collect()
}

// ---------------------------------------------------------------------------
// the bound executor
// ---------------------------------------------------------------------------

/// Per-invocation execution context: scratch arena + dictionary cache.
struct Ctx {
    arena: Arena,
    cache: DictCache,
}

/// Run an operator chain over materialised inputs via the binding pass
/// and the normalized-key kernels, returning the output stream *with its
/// selection vectors intact* so the caller (the worker's shuffle writer)
/// can keep operating under the sel. Produces output bit-identical to
/// [`crate::operators::execute_ops`] once materialised; falls back to it
/// when the legacy mode is forced ([`set_legacy_kernels`]) or when an
/// input stream carries no batches (no schema to bind against).
pub fn execute_chain_sel(
    ops: &[Op],
    inputs: &[Vec<Batch>],
    udfs: &UdfRegistry,
) -> Result<(Vec<SelBatch>, OpChainStats, ArenaReport), EngineError> {
    if legacy_kernels() || inputs.is_empty() || inputs.iter().any(Vec::is_empty) {
        let (out, stats) = operators::execute_ops(ops, inputs, udfs)?;
        let stream = out.into_iter().map(SelBatch::wrap).collect();
        return Ok((stream, stats, ArenaReport::default()));
    }
    execute_bound(ops, inputs[0].to_vec(), inputs, &[], udfs)
}

/// A string dictionary decoded straight from an SPF shuffle segment,
/// addressed by (stream batch index, column index). Seeding it into the
/// executor's [`DictCache`] makes the first key-normalization touch of
/// that column a cache hit — no per-invocation re-sort.
#[derive(Debug, Clone)]
pub struct DictSeed {
    /// Index of the batch within the stream (input 0).
    pub batch: usize,
    /// Column index within that batch.
    pub col: usize,
    /// Sorted distinct values of the column.
    pub dict: Rc<Vec<String>>,
}

/// True when `op` materialises pipeline input 0 as a build side — the
/// stream cannot also be consumed by index in that case.
fn references_input_zero(op: &Op) -> bool {
    matches!(
        op,
        Op::HashJoin { build_input: 0, .. }
            | Op::SessionizeQ3 {
                category_input: 0,
                ..
            }
    )
}

/// [`execute_chain_sel`] taking ownership of the inputs: the stream
/// (input 0) enters the fused pipeline without the defensive deep-clone,
/// and `seeds` pre-populates the dictionary cache with dictionaries the
/// shuffle reader decoded from storage (late materialization: the batch
/// `Rc`s wrap exactly the decoded columns, so pointer-identity caching
/// holds from the moment of decode).
pub fn execute_chain_sel_seeded(
    ops: &[Op],
    mut inputs: Vec<Vec<Batch>>,
    seeds: &[DictSeed],
    udfs: &UdfRegistry,
) -> Result<(Vec<SelBatch>, OpChainStats, ArenaReport), EngineError> {
    if legacy_kernels()
        || inputs.is_empty()
        || inputs.iter().any(Vec::is_empty)
        || ops.iter().any(references_input_zero)
    {
        let (out, stats) = operators::execute_ops(ops, &inputs, udfs)?;
        let stream = out.into_iter().map(SelBatch::wrap).collect();
        return Ok((stream, stats, ArenaReport::default()));
    }
    let stream = std::mem::take(&mut inputs[0]);
    execute_bound(ops, stream, &inputs, seeds, udfs)
}

/// Shared driver: bind against the input schemas, seed the dictionary
/// cache, then run the chain under selection vectors. `inputs[0]` is only
/// used for its schema (the stream arrives owned); build sides index
/// `inputs[1..]`.
fn execute_bound(
    ops: &[Op],
    stream: Vec<Batch>,
    inputs: &[Vec<Batch>],
    seeds: &[DictSeed],
    udfs: &UdfRegistry,
) -> Result<(Vec<SelBatch>, OpChainStats, ArenaReport), EngineError> {
    let input_names: Vec<Vec<String>> = inputs
        .iter()
        .enumerate()
        .map(|(i, batches)| {
            let schema = if i == 0 {
                &stream[0].schema
            } else {
                &batches[0].schema
            };
            schema.fields.iter().map(|f| f.name.clone()).collect()
        })
        .collect();
    let bound = bind_ops(ops, &input_names, udfs)?;
    let ctx = Ctx {
        arena: Arena::current(),
        cache: DictCache::new(),
    };
    ctx.arena.reset();
    let mut stream: Vec<SelBatch> = stream.into_iter().map(SelBatch::wrap).collect();
    for s in seeds {
        if let Some(sb) = stream.get(s.batch) {
            ctx.cache.seed(&sb.batch, s.col, Rc::clone(&s.dict));
        }
    }
    let rows_in = stream.iter().map(|b| b.rows() as u64).sum();
    let mut per_op: Vec<(&'static str, u64)> = Vec::with_capacity(bound.len());
    for op in &bound {
        let before = ctx.arena.bytes_allocated();
        stream = apply_bound(op, stream, inputs, &ctx)?;
        per_op.push((op.label(), ctx.arena.bytes_allocated() - before));
    }
    let stats = OpChainStats {
        rows_in,
        rows_out: stream.iter().map(|b| b.rows() as u64).sum(),
    };
    let report = ArenaReport {
        bytes_allocated: ctx.arena.bytes_allocated(),
        resets: 1,
        per_op,
    };
    Ok((stream, stats, report))
}

/// [`execute_chain_sel`] with the output gathered into plain batches —
/// the compatibility surface for benchmarks and tests.
pub fn execute_chain(
    ops: &[Op],
    inputs: &[Vec<Batch>],
    udfs: &UdfRegistry,
) -> Result<(Vec<Batch>, OpChainStats), EngineError> {
    let (stream, stats, _report) = execute_chain_sel(ops, inputs, udfs)?;
    Ok((materialise_all(stream), stats))
}

fn apply_bound(
    op: &BoundOp,
    stream: Vec<SelBatch>,
    inputs: &[Vec<Batch>],
    ctx: &Ctx,
) -> Result<Vec<SelBatch>, EngineError> {
    match op {
        BoundOp::Filter(pred) => stream
            .into_iter()
            .map(|sb| {
                let mask_col = evaluate_bound(pred, &sb.batch)?;
                let mask = expr::expect_bool(&mask_col)?;
                let SelBatch { batch, sel } = sb;
                let n = batch.num_rows();
                let total = match &sel {
                    Sel::All => n,
                    Sel::Prefix(k) => (*k).min(n),
                    Sel::Rows(r) => r.len(),
                };
                let mut keep = ctx.arena.u32s(total);
                match &sel {
                    Sel::All => keep.extend((0..n as u32).filter(|&i| mask[i as usize])),
                    Sel::Prefix(k) => {
                        keep.extend((0..(*k).min(n) as u32).filter(|&i| mask[i as usize]))
                    }
                    Sel::Rows(r) => keep.extend(r.iter().copied().filter(|&i| mask[i as usize])),
                }
                let sel = if keep.len() == total {
                    // Nothing filtered out: the old selection still holds.
                    ctx.arena.recycle_u32(keep);
                    sel
                } else {
                    if let Sel::Rows(old) = sel {
                        ctx.arena.recycle_u32(old);
                    }
                    Sel::Rows(keep)
                };
                Ok(SelBatch { batch, sel })
            })
            .collect::<Result<_, ExprError>>()
            .map_err(EngineError::from),
        BoundOp::Project(exprs) => stream
            .into_iter()
            .map(|sb| {
                // Evaluate over the full batch (total, row-wise pure) and
                // carry the selection through — no gather, no copy beyond
                // the projected columns themselves.
                let mut fields = Vec::with_capacity(exprs.len());
                let mut columns = Vec::with_capacity(exprs.len());
                for (name, e) in exprs {
                    let col = evaluate_bound(e, &sb.batch)?;
                    fields.push(Field::new(name, col.data_type()));
                    columns.push(col);
                }
                Ok(SelBatch {
                    batch: Rc::new(Batch::new(Schema::new(fields), columns)),
                    sel: sb.sel,
                })
            })
            .collect::<Result<_, ExprError>>()
            .map_err(EngineError::from),
        BoundOp::HashAggregate {
            group_idx,
            group_names,
            aggs,
            mode,
        } => hash_aggregate(&stream, group_idx, group_names, aggs, *mode, ctx)
            .map(|b| vec![SelBatch::wrap(b)]),
        BoundOp::HashJoin {
            build_input,
            build_key,
            probe_key,
            build_cols,
        } => {
            let build = &inputs[*build_input];
            hash_join(&stream, build, *build_key, *probe_key, build_cols, ctx)
        }
        BoundOp::Sort { by } => sort(&stream, by, ctx).map(|b| vec![SelBatch::wrap(b)]),
        BoundOp::Limit(n) => Ok(limit(stream, *n)),
        BoundOp::SessionizeQ3 {
            category_input,
            category_col,
            cols,
            window,
        } => {
            let items = &inputs[*category_input];
            sessionize_q3(&stream, items, *category_col, cols, *window, ctx)
                .map(|b| vec![SelBatch::wrap(b)])
        }
        BoundOp::Barrier => Ok(stream),
    }
}

/// Prefix-limit directly on selection vectors: truncates selections and
/// converts full batches to `Prefix` selections — never slices or clones
/// column data.
fn limit(stream: Vec<SelBatch>, n: usize) -> Vec<SelBatch> {
    let mut remaining = n;
    let mut out = Vec::new();
    for sb in stream {
        if remaining == 0 {
            if out.is_empty() {
                out.push(SelBatch {
                    batch: sb.batch,
                    sel: Sel::Prefix(0),
                });
            }
            break;
        }
        let take = sb.rows().min(remaining);
        remaining -= take;
        let sel = match sb.sel {
            Sel::All if take == sb.batch.num_rows() => Sel::All,
            Sel::All | Sel::Prefix(_) => Sel::Prefix(take),
            Sel::Rows(mut r) => {
                r.truncate(take);
                Sel::Rows(r)
            }
        };
        out.push(SelBatch {
            batch: sb.batch,
            sel,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// normalized-key kernels
// ---------------------------------------------------------------------------

/// Grouping of all live rows of a batch run by normalized composite key.
struct Grouping {
    keys: KeyBuffer,
    /// Flat live-row index (across non-empty parts, in stream order) →
    /// group id. Group ids are assigned in normalized-key order, which
    /// equals the legacy `BTreeMap<Vec<ScalarKey>, _>` iteration order.
    group_of: Vec<u32>,
    /// Group id → one flat row holding that key.
    rep: Vec<u32>,
}

fn group_rows(parts: &[(&Batch, SelSpec)], cols: &[usize], ctx: &Ctx) -> Grouping {
    let total: usize = parts.iter().map(|(b, s)| s.count(b.num_rows())).sum();
    let words = ctx.arena.u64s(total * cols.len());
    let keys = KeyBuffer::encode_selected(parts, cols, Some(&ctx.cache), words);
    let order = keys.sort_indices();
    let mut group_of = ctx.arena.u32s(keys.rows());
    group_of.resize(keys.rows(), 0);
    let mut rep: Vec<u32> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let start = order[i] as usize;
        let gid = rep.len() as u32;
        rep.push(order[i]);
        while i < order.len() && keys.row(order[i] as usize) == keys.row(start) {
            group_of[order[i] as usize] = gid;
            i += 1;
        }
    }
    Grouping {
        keys,
        group_of,
        rep,
    }
}

/// Typed per-group accumulators: column-direct updates, no per-row
/// `Value` boxing. `Min`/`Max` keep scalar state but only clone a value
/// when it actually replaces the current extremum (matching the legacy
/// `merge_minmax` semantics exactly).
enum Acc {
    Sum(Vec<f64>),
    Count(Vec<i64>),
    Avg { sums: Vec<f64>, counts: Vec<i64> },
    Min(Vec<Option<Value>>),
    Max(Vec<Option<Value>>),
}

impl Acc {
    fn new(func: AggFunc, n_groups: usize) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum(vec![0.0; n_groups]),
            AggFunc::Count => Acc::Count(vec![0; n_groups]),
            AggFunc::Avg => Acc::Avg {
                sums: vec![0.0; n_groups],
                counts: vec![0; n_groups],
            },
            AggFunc::Min => Acc::Min(vec![None; n_groups]),
            AggFunc::Max => Acc::Max(vec![None; n_groups]),
        }
    }
}

/// `Value::as_f64` of `col[row]`, without constructing the `Value`.
#[inline]
fn col_f64_at(col: &Column, row: usize) -> f64 {
    match col {
        Column::Int64(v) => v[row] as f64,
        Column::Float64(v) => v[row],
        Column::Bool(v) => v[row] as i64 as f64,
        Column::Utf8(_) => f64::NAN,
    }
}

/// Min/max update mirroring `operators::merge_minmax`: same-type int and
/// string keys compare natively, everything else through `as_f64` with
/// ties keeping the incumbent. Clones only on replacement.
fn minmax_update(slot: &mut Option<Value>, col: &Column, row: usize, is_max: bool) {
    use std::cmp::Ordering;
    let ord = match (&*slot, col) {
        (None, _) => Some(Ordering::Greater),
        (Some(Value::Int64(a)), Column::Int64(v)) => Some(v[row].cmp(a)),
        (Some(Value::Utf8(a)), Column::Utf8(v)) => Some(v[row].as_str().cmp(a.as_str())),
        (Some(cur), _) => Some(
            col_f64_at(col, row)
                .partial_cmp(&cur.as_f64())
                .unwrap_or(Ordering::Equal),
        ),
    };
    let replace = match (slot.is_none(), ord) {
        (true, _) => true,
        (false, Some(Ordering::Greater)) => is_max,
        (false, Some(Ordering::Less)) => !is_max,
        _ => false,
    };
    if replace {
        *slot = Some(col.value(row));
    }
}

fn hash_aggregate(
    stream: &[SelBatch],
    group_idx: &[usize],
    group_names: &[String],
    aggs: &[BoundAgg],
    mode: AggMode,
    ctx: &Ctx,
) -> Result<Batch, EngineError> {
    let live: Vec<&SelBatch> = stream.iter().filter(|sb| sb.rows() > 0).collect();
    for sb in &live {
        ctx.cache.pin(&sb.batch);
    }
    let parts: Vec<(&Batch, SelSpec)> = live
        .iter()
        .map(|sb| (sb.batch.as_ref(), sb.spec()))
        .collect();
    let grouping = group_rows(&parts, group_idx, ctx);
    let n_groups = grouping.rep.len();
    let mut accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.func, n_groups)).collect();

    // Accumulate in live stream-row order: each group's updates hit in
    // the same order as the legacy path, so float sums agree exactly.
    let mut flat = 0usize;
    for sb in &live {
        let batch = sb.batch.as_ref();
        let n = batch.num_rows();
        match mode {
            AggMode::Partial | AggMode::Single => {
                // Arguments are evaluated over the full batch and read
                // under the selection (totality makes this safe); Count
                // needs no argument at all.
                let args: Vec<Option<Column>> = aggs
                    .iter()
                    .map(|a| match &a.kind {
                        BoundAggKind::Eval(None) => Ok(None),
                        BoundAggKind::Eval(Some(e)) => evaluate_bound(e, batch)
                            .map(Some)
                            .map_err(EngineError::from),
                        BoundAggKind::Merge { .. } => unreachable!("bound for Final mode"),
                    })
                    .collect::<Result<_, _>>()?;
                for row in sb.spec().iter(n) {
                    let g = grouping.group_of[flat] as usize;
                    for (acc, arg) in accs.iter_mut().zip(&args) {
                        match (acc, arg) {
                            (Acc::Count(c), _) => c[g] += 1,
                            (Acc::Sum(s), Some(col)) => s[g] += col_f64_at(col, row),
                            (Acc::Avg { sums, counts }, Some(col)) => {
                                sums[g] += col_f64_at(col, row);
                                counts[g] += 1;
                            }
                            (Acc::Min(m), Some(col)) => minmax_update(&mut m[g], col, row, false),
                            (Acc::Max(m), Some(col)) => minmax_update(&mut m[g], col, row, true),
                            _ => unreachable!("non-Count aggregate without argument"),
                        }
                    }
                    flat += 1;
                }
            }
            AggMode::Final => {
                let cols: Vec<(&Column, Option<&Column>)> = aggs
                    .iter()
                    .map(|a| match &a.kind {
                        BoundAggKind::Merge { primary, secondary } => (
                            &batch.columns[*primary],
                            secondary.map(|i| &batch.columns[i]),
                        ),
                        BoundAggKind::Eval(_) => unreachable!("bound for Partial/Single mode"),
                    })
                    .collect();
                for row in sb.spec().iter(n) {
                    let g = grouping.group_of[flat] as usize;
                    for (acc, (primary, secondary)) in accs.iter_mut().zip(&cols) {
                        match acc {
                            Acc::Sum(s) => s[g] += col_f64_at(primary, row),
                            Acc::Count(c) => c[g] += col_f64_at(primary, row) as i64,
                            Acc::Avg { sums, counts } => {
                                sums[g] += col_f64_at(primary, row);
                                counts[g] +=
                                    col_f64_at(secondary.expect("Avg partial needs __cnt"), row)
                                        as i64;
                            }
                            Acc::Min(m) => minmax_update(&mut m[g], primary, row, false),
                            Acc::Max(m) => minmax_update(&mut m[g], primary, row, true),
                        }
                    }
                    flat += 1;
                }
            }
        }
    }

    // Assemble the output batch exactly as the legacy path does, with
    // groups in normalized-key (== ScalarKey BTreeMap) order.
    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    for (gi, gname) in group_names.iter().enumerate() {
        let vals: Vec<Value> = grouping
            .rep
            .iter()
            .map(|&r| grouping.keys.value(r as usize, gi))
            .collect();
        let col = column_from_values(&vals);
        fields.push(Field::new(gname, col.data_type()));
        columns.push(col);
    }

    let emit_final = !matches!(mode, AggMode::Partial);
    for (agg, acc) in aggs.iter().zip(accs) {
        match (acc, emit_final) {
            (Acc::Avg { sums, counts }, false) => {
                fields.push(Field::new(
                    &format!("{}__sum", agg.name),
                    skyrise_data::DataType::Float64,
                ));
                columns.push(Column::Float64(sums));
                fields.push(Field::new(
                    &format!("{}__cnt", agg.name),
                    skyrise_data::DataType::Int64,
                ));
                columns.push(Column::Int64(counts));
            }
            (Acc::Avg { sums, counts }, true) => {
                let avgs: Vec<f64> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect();
                fields.push(Field::new(&agg.name, skyrise_data::DataType::Float64));
                columns.push(Column::Float64(avgs));
            }
            (Acc::Sum(s), _) => {
                fields.push(Field::new(&agg.name, skyrise_data::DataType::Float64));
                columns.push(Column::Float64(s));
            }
            (Acc::Count(c), _) => {
                // The legacy emission funnels through `column_from_values`,
                // whose zero-row case types as Float64 — replicate.
                let col = if c.is_empty() {
                    Column::Float64(Vec::new())
                } else {
                    Column::Int64(c)
                };
                fields.push(Field::new(&agg.name, col.data_type()));
                columns.push(col);
            }
            (Acc::Min(m), _) | (Acc::Max(m), _) => {
                let vals: Vec<Value> = m
                    .into_iter()
                    .map(|v| v.unwrap_or(Value::Float64(f64::NAN)))
                    .collect();
                let col = column_from_values(&vals);
                fields.push(Field::new(&agg.name, col.data_type()));
                columns.push(col);
            }
        }
    }

    if n_groups == 0 && group_names.is_empty() && emit_final {
        // Global aggregate over zero rows still yields one row of zeros.
        for c in columns.iter_mut() {
            match c {
                Column::Float64(v) => v.push(0.0),
                Column::Int64(v) => v.push(0),
                Column::Utf8(v) => v.push(String::new()),
                Column::Bool(v) => v.push(false),
            }
        }
    }

    let Grouping { keys, group_of, .. } = grouping;
    ctx.arena.recycle_u64(keys.into_words());
    ctx.arena.recycle_u32(group_of);
    Ok(Batch::new(Schema::new(fields), columns))
}

fn hash_join(
    probe: &[SelBatch],
    build: &[Batch],
    build_key: usize,
    probe_key: usize,
    build_cols: &[usize],
    ctx: &Ctx,
) -> Result<Vec<SelBatch>, EngineError> {
    if build.is_empty() || probe.is_empty() {
        return Err(EngineError::Plan(
            "hash join requires materialised build and probe inputs".into(),
        ));
    }
    let build_all = Batch::concat(build);
    // Build side: normalized keys sorted (key, row). Equal keys keep
    // build-row order, matching the legacy table's insertion order.
    let kb = KeyBuffer::encode(&[&build_all], &[build_key]);
    let order = kb.sort_indices();
    let mut sorted = ctx.arena.u64s(order.len());
    sorted.extend(order.iter().map(|&r| kb.word(r as usize, 0)));
    let build_col_refs: Vec<(&Field, &Column)> = build_cols
        .iter()
        .map(|&i| (&build_all.schema.fields[i], &build_all.columns[i]))
        .collect();

    let mut out = Vec::new();
    for sb in probe {
        // Probe directly under the selection: encode only the live rows
        // against the build dictionary, binary-search the sorted key run,
        // and gather once at emission.
        let pb = sb.batch.as_ref();
        let n = pb.num_rows();
        let enc = kb.encode_probe_sel(0, &pb.columns[probe_key], sb.spec());
        let mut probe_idx = ctx.arena.u32s(enc.len());
        let mut build_idx = ctx.arena.u32s(enc.len());
        for (prow, e) in sb.spec().iter(n).zip(&enc) {
            let Some(k) = e else { continue };
            let mut j = sorted.partition_point(|&x| x < *k);
            while j < sorted.len() && sorted[j] == *k {
                probe_idx.push(prow as u32);
                build_idx.push(order[j]);
                j += 1;
            }
        }
        let mut fields: Vec<Field> = pb.schema.fields.clone();
        let mut columns: Vec<Column> = pb.take_u32(&probe_idx).columns;
        for (f, c) in &build_col_refs {
            fields.push((*f).clone());
            columns.push(c.take_u32(&build_idx));
        }
        ctx.arena.recycle_u32(probe_idx);
        ctx.arena.recycle_u32(build_idx);
        out.push(SelBatch::wrap(Batch::new(Schema::new(fields), columns)));
    }
    ctx.arena.recycle_u64(sorted);
    Ok(out)
}

fn sort(stream: &[SelBatch], by: &[(usize, bool)], ctx: &Ctx) -> Result<Batch, EngineError> {
    if stream.is_empty() {
        return Err(EngineError::Plan("sort over no batches".into()));
    }
    for sb in stream {
        ctx.cache.pin(&sb.batch);
    }
    let parts: Vec<(&Batch, SelSpec)> = stream
        .iter()
        .map(|sb| (sb.batch.as_ref(), sb.spec()))
        .collect();
    let cols: Vec<usize> = by.iter().map(|(i, _)| *i).collect();
    let total: usize = parts.iter().map(|(b, s)| s.count(b.num_rows())).sum();
    let words = ctx.arena.u64s(total * cols.len());
    let kb = KeyBuffer::encode_selected(&parts, &cols, Some(&ctx.cache), words);
    // Location table in live stream order (== legacy concat order), then
    // a stable sort of positions, then one gather straight from the
    // original batches — the concat itself never happens.
    let mut locs = ctx.arena.locs(total);
    for (pi, (b, s)) in parts.iter().enumerate() {
        locs.extend(s.iter(b.num_rows()).map(|r| (pi as u32, r as u32)));
    }
    let mut idx = ctx.arena.u32s(total);
    idx.extend(0..total as u32);
    idx.sort_by(|&a, &b| {
        for (c, (_, asc)) in by.iter().enumerate() {
            let ord = kb.word(a as usize, c).cmp(&kb.word(b as usize, c));
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out_locs = ctx.arena.locs(total);
    out_locs.extend(idx.iter().map(|&i| locs[i as usize]));
    let batches: Vec<&Batch> = stream.iter().map(|sb| sb.batch.as_ref()).collect();
    let out = Batch::gather(&batches, &out_locs);
    ctx.arena.recycle_u64(kb.into_words());
    ctx.arena.recycle_locs(locs);
    ctx.arena.recycle_locs(out_locs);
    ctx.arena.recycle_u32(idx);
    Ok(out)
}

fn sessionize_q3(
    clicks: &[SelBatch],
    items: &[Batch],
    category_col: usize,
    cols: &SessionCols,
    window: usize,
    ctx: &Ctx,
) -> Result<Batch, EngineError> {
    use skyrise_data::DataType;
    // Category membership as a sorted vector + binary search (same
    // membership, same ascending iteration as the legacy BTreeSet).
    let mut category: Vec<i64> = items
        .iter()
        .flat_map(|b| b.columns[category_col].as_i64().iter().copied())
        .collect();
    category.sort_unstable();
    category.dedup();
    let in_category = |x: i64| category.binary_search(&x).is_ok();

    let out_schema = Schema::new(vec![
        Field::new("item_sk", DataType::Int64),
        Field::new("views", DataType::Int64),
    ]);
    if clicks.is_empty() {
        return Ok(Batch::new(
            out_schema,
            vec![Column::Int64(vec![]), Column::Int64(vec![])],
        ));
    }
    // Gather the five click columns under the selection into arena
    // scratch — the only per-row copy this operator makes.
    let total: usize = clicks.iter().map(SelBatch::rows).sum();
    let mut users = ctx.arena.i64s(total);
    let mut dates = ctx.arena.i64s(total);
    let mut times = ctx.arena.i64s(total);
    let mut item_sk = ctx.arena.i64s(total);
    let mut sales = ctx.arena.i64s(total);
    for sb in clicks {
        let b = sb.batch.as_ref();
        let n = b.num_rows();
        let (u, d, t, i, s) = (
            b.columns[cols.users].as_i64(),
            b.columns[cols.dates].as_i64(),
            b.columns[cols.times].as_i64(),
            b.columns[cols.items].as_i64(),
            b.columns[cols.sales].as_i64(),
        );
        for r in sb.spec().iter(n) {
            users.push(u[r]);
            dates.push(d[r]);
            times.push(t[r]);
            item_sk.push(i[r]);
            sales.push(s[r]);
        }
    }

    // Order clicks per user by (date, time).
    let mut idx = ctx.arena.u32s(total);
    idx.extend(0..total as u32);
    idx.sort_by_key(|&i| {
        let i = i as usize;
        (users[i], dates[i], times[i])
    });

    let mut views: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    let mut start = 0usize;
    while start < idx.len() {
        let user = users[idx[start] as usize];
        let mut end = start;
        while end < idx.len() && users[idx[end] as usize] == user {
            end += 1;
        }
        let session = &idx[start..end];
        for (pos, &click) in session.iter().enumerate() {
            let click = click as usize;
            let is_purchase = sales[click] != 0 && in_category(item_sk[click]);
            if !is_purchase {
                continue;
            }
            let from = pos.saturating_sub(window);
            for &prior in &session[from..pos] {
                let viewed = item_sk[prior as usize];
                if in_category(viewed) {
                    *views.entry(viewed).or_insert(0) += 1;
                }
            }
        }
        start = end;
    }

    let out = Batch::new(
        out_schema,
        vec![
            Column::Int64(views.keys().copied().collect()),
            Column::Int64(views.values().copied().collect()),
        ],
    );
    ctx.arena.recycle_u32(idx);
    for v in [users, dates, times, item_sk, sales] {
        ctx.arena.recycle_i64(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// shuffle partitioning under selections
// ---------------------------------------------------------------------------

/// Hash-partition a chain's output stream into `n` buckets without
/// materialising it first: hashes fold batched over each batch's key
/// columns, live rows route to per-bucket location tables, and each
/// bucket gathers straight from the original batches. Row order within a
/// bucket equals the legacy concat-then-`partition_batch` order.
pub fn partition_sel(
    output: Vec<SelBatch>,
    partition_by: &[String],
    n: usize,
) -> Result<Vec<Batch>, EngineError> {
    assert!(n > 0);
    let Some(first) = output.first() else {
        return Err(EngineError::Plan("partition over no batches".into()));
    };
    let schema = Rc::clone(&first.batch.schema);
    if partition_by.is_empty() {
        // Everything to bucket 0 (single downstream).
        let batches = materialise_all(output);
        let merged = Batch::concat(&batches);
        let mut out = vec![Batch::empty(schema); n];
        out[0] = merged;
        return Ok(out);
    }
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (pi, sb) in output.iter().enumerate() {
        let hashes = operators::partition_hashes(&sb.batch, partition_by)?;
        for r in sb.spec().iter(sb.batch.num_rows()) {
            let b = (hashes[r] % n as u64) as usize;
            buckets[b].push((pi as u32, r as u32));
        }
    }
    let parts: Vec<&Batch> = output.iter().map(|sb| sb.batch.as_ref()).collect();
    Ok(buckets
        .into_iter()
        .map(|locs| Batch::gather(&parts, &locs))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;
    use skyrise_data::DataType;
    use std::rc::Rc;

    fn udfs() -> UdfRegistry {
        UdfRegistry::with_builtins()
    }

    fn lineitems() -> Vec<Batch> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("flag", DataType::Utf8),
        ]);
        vec![
            Batch::new(
                Rc::clone(&schema),
                vec![
                    Column::Int64(vec![1, 2, 3]),
                    Column::Float64(vec![10.0, 20.0, 30.0]),
                    Column::Utf8(vec!["A".into(), "B".into(), "A".into()]),
                ],
            ),
            Batch::new(
                schema,
                vec![
                    Column::Int64(vec![4, 5]),
                    Column::Float64(vec![40.0, 50.0]),
                    Column::Utf8(vec!["B".into(), "A".into()]),
                ],
            ),
        ]
    }

    /// Every operator shape through both executors: identical batches.
    fn assert_matches_oracle(ops: &[Op], inputs: &[Vec<Batch>]) {
        let (new, new_stats) = execute_chain(ops, inputs, &udfs()).unwrap();
        let (old, old_stats) = operators::execute_ops(ops, inputs, &udfs()).unwrap();
        let new_all = Batch::concat(&new);
        let old_all = Batch::concat(&old);
        assert_eq!(new_all.schema, old_all.schema);
        assert_eq!(new_all.columns, old_all.columns);
        assert_eq!(new_stats, old_stats);
    }

    #[test]
    fn filter_project_matches_oracle() {
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(2)),
            },
            Op::Filter {
                predicate: Expr::col("flag").cmp(CmpOp::Eq, Expr::lit_str("A")),
            },
            Op::Project {
                exprs: vec![NamedExpr::new(
                    "double",
                    Expr::col("price").arith(ArithOp::Mul, Expr::lit_f64(2.0)),
                )],
            },
        ];
        assert_matches_oracle(&ops, &[lineitems()]);
    }

    #[test]
    fn aggregate_matches_oracle_all_modes() {
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("price"), "total"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
            AggExpr::new(AggFunc::Avg, Expr::col("price"), "avg_price"),
            AggExpr::new(AggFunc::Min, Expr::col("k"), "min_k"),
            AggExpr::new(AggFunc::Max, Expr::col("flag"), "max_flag"),
        ];
        for mode in [AggMode::Single, AggMode::Partial] {
            let ops = vec![Op::HashAggregate {
                group_by: vec!["flag".into()],
                aggregates: aggs.clone(),
                mode,
            }];
            assert_matches_oracle(&ops, &[lineitems()]);
        }
        // Global aggregate (no group keys).
        let ops = vec![Op::HashAggregate {
            group_by: vec![],
            aggregates: aggs,
            mode: AggMode::Single,
        }];
        assert_matches_oracle(&ops, &[lineitems()]);
    }

    #[test]
    fn join_sort_limit_matches_oracle() {
        let orders_schema = Schema::new(vec![
            Field::new("o_key", DataType::Int64),
            Field::new("prio", DataType::Utf8),
        ]);
        let orders = vec![Batch::new(
            orders_schema,
            vec![
                Column::Int64(vec![1, 2, 4, 2]),
                Column::Utf8(vec!["HI".into(), "LO".into(), "HI".into(), "MED".into()]),
            ],
        )];
        let ops = vec![
            Op::HashJoin {
                build_input: 1,
                build_key: "o_key".into(),
                probe_key: "k".into(),
                build_columns: vec!["prio".into()],
            },
            Op::Sort {
                by: vec![("prio".into(), true), ("k".into(), false)],
            },
            Op::Limit { n: 3 },
        ];
        assert_matches_oracle(&ops, &[lineitems(), orders]);
    }

    #[test]
    fn legacy_toggle_forces_oracle_path() {
        set_legacy_kernels(true);
        let ops = vec![Op::Limit { n: 2 }];
        let (out, _) = execute_chain(&ops, &[lineitems()], &udfs()).unwrap();
        set_legacy_kernels(false);
        assert_eq!(Batch::concat(&out).num_rows(), 2);
    }

    #[test]
    fn binding_errors_match_legacy_shapes() {
        let ops = vec![Op::Sort {
            by: vec![("zzz".into(), true)],
        }];
        let err = execute_chain(&ops, &[lineitems()], &udfs()).unwrap_err();
        assert!(err.to_string().contains("unknown sort column zzz"));
        let ops = vec![Op::Filter {
            predicate: Expr::col("zzz").cmp(crate::expr::CmpOp::Eq, Expr::lit_i64(1)),
        }];
        let err = execute_chain(&ops, &[lineitems()], &udfs()).unwrap_err();
        assert!(err.to_string().contains("unknown column zzz"));
    }

    #[test]
    fn identity_selections_materialise_without_copying() {
        let b = Rc::new(lineitems().remove(0));
        let data_ptr = b.columns[0].as_i64().as_ptr();
        // Full-range Rows selection.
        let sb = SelBatch {
            batch: b,
            sel: Sel::Rows(vec![0, 1, 2]),
        };
        let out = sb.materialise();
        assert_eq!(out.columns[0].as_i64().as_ptr(), data_ptr);
        // Full prefix.
        let sb = SelBatch {
            batch: Rc::new(out),
            sel: Sel::Prefix(3),
        };
        let out = sb.materialise();
        assert_eq!(out.columns[0].as_i64().as_ptr(), data_ptr);
        // Non-identity selections still gather.
        let sb = SelBatch {
            batch: Rc::new(out),
            sel: Sel::Rows(vec![2, 0]),
        };
        let out = sb.materialise();
        assert_eq!(out.columns[0].as_i64(), &[3, 1]);
    }

    #[test]
    fn limit_keeps_selection_without_slicing() {
        let stream: Vec<SelBatch> = lineitems().into_iter().map(SelBatch::wrap).collect();
        let ptr = stream[0].batch.columns[0].as_i64().as_ptr();
        let out = limit(stream, 2);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].sel, Sel::Prefix(2)));
        // The batch is shared, not sliced.
        assert_eq!(out[0].batch.columns[0].as_i64().as_ptr(), ptr);
        assert_eq!(out[0].clone().materialise().num_rows(), 2);
    }

    #[test]
    fn partition_sel_matches_concat_then_partition() {
        let stream: Vec<SelBatch> = lineitems().into_iter().map(SelBatch::wrap).collect();
        // Filter to odd keys via an explicit selection.
        let filtered: Vec<SelBatch> = stream
            .into_iter()
            .map(|sb| {
                let keep: Vec<u32> = (0..sb.batch.num_rows() as u32)
                    .filter(|&i| sb.batch.columns[0].as_i64()[i as usize] % 2 == 1)
                    .collect();
                SelBatch {
                    batch: sb.batch,
                    sel: Sel::Rows(keep),
                }
            })
            .collect();
        let reference = {
            let batches: Vec<Batch> = filtered.iter().map(|sb| sb.clone().materialise()).collect();
            let merged = Batch::concat(&batches);
            operators::partition_batch(&merged, &["flag".to_string()], 4).unwrap()
        };
        let got = partition_sel(filtered, &["flag".to_string()], 4).unwrap();
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.columns, r.columns);
        }
    }

    #[test]
    fn execute_chain_sel_reports_arena_usage() {
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(2)),
            },
            Op::HashAggregate {
                group_by: vec!["flag".into()],
                aggregates: vec![AggExpr::new(AggFunc::Sum, Expr::col("price"), "total")],
                mode: AggMode::Single,
            },
        ];
        let (out, stats, report) = execute_chain_sel(&ops, &[lineitems()], &udfs()).unwrap();
        assert_eq!(stats.rows_out, out.iter().map(|b| b.rows() as u64).sum());
        assert_eq!(report.resets, 1);
        assert!(report.bytes_allocated > 0);
        assert_eq!(report.per_op.len(), 2);
        assert_eq!(report.per_op[0].0, "filter");
        assert_eq!(report.per_op[1].0, "hash-aggregate");
        assert!(report.per_op.iter().map(|(_, b)| b).sum::<u64>() <= report.bytes_allocated);
    }
}
