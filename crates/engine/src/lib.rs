//! # skyrise-engine — the serverless query engine
//!
//! A Rust reimplementation of the paper's Skyrise engine (Sec. 3.2):
//! JSON physical plans over pipelines of vectorised operators, executed by
//! coordinator and worker *functions* on either a FaaS platform or a VM
//! cluster behind the shim layer, with all state in shared serverless
//! storage (Fig. 4).
//!
//! Entry point: [`Skyrise::deploy`], then [`Skyrise::run`] with a plan
//! from [`queries`].

#![warn(missing_docs)]

pub mod arena;
pub mod bind;
pub mod catalog;
pub mod coordinator;
pub mod cpu;
pub mod driver;
pub mod error;
pub mod expr;
pub mod operators;
pub mod plan;
pub mod profile;
pub mod pushdown;
pub mod queries;
pub mod reference;
pub mod worker;

pub use catalog::{load_dataset, DatasetLayout, DatasetMeta, PartitionMeta};
pub use coordinator::{QueryConfig, QueryRequest, QueryResponse, StageStats, TaskPolicy};
pub use driver::{Skyrise, SkyriseConfig, COORDINATOR_FN, FANOUT_FN, WORKER_FN};
pub use error::EngineError;
pub use expr::{ArithOp, CmpOp, Expr, NamedExpr, UdfRegistry};
pub use plan::{AggExpr, AggFunc, AggMode, InputSpec, Op, PhysicalPlan, Pipeline, Sink};
pub use profile::{ProfileCost, QueryProfile, StageSlice};
pub use worker::{WorkerReport, WorkerTask};
