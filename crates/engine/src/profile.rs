//! Per-query profiles derived from the virtual-time trace.
//!
//! [`QueryProfile`] condenses one query's trace window into the numbers an
//! engineer reaches for first: the stage-wise critical path as observed by
//! the coordinator, cumulative time per operator across the worker fleet,
//! the coldstart share of worker time, bytes moved, and the marginal cost
//! drawn from the [`skyrise_pricing`] meter. The driver's
//! [`crate::driver::Skyrise::run_profiled`] builds one per execution.

use crate::coordinator::QueryResponse;
use serde::Serialize;
use skyrise_pricing::CostReport;
use skyrise_sim::{AttrValue, EventKind, TraceEvent, Tracer};
use std::collections::BTreeMap;

/// One coordinator-scheduled stage on the query's critical path. Stages
/// execute in dependency order, so their spans tile the query runtime (the
/// gaps are coordinator work: metadata fetches, planning, result fetch).
#[derive(Debug, Clone, Serialize)]
pub struct StageSlice {
    /// Pipeline id the stage executed.
    pub pipeline: u32,
    /// Stage start, seconds after the query began.
    pub start_secs: f64,
    /// Stage duration (coordinator-observed wall time).
    pub duration_secs: f64,
    /// Worker fragments scheduled.
    pub fragments: u32,
}

/// Marginal cost of one query: the field-wise delta of the usage meter's
/// [`CostReport`] across the execution.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ProfileCost {
    /// Lambda GB-second charges.
    pub lambda_compute_usd: f64,
    /// Lambda per-request charges.
    pub lambda_request_usd: f64,
    /// EC2 instance-hour charges (IaaS mode).
    pub ec2_usd: f64,
    /// Storage request charges.
    pub storage_request_usd: f64,
    /// Storage capacity charges accrued during the run.
    pub storage_capacity_usd: f64,
}

impl ProfileCost {
    /// `after - before`, clamped at zero per component.
    pub fn delta(before: &CostReport, after: &CostReport) -> Self {
        ProfileCost {
            lambda_compute_usd: (after.lambda_compute_usd - before.lambda_compute_usd).max(0.0),
            lambda_request_usd: (after.lambda_request_usd - before.lambda_request_usd).max(0.0),
            ec2_usd: (after.ec2_usd - before.ec2_usd).max(0.0),
            storage_request_usd: (after.storage_request_usd - before.storage_request_usd).max(0.0),
            storage_capacity_usd: (after.storage_capacity_usd - before.storage_capacity_usd)
                .max(0.0),
        }
    }

    /// Grand total in dollars.
    pub fn total_usd(&self) -> f64 {
        self.lambda_compute_usd
            + self.lambda_request_usd
            + self.ec2_usd
            + self.storage_request_usd
            + self.storage_capacity_usd
    }
}

/// A per-query execution profile assembled from the trace and the
/// coordinator response.
#[derive(Debug, Clone, Serialize)]
pub struct QueryProfile {
    /// The profiled query execution id.
    pub query_id: String,
    /// End-to-end runtime (coordinator wall time, virtual seconds).
    pub runtime_secs: f64,
    /// Sum of all worker wall times across stages.
    pub cumulative_worker_secs: f64,
    /// Stage spans in schedule order, relative to the query start.
    pub critical_path: Vec<StageSlice>,
    /// Cumulative worker-seconds per operator/phase label (`scan-read`,
    /// `io-stack`, `filter`, `hash-aggregate`, `shuffle-write`, ...).
    pub operator_secs: BTreeMap<String, f64>,
    /// Sandboxes cold-started during the query window.
    pub cold_starts: u64,
    /// Total seconds spent in coldstart init + binary download.
    pub coldstart_secs: f64,
    /// Coldstart fraction of (coldstart + worker) time, in `[0, 1]`.
    pub coldstart_share: f64,
    /// Logical bytes read from storage.
    pub bytes_read: u64,
    /// Logical bytes written to storage.
    pub bytes_written: u64,
    /// Storage requests issued (including retries).
    pub storage_requests: u64,
    /// Trace events recorded inside the query window.
    pub events_traced: u64,
    /// Failure-driven task re-invocations across stages (worker and
    /// fan-out helper tiers).
    pub task_retries: u32,
    /// Speculative duplicate invocations launched for stragglers.
    pub speculative_invokes: u32,
    /// Worker-seconds spent in attempts that ultimately failed.
    pub failed_attempt_secs: f64,
    /// Failed-attempt fraction of (failed + worker) time, in `[0, 1]` —
    /// the wasted-work share of the reliability tax.
    pub failure_share: f64,
    /// Fault-plan injections observed in the query's trace window
    /// (`fault-*` instants; 0 with tracing disabled or no fault plan).
    pub faults_injected: u64,
    /// Telemetry counter deltas across the execution — how far each
    /// registry counter advanced while this query ran. Empty without an
    /// installed [`skyrise_sim::MetricRegistry`] (DESIGN.md §10).
    pub metric_counters: BTreeMap<String, u64>,
    /// Marginal cost, when a usage meter was reachable.
    pub cost: Option<ProfileCost>,
}

fn attr_str<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.attrs.iter().find_map(|(k, v)| match v {
        AttrValue::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

fn attr_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.attrs.iter().find_map(|(k, v)| match v {
        AttrValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

impl QueryProfile {
    /// Build a profile for `response.query_id` from the recorded trace.
    /// With tracing disabled the trace-derived fields stay empty and only
    /// the response aggregates are filled in.
    pub fn from_trace(
        response: &QueryResponse,
        tracer: &Tracer,
        cost: Option<ProfileCost>,
    ) -> Self {
        let qid = response.query_id.as_str();
        let mut profile = QueryProfile {
            query_id: response.query_id.clone(),
            runtime_secs: response.runtime_secs,
            cumulative_worker_secs: response.cumulative_worker_secs,
            critical_path: Vec::new(),
            operator_secs: BTreeMap::new(),
            cold_starts: response.stages.iter().map(|s| s.cold_starts as u64).sum(),
            coldstart_secs: 0.0,
            coldstart_share: 0.0,
            bytes_read: response.stages.iter().map(|s| s.logical_bytes_read).sum(),
            bytes_written: response
                .stages
                .iter()
                .map(|s| s.logical_bytes_written)
                .sum(),
            storage_requests: response.total_requests(),
            events_traced: 0,
            task_retries: response.stages.iter().map(|s| s.task_retries).sum(),
            speculative_invokes: response.stages.iter().map(|s| s.speculative_invokes).sum(),
            failed_attempt_secs: response.stages.iter().map(|s| s.failed_attempt_secs).sum(),
            failure_share: 0.0,
            faults_injected: 0,
            metric_counters: BTreeMap::new(),
            cost,
        };
        tracer.with_events(|events| {
            // The query window: the coordinator's "query" span for this id.
            let window = events.iter().find_map(|ev| {
                (ev.service == "coordinator"
                    && ev.name == "query"
                    && ev.kind == EventKind::Span
                    && attr_str(ev, "query") == Some(qid))
                .then(|| (ev.ts, ev.dur))
            });
            let Some((t0, dur)) = window else { return };
            let t1 = dur.map(|d| t0.saturating_add(d));
            let in_window = |ev: &TraceEvent| ev.ts >= t0 && t1.map_or(true, |end| ev.ts <= end);
            let mut trace_cold_starts = 0u64;
            for ev in events {
                if !in_window(ev) {
                    continue;
                }
                profile.events_traced += 1;
                let dur_secs = ev.dur.map_or(0.0, |d| d.as_secs_f64());
                match (ev.service, ev.name) {
                    ("coordinator", "stage") if attr_str(ev, "query") == Some(qid) => {
                        profile.critical_path.push(StageSlice {
                            pipeline: attr_u64(ev, "pipeline").unwrap_or(0) as u32,
                            start_secs: ev.ts.duration_since(t0).as_secs_f64(),
                            duration_secs: dur_secs,
                            fragments: attr_u64(ev, "fragments").unwrap_or(0) as u32,
                        });
                    }
                    ("worker", name)
                        if ev.kind == EventKind::Span
                            && name != "fragment"
                            && attr_str(ev, "query") == Some(qid) =>
                    {
                        *profile.operator_secs.entry(name.to_string()).or_insert(0.0) += dur_secs;
                    }
                    ("faas", "coldstart") => {
                        trace_cold_starts += 1;
                        profile.coldstart_secs += dur_secs;
                    }
                    (_, name) if name.starts_with("fault-") => {
                        profile.faults_injected += 1;
                    }
                    _ => {}
                }
            }
            // Prefer the trace's coldstart count (it also sees the
            // coordinator and fan-out sandboxes the response can't).
            profile.cold_starts = profile.cold_starts.max(trace_cold_starts);
        });
        let denom = profile.coldstart_secs + profile.cumulative_worker_secs;
        if denom > 0.0 {
            profile.coldstart_share = profile.coldstart_secs / denom;
        }
        let denom = profile.failed_attempt_secs + profile.cumulative_worker_secs;
        if denom > 0.0 {
            profile.failure_share = profile.failed_attempt_secs / denom;
        }
        profile
    }

    /// Render a human-readable text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query {} — runtime {:.3}s, {:.1} worker-seconds, {} trace events",
            self.query_id, self.runtime_secs, self.cumulative_worker_secs, self.events_traced
        );
        if !self.critical_path.is_empty() {
            let _ = writeln!(out, "  critical path:");
            for s in &self.critical_path {
                let _ = writeln!(
                    out,
                    "    pipeline {:>2}  start {:>8.3}s  dur {:>8.3}s  x{} fragments",
                    s.pipeline, s.start_secs, s.duration_secs, s.fragments
                );
            }
        }
        if !self.operator_secs.is_empty() {
            let _ = writeln!(out, "  time in operator (worker-seconds):");
            let mut by_time: Vec<(&String, &f64)> = self.operator_secs.iter().collect();
            by_time.sort_by(|a, b| b.1.total_cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (name, secs) in by_time {
                let _ = writeln!(out, "    {name:<16} {secs:>10.3}");
            }
        }
        let _ = writeln!(
            out,
            "  coldstarts: {} ({:.1}s, {:.1}% of worker time)",
            self.cold_starts,
            self.coldstart_secs,
            100.0 * self.coldstart_share
        );
        if self.task_retries > 0 || self.speculative_invokes > 0 || self.faults_injected > 0 {
            let _ = writeln!(
                out,
                "  reliability: {} faults injected, {} task retries, {} speculative invokes, \
                 {:.1}s failed attempts ({:.1}% of worker time)",
                self.faults_injected,
                self.task_retries,
                self.speculative_invokes,
                self.failed_attempt_secs,
                100.0 * self.failure_share
            );
        }
        if !self.metric_counters.is_empty() {
            let _ = writeln!(
                out,
                "  telemetry ({} counters advanced):",
                self.metric_counters.len()
            );
            for (name, delta) in &self.metric_counters {
                let _ = writeln!(out, "    {name:<40} {delta:>12}");
            }
        }
        let _ = writeln!(
            out,
            "  bytes read {:.3} GB, written {:.3} GB; {} storage requests",
            self.bytes_read as f64 / 1e9,
            self.bytes_written as f64 / 1e9,
            self.storage_requests
        );
        if let Some(cost) = &self.cost {
            let _ = writeln!(
                out,
                "  cost ${:.6} (lambda ${:.6} compute + ${:.6} requests, storage ${:.6}, ec2 ${:.6})",
                cost.total_usd(),
                cost.lambda_compute_usd,
                cost.lambda_request_usd,
                cost.storage_request_usd + cost.storage_capacity_usd,
                cost.ec2_usd
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::StageStats;

    fn response() -> QueryResponse {
        QueryResponse {
            query_id: "q6-0".into(),
            runtime_secs: 2.0,
            cumulative_worker_secs: 10.0,
            stages: vec![StageStats {
                pipeline: 0,
                fragments: 4,
                logical_bytes_read: 1_000,
                logical_bytes_written: 100,
                storage_requests: 12,
                cold_starts: 4,
                ..StageStats::default()
            }],
            ..QueryResponse::default()
        }
    }

    #[test]
    fn disabled_tracer_yields_response_aggregates_only() {
        let profile = QueryProfile::from_trace(&response(), &Tracer::disabled(), None);
        assert_eq!(profile.bytes_read, 1_000);
        assert_eq!(profile.storage_requests, 12);
        assert_eq!(profile.cold_starts, 4);
        assert!(profile.critical_path.is_empty());
        assert!(profile.operator_secs.is_empty());
        assert!(profile.metric_counters.is_empty());
        assert_eq!(profile.events_traced, 0);
        assert!(!profile.render().is_empty());
    }

    #[test]
    fn profile_extracts_stage_and_operator_spans() {
        use skyrise_sim::{Sim, SimDuration};
        let mut sim = Sim::new(7);
        let tracer = sim.install_tracer();
        let ctx = sim.ctx();
        let t = tracer.clone();
        sim.spawn(async move {
            let q = t.span(&ctx, "coordinator", 0, "query");
            q.attr("query", "q6-0");
            let s = t.span(&ctx, "coordinator", 0, "stage");
            s.attr("query", "q6-0")
                .attr("pipeline", 0u32)
                .attr("fragments", 4u32);
            let w = t.span(&ctx, "worker", 1, "filter");
            w.attr("query", "q6-0");
            let c = t.span(&ctx, "faas", 2, "coldstart");
            ctx.sleep(SimDuration::from_millis(500)).await;
            c.end();
            w.end();
            s.end();
            q.end();
        });
        sim.run();
        let profile = QueryProfile::from_trace(&response(), &tracer, None);
        assert_eq!(profile.critical_path.len(), 1);
        assert_eq!(profile.critical_path[0].fragments, 4);
        assert!((profile.critical_path[0].duration_secs - 0.5).abs() < 1e-9);
        assert!((profile.operator_secs["filter"] - 0.5).abs() < 1e-9);
        assert!((profile.coldstart_secs - 0.5).abs() < 1e-9);
        assert!(profile.coldstart_share > 0.0);
        assert_eq!(profile.events_traced, 4);
        let text = profile.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("filter"));
    }

    #[test]
    fn cost_delta_clamps_and_totals() {
        let mut before = CostReport::default();
        before.lambda_compute_usd = 1.0;
        let mut after = CostReport::default();
        after.lambda_compute_usd = 1.5;
        after.storage_request_usd = 0.25;
        let d = ProfileCost::delta(&before, &after);
        assert!((d.lambda_compute_usd - 0.5).abs() < 1e-12);
        assert!((d.total_usd() - 0.75).abs() < 1e-12);
    }
}
