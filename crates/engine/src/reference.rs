//! Row-at-a-time reference implementations of the query suite.
//!
//! Independent of the distributed engine (no shared operator code), these
//! compute every query's answer directly over in-memory tables; the
//! integration tests assert the engine matches them.

use skyrise_data::{date, Batch, Value};
use std::collections::BTreeMap;

/// TPC-H Q1 over LINEITEM. Output rows match the engine plan's columns:
/// `(returnflag, linestatus, sum_qty, sum_base_price, sum_disc_price,
/// sum_charge, avg_qty, avg_price, avg_disc, count_order)`.
pub fn q1(lineitem: &Batch) -> Vec<Vec<Value>> {
    let cutoff = date::from_ymd(1998, 12, 1) - 90;
    let flag = lineitem.column("l_returnflag").as_str();
    let status = lineitem.column("l_linestatus").as_str();
    let qty = lineitem.column("l_quantity").as_f64();
    let price = lineitem.column("l_extendedprice").as_f64();
    let disc = lineitem.column("l_discount").as_f64();
    let tax = lineitem.column("l_tax").as_f64();
    let ship = lineitem.column("l_shipdate").as_i64();

    #[derive(Default)]
    struct Acc {
        sum_qty: f64,
        sum_base: f64,
        sum_disc_price: f64,
        sum_charge: f64,
        sum_disc: f64,
        count: i64,
    }
    let mut groups: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for i in 0..lineitem.num_rows() {
        if ship[i] > cutoff {
            continue;
        }
        let acc = groups
            .entry((flag[i].clone(), status[i].clone()))
            .or_default();
        acc.sum_qty += qty[i];
        acc.sum_base += price[i];
        acc.sum_disc_price += price[i] * (1.0 - disc[i]);
        acc.sum_charge += price[i] * (1.0 - disc[i]) * (1.0 + tax[i]);
        acc.sum_disc += disc[i];
        acc.count += 1;
    }
    groups
        .into_iter()
        .map(|((f, s), a)| {
            vec![
                Value::Utf8(f),
                Value::Utf8(s),
                Value::Float64(a.sum_qty),
                Value::Float64(a.sum_base),
                Value::Float64(a.sum_disc_price),
                Value::Float64(a.sum_charge),
                Value::Float64(a.sum_qty / a.count as f64),
                Value::Float64(a.sum_base / a.count as f64),
                Value::Float64(a.sum_disc / a.count as f64),
                Value::Int64(a.count),
            ]
        })
        .collect()
}

/// TPC-H Q6: the revenue scalar.
pub fn q6(lineitem: &Batch) -> f64 {
    let lo = date::from_ymd(1994, 1, 1);
    let hi = date::from_ymd(1995, 1, 1);
    let qty = lineitem.column("l_quantity").as_f64();
    let price = lineitem.column("l_extendedprice").as_f64();
    let disc = lineitem.column("l_discount").as_f64();
    let ship = lineitem.column("l_shipdate").as_i64();
    let mut revenue = 0.0;
    for i in 0..lineitem.num_rows() {
        if ship[i] >= lo && ship[i] < hi && disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24.0 {
            revenue += price[i] * disc[i];
        }
    }
    revenue
}

/// TPC-H Q12: `(shipmode, high_line_count, low_line_count)` sorted by
/// ship mode.
pub fn q12(lineitem: &Batch, orders: &Batch) -> Vec<Vec<Value>> {
    let lo = date::from_ymd(1994, 1, 1);
    let hi = date::from_ymd(1995, 1, 1);
    let priorities: std::collections::BTreeMap<i64, &String> = orders
        .column("o_orderkey")
        .as_i64()
        .iter()
        .copied()
        .zip(orders.column("o_orderpriority").as_str())
        .collect();

    let okey = lineitem.column("l_orderkey").as_i64();
    let mode = lineitem.column("l_shipmode").as_str();
    let commit = lineitem.column("l_commitdate").as_i64();
    let receipt = lineitem.column("l_receiptdate").as_i64();
    let ship = lineitem.column("l_shipdate").as_i64();

    let mut groups: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    for i in 0..lineitem.num_rows() {
        if !(mode[i] == "MAIL" || mode[i] == "SHIP") {
            continue;
        }
        if !(commit[i] < receipt[i] && ship[i] < commit[i]) {
            continue;
        }
        if !(receipt[i] >= lo && receipt[i] < hi) {
            continue;
        }
        let Some(priority) = priorities.get(&okey[i]) else {
            continue;
        };
        let high = *priority == "1-URGENT" || *priority == "2-HIGH";
        let e = groups.entry(mode[i].clone()).or_default();
        if high {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    groups
        .into_iter()
        .map(|(m, (h, l))| vec![Value::Utf8(m), Value::Int64(h), Value::Int64(l)])
        .collect()
}

/// TPCx-BB Q3 (the simplified semantics of `Op::SessionizeQ3`):
/// `(item_sk, views)` for the top `top_n` category items viewed within
/// `window` clicks before a category purchase, sorted by views descending
/// then item ascending.
pub fn bb_q3(
    clickstreams: &Batch,
    item: &Batch,
    category: &str,
    window: usize,
    top_n: usize,
) -> Vec<Vec<Value>> {
    let cat_items: std::collections::BTreeSet<i64> = item
        .column("i_item_sk")
        .as_i64()
        .iter()
        .copied()
        .zip(item.column("i_category").as_str())
        .filter(|(_, c)| c.as_str() == category)
        .map(|(sk, _)| sk)
        .collect();

    let users = clickstreams.column("wcs_user_sk").as_i64();
    let dates = clickstreams.column("wcs_click_date_sk").as_i64();
    let times = clickstreams.column("wcs_click_time_sk").as_i64();
    let items = clickstreams.column("wcs_item_sk").as_i64();
    let sales = clickstreams.column("wcs_sales_sk").as_i64();

    let mut idx: Vec<usize> = (0..clickstreams.num_rows()).collect();
    idx.sort_by_key(|&i| (users[i], dates[i], times[i]));

    let mut views: BTreeMap<i64, i64> = BTreeMap::new();
    let mut start = 0;
    while start < idx.len() {
        let user = users[idx[start]];
        let mut end = start;
        while end < idx.len() && users[idx[end]] == user {
            end += 1;
        }
        let session = &idx[start..end];
        for (pos, &click) in session.iter().enumerate() {
            if sales[click] == 0 || !cat_items.contains(&items[click]) {
                continue;
            }
            for &prior in &session[pos.saturating_sub(window)..pos] {
                if cat_items.contains(&items[prior]) {
                    *views.entry(items[prior]).or_insert(0) += 1;
                }
            }
        }
        start = end;
    }

    let mut rows: Vec<(i64, i64)> = views.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top_n);
    rows.into_iter()
        .map(|(item, v)| vec![Value::Int64(item), Value::Int64(v)])
        .collect()
}

/// Compare two row sets with a relative tolerance for floats (distributed
/// float summation is order-sensitive).
pub fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>], rel_tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (ra, rb) in a.iter().zip(b) {
        if ra.len() != rb.len() {
            return false;
        }
        for (va, vb) in ra.iter().zip(rb) {
            let ok = match (va, vb) {
                (Value::Float64(x), Value::Float64(y)) => {
                    let scale = x.abs().max(y.abs()).max(1e-12);
                    (x - y).abs() / scale <= rel_tol
                }
                // Sum over ints travels as float through the engine.
                (Value::Float64(x), Value::Int64(y)) | (Value::Int64(y), Value::Float64(x)) => {
                    (x - *y as f64).abs() <= rel_tol * (x.abs().max(1.0))
                }
                _ => va == vb,
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_data::{tpch, tpcxbb};

    #[test]
    fn q1_groups_cover_flag_status_combos() {
        let t = tpch::generate(0.005, 3);
        let rows = q1(&t.lineitem);
        // A/F, N/F, N/O, R/F are the standard four groups.
        assert_eq!(rows.len(), 4);
        let Value::Int64(total) =
            rows.iter()
                .map(|r| r[9].clone())
                .fold(Value::Int64(0), |acc, v| match (acc, v) {
                    (Value::Int64(a), Value::Int64(b)) => Value::Int64(a + b),
                    _ => unreachable!(),
                })
        else {
            unreachable!()
        };
        assert!(total > 0 && (total as usize) <= t.lineitem.num_rows());
    }

    #[test]
    fn q6_is_positive_and_stable() {
        let t = tpch::generate(0.005, 3);
        let r1 = q6(&t.lineitem);
        let r2 = q6(&t.lineitem);
        assert!(r1 > 0.0);
        assert_eq!(r1, r2);
    }

    #[test]
    fn q12_produces_mail_and_ship() {
        let t = tpch::generate(0.01, 3);
        let rows = q12(&t.lineitem, &t.orders);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Utf8("MAIL".into()));
        assert_eq!(rows[1][0], Value::Utf8("SHIP".into()));
    }

    #[test]
    fn bb_q3_top_n_is_sorted() {
        let t = tpcxbb::generate(0.1, 3);
        let rows = bb_q3(&t.clickstreams, &t.item, "Electronics", 10, 15);
        assert!(!rows.is_empty() && rows.len() <= 15);
        for w in rows.windows(2) {
            let (Value::Int64(v1), Value::Int64(v2)) = (&w[0][1], &w[1][1]) else {
                unreachable!()
            };
            assert!(v1 >= v2, "descending by views");
        }
    }

    #[test]
    fn rows_approx_eq_tolerates_float_noise() {
        let a = vec![vec![Value::Float64(100.0), Value::Int64(5)]];
        let b = vec![vec![Value::Float64(100.0 + 1e-9), Value::Int64(5)]];
        assert!(rows_approx_eq(&a, &b, 1e-9));
        let c = vec![vec![Value::Float64(101.0), Value::Int64(5)]];
        assert!(!rows_approx_eq(&a, &c, 1e-9));
        assert!(!rows_approx_eq(&a, &[], 1e-9));
    }
}
