//! The Skyrise engine deployment: wires coordinator, fan-out, and worker
//! handlers onto a compute platform (FaaS or IaaS) over a pair of storage
//! services, and exposes the driver-facing `run` entry point.
//!
//! Matches Fig. 4: "the framework's driver sends a physical query plan in
//! JSON format to an HTTP endpoint. On an FaaS platform, this triggers a
//! serverless function running the coordinator. In an IaaS deployment, the
//! request is routed to the same coordinator binary yet running on a
//! provisioned VM with our shim layer."

use crate::coordinator::{
    run_coordinator, run_fanout, FanoutRequest, QueryConfig, QueryRequest, QueryResponse,
};
use crate::error::EngineError;
use crate::expr::UdfRegistry;
use crate::plan::PhysicalPlan;
use crate::profile::QueryProfile;
use crate::worker::{barrier_key, run_worker, WorkerTask};
use skyrise_compute::{
    handler, ComputePlatform, ExecEnv, FaasError, FunctionConfig, LambdaPlatform, ShimCluster,
};
use skyrise_data::Batch;
use skyrise_sim::faults::INJECTED_FAILURE;
use skyrise_sim::SimCtx;
use skyrise_storage::{Blob, RequestOpts, Storage};
use std::cell::Cell;
use std::rc::{Rc, Weak};

/// Function names of the three deployed binaries.
pub const COORDINATOR_FN: &str = "skyrise-coordinator";
/// Name of the deployed worker function.
pub const WORKER_FN: &str = "skyrise-worker";
/// Name of the deployed fan-out helper function.
pub const FANOUT_FN: &str = "skyrise-fanout";

/// A weak platform reference, breaking the handler -> platform `Rc` cycle.
#[derive(Clone)]
enum WeakPlatform {
    Faas(Weak<LambdaPlatform>),
    Shim(Weak<ShimCluster>),
}

impl WeakPlatform {
    fn of(platform: &ComputePlatform) -> Self {
        match platform {
            ComputePlatform::Faas(p) => WeakPlatform::Faas(Rc::downgrade(p)),
            ComputePlatform::Shim(c) => WeakPlatform::Shim(Rc::downgrade(c)),
        }
    }

    fn upgrade(&self) -> ComputePlatform {
        match self {
            WeakPlatform::Faas(w) => {
                ComputePlatform::Faas(w.upgrade().expect("platform outlives handlers"))
            }
            WeakPlatform::Shim(w) => {
                ComputePlatform::Shim(w.upgrade().expect("platform outlives handlers"))
            }
        }
    }
}

/// Sizing of the deployed functions.
#[derive(Debug, Clone)]
pub struct SkyriseConfig {
    /// Worker memory — the paper's 7,076 MiB (4 vCPUs).
    pub worker_memory_mib: u64,
    /// Coordinator memory.
    pub coordinator_memory_mib: u64,
    /// Deployment artifact size (kept < 10 MiB; paper Sec. 3.2).
    pub binary_size: u64,
}

impl Default for SkyriseConfig {
    fn default() -> Self {
        SkyriseConfig {
            worker_memory_mib: 7_076,
            coordinator_memory_mib: 3_538,
            binary_size: 8 << 20,
        }
    }
}

/// A deployed Skyrise engine.
pub struct Skyrise {
    ctx: SimCtx,
    platform: ComputePlatform,
    scan_storage: Storage,
    shuffle_storage: Storage,
    next_query: Cell<u64>,
}

impl Skyrise {
    /// Deploy the engine: registers the coordinator, fan-out, and worker
    /// functions on `platform`.
    pub fn deploy(
        ctx: &SimCtx,
        platform: ComputePlatform,
        scan_storage: Storage,
        shuffle_storage: Storage,
        config: SkyriseConfig,
    ) -> Rc<Self> {
        let udfs = UdfRegistry::with_builtins();
        let weak = WeakPlatform::of(&platform);

        // Worker.
        {
            let scan = scan_storage.clone();
            let shuffle = shuffle_storage.clone();
            let udfs = udfs.clone();
            platform.register(
                FunctionConfig {
                    name: WORKER_FN.into(),
                    memory_mib: config.worker_memory_mib,
                    binary_size: config.binary_size,
                },
                handler(move |env: ExecEnv, payload: String| {
                    let scan = scan.clone();
                    let shuffle = shuffle.clone();
                    let udfs = udfs.clone();
                    async move {
                        let task: WorkerTask =
                            serde_json::from_str(&payload).map_err(|e| e.to_string())?;
                        let report = run_worker(&env, &scan, &shuffle, &udfs, &task)
                            .await
                            .map_err(|e| e.to_string())?;
                        serde_json::to_string(&report).map_err(|e| e.to_string())
                    }
                }),
            );
        }

        // Fan-out helper (two-level invocation).
        {
            let weak = weak.clone();
            platform.register(
                FunctionConfig {
                    name: FANOUT_FN.into(),
                    memory_mib: 1_769,
                    binary_size: config.binary_size,
                },
                handler(move |env: ExecEnv, payload: String| {
                    let weak = weak.clone();
                    async move {
                        let request: FanoutRequest =
                            serde_json::from_str(&payload).map_err(|e| e.to_string())?;
                        let platform = weak.upgrade();
                        let reports = run_fanout(&env, &platform, WORKER_FN, &request)
                            .await
                            .map_err(|e| e.to_string())?;
                        serde_json::to_string(&reports).map_err(|e| e.to_string())
                    }
                }),
            );
        }

        // Coordinator.
        {
            let scan = scan_storage.clone();
            let weak = weak.clone();
            platform.register(
                FunctionConfig {
                    name: COORDINATOR_FN.into(),
                    memory_mib: config.coordinator_memory_mib,
                    binary_size: config.binary_size,
                },
                handler(move |env: ExecEnv, payload: String| {
                    let scan = scan.clone();
                    let weak = weak.clone();
                    async move {
                        let request: QueryRequest =
                            serde_json::from_str(&payload).map_err(|e| e.to_string())?;
                        let platform = weak.upgrade();
                        let response =
                            run_coordinator(&env, &scan, &platform, WORKER_FN, FANOUT_FN, &request)
                                .await
                                .map_err(|e| e.to_string())?;
                        serde_json::to_string(&response).map_err(|e| e.to_string())
                    }
                }),
            );
        }

        Rc::new(Skyrise {
            ctx: ctx.clone(),
            platform,
            scan_storage,
            shuffle_storage,
            next_query: Cell::new(0),
        })
    }

    /// Deploy with one storage service for both base tables and shuffles.
    pub fn deploy_simple(ctx: &SimCtx, platform: ComputePlatform, storage: Storage) -> Rc<Self> {
        Skyrise::deploy(
            ctx,
            platform,
            storage.clone(),
            storage,
            SkyriseConfig::default(),
        )
    }

    /// The base-table storage handle.
    pub fn scan_storage(&self) -> &Storage {
        &self.scan_storage
    }

    /// The intermediate-shuffle storage handle.
    pub fn shuffle_storage(&self) -> &Storage {
        &self.shuffle_storage
    }

    /// The compute platform.
    pub fn platform(&self) -> &ComputePlatform {
        &self.platform
    }

    /// Submit a plan for execution; resolves to the coordinator response.
    ///
    /// The coordinator invocation itself retries (without speculation,
    /// under the request's [`TaskPolicy`](crate::coordinator::TaskPolicy)
    /// backoff) on platform-transient failures: throttling, a crashed
    /// coordinator sandbox, or an injected transient fault. Deterministic
    /// application errors — including a task that exhausted its own
    /// attempt budget — are not retried.
    pub async fn run(
        &self,
        plan: &PhysicalPlan,
        config: QueryConfig,
    ) -> Result<QueryResponse, EngineError> {
        let id = self.next_query.get();
        self.next_query.set(id + 1);
        let policy = config.task_policy.clone();
        let request = QueryRequest {
            query_id: format!("{}-{id}", plan.name),
            plan: plan.clone(),
            config,
        };
        let payload = serde_json::to_string(&request)?;
        let backoff = policy.backoff_policy();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match &self.platform {
                ComputePlatform::Faas(p) => p.invoke(COORDINATOR_FN, payload.clone()).await,
                // The IaaS coordinator runs on the head node, outside the
                // worker slot pool.
                ComputePlatform::Shim(c) => {
                    c.invoke_unqueued(COORDINATOR_FN, payload.clone()).await
                }
            };
            match result {
                Ok(result) => return Ok(serde_json::from_str(&result.output)?),
                Err(err) => {
                    let transient =
                        matches!(err, FaasError::TooManyRequests | FaasError::SandboxCrashed)
                            || matches!(&err, FaasError::HandlerFailed(m) if m == INJECTED_FAILURE);
                    if !transient || attempt >= max_attempts {
                        return Err(EngineError::Worker(err.to_string()));
                    }
                    self.ctx
                        .metrics()
                        .counter("engine.coordinator.retries")
                        .inc();
                    self.ctx.sleep(backoff.backoff(&self.ctx, attempt)).await;
                }
            }
        }
    }

    /// Run with default per-query configuration.
    pub async fn run_default(&self, plan: &PhysicalPlan) -> Result<QueryResponse, EngineError> {
        self.run(plan, QueryConfig::default()).await
    }

    /// Run a plan and assemble a [`QueryProfile`] from the virtual-time
    /// trace: stage critical path, per-operator time, coldstart share, and
    /// the marginal cost drawn from the platform's usage meter. Works with
    /// tracing disabled too (the trace-derived sections stay empty).
    pub async fn run_profiled(
        &self,
        plan: &PhysicalPlan,
        config: QueryConfig,
    ) -> Result<(QueryResponse, QueryProfile), EngineError> {
        let meter = self.platform.meter();
        let before = meter.as_ref().map(|m| m.borrow().report());
        let metrics = self.ctx.metrics();
        let counters_before = metrics.enabled().then(|| metrics.snapshot().counters);
        let response = self.run(plan, config).await?;
        let cost = meter
            .as_ref()
            .zip(before.as_ref())
            .map(|(m, before)| crate::profile::ProfileCost::delta(before, &m.borrow().report()));
        let mut profile = QueryProfile::from_trace(&response, &self.ctx.tracer(), cost);
        if let Some(before) = counters_before {
            for (name, after) in metrics.snapshot().counters {
                let delta = after - before.get(&name).copied().unwrap_or(0);
                if delta > 0 {
                    profile.metric_counters.insert(name, delta);
                }
            }
        }
        Ok((response, profile))
    }

    /// Pre-warm `n` worker sandboxes (and one coordinator) on FaaS.
    /// No-op on IaaS, whose VMs are provisioned up front.
    pub async fn warm(&self, n_workers: usize) {
        if let ComputePlatform::Faas(p) = &self.platform {
            p.warm(WORKER_FN, n_workers).await;
            p.warm(COORDINATOR_FN, 1).await;
        }
    }

    /// Open a named barrier (paper Sec. 3.2's subflow synchronisation):
    /// workers polling it resume on their next probe.
    pub fn open_barrier(&self, name: &str) {
        self.scan_storage
            .backdoor_put(&barrier_key(name), Blob::new(vec![1u8]));
    }

    /// Fetch and decode a query's result object.
    pub async fn fetch_result(&self, response: &QueryResponse) -> Result<Batch, EngineError> {
        let blob = self
            .scan_storage
            .get(&response.result_key, &RequestOpts::default())
            .await?;
        let batches = skyrise_data::spf::read_all(&blob.bytes, None)?;
        Ok(Batch::concat(&batches))
    }

    /// Simulation context (for experiment harnesses).
    pub fn ctx(&self) -> &SimCtx {
        &self.ctx
    }
}
