//! The query worker function.
//!
//! "A worker parses its query fragment and schedules the operators for
//! execution. Workers use a vectorized execution model. The execution
//! includes reading input data partitions in batches from shared storage,
//! generating partitioned outputs, and writing them back to storage."
//! (paper Sec. 3.2)
//!
//! Reads follow the paper's efficient-access techniques: the SPF footer is
//! fetched first, zone maps prune row groups against the pushed-down
//! predicate, column chunks are fetched as parallel ranged requests, and
//! stragglers are retried under a size-based timeout.
//!
//! Shuffle reads use the same playbook since the bucket-indexed segment
//! layout: a consumer fetches the object suffix (trailer + footer + bucket
//! directory, often the whole object for small segments), then one ranged
//! GET covering just its own bucket's pages — projected to the columns the
//! consumer chain binds and zone-pruned against its leading predicates —
//! instead of downloading and decoding every co-located bucket.

use crate::bind::{execute_chain_sel_seeded, partition_sel, DictSeed, SelBatch};
use crate::catalog::PartitionMeta;
use crate::cpu;
use crate::error::EngineError;
use crate::expr::{evaluate_mask, Expr, UdfRegistry};
use crate::operators::partition_batch;
use crate::plan::{InputSpec, Op, Pipeline, Sink};
use serde::{Deserialize, Serialize};
use skyrise_compute::ExecEnv;
use skyrise_data::columnar::{Batch, Schema};
use skyrise_data::spf;
use skyrise_data::Value;
use skyrise_storage::{Blob, RequestOpts, RetryPolicy, RetryingClient, Storage};
use std::cell::Cell;
use std::rc::Rc;

/// Input assignment for one worker fragment, parallel to the pipeline's
/// `inputs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum InputAssignment {
    /// Read these partition objects (input 0: this fragment's share;
    /// other inputs: a broadcast of the whole dataset).
    Scan {
        /// The partition objects to read.
        partitions: Vec<PartitionMeta>,
    },
    /// Read this fragment's bucket from every upstream fragment. With
    /// `combine > 1`, `combine` buckets share one object and the reader
    /// demultiplexes its rows by re-partitioning on `partition_by`.
    Shuffle {
        /// Producing pipeline id.
        from_pipeline: u32,
        /// Fragment count of the producing pipeline.
        upstream_fragments: u32,
        /// Partitioning keys (needed to demultiplex combined objects).
        #[serde(default)]
        partition_by: Vec<String>,
        /// Buckets per object written upstream.
        #[serde(default = "default_combine")]
        combine: u32,
    },
}

/// The task payload a worker receives (JSON over the invocation path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerTask {
    /// Query this fragment belongs to.
    pub query_id: String,
    /// The pipeline to execute (self-contained).
    pub pipeline: Pipeline,
    /// This worker's fragment index.
    pub fragment: u32,
    /// Total fragments of this pipeline.
    pub n_fragments: u32,
    /// Fragment count of the consuming pipeline (shuffle bucket count).
    pub downstream_fragments: u32,
    /// Input assignments, parallel to `pipeline.inputs`.
    pub inputs: Vec<InputAssignment>,
    /// Logical bytes this fragment is expected to read (coordinator's
    /// estimate; sizes the straggler re-trigger timeout).
    #[serde(default)]
    pub expected_input_bytes: u64,
    /// Concurrent in-flight shuffle-segment reads per worker (from
    /// [`crate::coordinator::TaskPolicy::shuffle_read_fanin`]).
    #[serde(default = "default_shuffle_read_fanin")]
    pub shuffle_read_fanin: u32,
}

/// Default shuffle read fan-in: two in flight mirrors real workers, which
/// interleave shuffle reads with decoding and joining rather than issuing
/// them all up front.
pub fn default_shuffle_read_fanin() -> u32 {
    2
}

/// What a worker reports back to the coordinator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Fragment index this report covers.
    pub fragment: u32,
    /// Logical rows entering the operator chain.
    pub rows_in: u64,
    /// Logical rows leaving the operator chain.
    pub rows_out: u64,
    /// Logical bytes read from storage.
    pub logical_bytes_read: u64,
    /// Logical bytes written to storage.
    pub logical_bytes_written: u64,
    /// Storage requests issued (including retries).
    pub storage_requests: u64,
    /// Wall time spent in input I/O (seconds, simulated).
    pub io_secs: f64,
    /// Wall time spent in operator execution (seconds, simulated).
    pub cpu_secs: f64,
    /// Whether this worker's sandbox cold-started.
    pub cold_start: bool,
    /// Invocations launched for this fragment (first + retries +
    /// speculative duplicates). Stamped by the dispatching tier.
    #[serde(default = "default_attempts")]
    pub invoke_attempts: u32,
    /// Speculative duplicates among `invoke_attempts`.
    #[serde(default)]
    pub speculative_invokes: u32,
    /// Wall seconds spent in attempts that ultimately failed.
    #[serde(default)]
    pub failed_attempt_secs: f64,
}

fn default_attempts() -> u32 {
    1
}

/// Concurrent ranged chunk requests per worker.
pub const CHUNK_CONCURRENCY: usize = 8;

/// Speculative suffix length for the layout probe of a shuffle read: one
/// GET that lands the trailer, footer, and bucket directory — and for
/// marker-sized segments the whole object — without a prior HEAD. Paid
/// once per (consumer, shuffle input), not per segment: sibling segments
/// are then fetched with a suffix sized from the probed layout. Payload
/// bytes (logical scaling does not change the wire layout); shuffle
/// segments carry the producing stream's logical scale, so the probe's
/// speculative bytes are billed at that multiplier — 4 KiB covers typical
/// multi-bucket footers in one request while staying a sliver of any
/// segment worth ranging into.
pub const SHUFFLE_TAIL_HINT: u64 = 4096;

fn default_combine() -> u32 {
    1
}

thread_local! {
    /// Bench toggle: force whole-object shuffle reads (the pre-index
    /// baseline) even when the bucket directory would allow ranged reads.
    static LEGACY_SHUFFLE_READ: Cell<bool> = const { Cell::new(false) };
}

/// Force (or stop forcing) whole-object demultiplexing shuffle reads on
/// this thread. Benchmark baseline arm; production readers never set it.
pub fn set_legacy_shuffle_read(v: bool) {
    LEGACY_SHUFFLE_READ.with(|c| c.set(v));
}

/// Whether whole-object shuffle reads are being forced on this thread.
pub fn legacy_shuffle_read() -> bool {
    LEGACY_SHUFFLE_READ.with(|c| c.get())
}

/// Byte accounting for one pipeline's shuffle reads, folded into the
/// `engine.shuffle.*` counters (DESIGN.md §10).
#[derive(Debug, Clone, Default)]
pub struct ShuffleReadStats {
    /// Logical bytes actually transferred (suffix + footer + bucket ranges,
    /// or whole objects on the baseline/fallback paths).
    pub bytes_read: u64,
    /// Logical bytes a whole-object read of the same segments would have
    /// transferred — the demultiplexing baseline.
    pub bytes_whole_object: u64,
    /// Logical bytes of this consumer's own bucket pages skipped by column
    /// projection and zone-map pruning (never decoded).
    pub bytes_pruned: u64,
    /// Rows decoded and then discarded by hash demultiplexing (zero on the
    /// bucket-indexed path: the range GET is exact).
    pub rows_demuxed: u64,
    /// Logical bytes actually decoded: the whole segment on the
    /// demultiplexing path, only this bucket's kept projected pages on the
    /// bucket-indexed path. Drives the worker's decode CPU charge.
    pub bytes_decoded: u64,
}

impl ShuffleReadStats {
    fn merge(&mut self, other: &ShuffleReadStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_whole_object += other.bytes_whole_object;
        self.bytes_pruned += other.bytes_pruned;
        self.rows_demuxed += other.rows_demuxed;
        self.bytes_decoded += other.bytes_decoded;
    }
}

/// Stable trace label for an operator.
fn op_label(op: &Op) -> &'static str {
    match op {
        Op::Filter { .. } => "filter",
        Op::Project { .. } => "project",
        Op::HashAggregate { .. } => "hash-aggregate",
        Op::HashJoin { .. } => "hash-join",
        Op::Sort { .. } => "sort",
        Op::Limit { .. } => "limit",
        Op::SessionizeQ3 { .. } => "sessionize",
        Op::Barrier { .. } => "barrier",
    }
}

/// Shuffle object key: `query/pipeline/source fragment/destination bucket
/// group` (a group holds `combine` consecutive buckets).
pub fn shuffle_key(query_id: &str, pipeline: u32, src_fragment: u32, dst_group: u32) -> String {
    format!("shuffle/{query_id}/p{pipeline}/f{src_fragment}/b{dst_group}")
}

/// Result object key for a query.
pub fn result_key(query_id: &str, fragment: u32) -> String {
    format!("results/{query_id}/part-{fragment:05}.spf")
}

/// Barrier object key.
pub fn barrier_key(name: &str) -> String {
    format!("barriers/{name}")
}

struct ReadOutcome {
    batches: Vec<Batch>,
    logical_bytes: u64,
    requests: u64,
    /// logical/payload ratio of what was read (1.0 for unscaled data).
    scale: f64,
    /// Shuffle byte accounting (`None` for scans).
    shuffle: Option<ShuffleReadStats>,
    /// Storage-decoded dictionaries handed to the fused pipeline's
    /// `DictCache` (late materialization; stream input only).
    seeds: Vec<DictSeed>,
}

/// Run one worker fragment to completion. Base tables and results live on
/// `scan_storage`; intermediates move through `shuffle_storage` (the two
/// differ in the paper's Fig. 15 experiment arms).
pub async fn run_worker(
    env: &ExecEnv,
    scan_storage: &Storage,
    shuffle_storage: &Storage,
    udfs: &UdfRegistry,
    task: &WorkerTask,
) -> Result<WorkerReport, EngineError> {
    // Chunked scans run CHUNK_CONCURRENCY ranged requests in parallel per
    // partition over one sandbox NIC, so a chunk's expected bandwidth is
    // the 75 MiB/s worst-case baseline divided by the fan-in.
    let scan_policy = RetryPolicy {
        expected_bw: 75.0 * 1024.0 * 1024.0 / CHUNK_CONCURRENCY as f64,
        timeout_slack: 3.0,
        max_attempts: 40,
        ..RetryPolicy::eager()
    };
    let client = RetryingClient::new(scan_storage.clone(), env.ctx.clone(), scan_policy);
    // Shuffle objects have no advertised size, so the shuffle client uses
    // a patient timeout and relies on throttle retries (which return fast).
    let shuffle_policy = RetryPolicy {
        base_timeout: skyrise_sim::SimDuration::from_secs(120),
        // Large shuffles intentionally exceed object-storage IOPS (paper
        // Sec. 4.5.2: Q12's shuffle is "constrained by default rate
        // limiting"); workers keep retrying until the partition drains.
        max_attempts: 40,
        // Cap backoff low: exponential sleeps past a couple of seconds
        // leave the rate-limited partition idle between attempts and
        // stretch the shuffle far beyond its queue-drain time.
        backoff_cap: skyrise_sim::SimDuration::from_secs(2),
        ..RetryPolicy::eager()
    };
    let shuffle_client =
        RetryingClient::new(shuffle_storage.clone(), env.ctx.clone(), shuffle_policy);
    let opts = RequestOpts::from_nic(&env.nic);
    let tracer = env.ctx.tracer();
    let lane = tracer.next_lane();
    let worker_span = tracer.span(&env.ctx, "worker", lane, "fragment");
    worker_span
        .attr("query", task.query_id.as_str())
        .attr("pipeline", task.pipeline.id)
        .attr("fragment", task.fragment)
        .attr("cold", env.cold_start)
        .attr("instance", env.instance_id);

    // Barriers first (subflow isolation; see plan::Op::Barrier).
    for op in &task.pipeline.ops {
        if let Op::Barrier { name } = op {
            wait_barrier(&client, &opts, name).await?;
        }
    }

    // Materialise inputs.
    let io_started = env.ctx.now();
    let mut inputs: Vec<Vec<Batch>> = Vec::with_capacity(task.inputs.len());
    let mut report = WorkerReport {
        fragment: task.fragment,
        cold_start: env.cold_start,
        ..WorkerReport::default()
    };
    let mut stream_scale = 1.0f64;
    let mut shuffle_stats: Option<ShuffleReadStats> = None;
    let mut seeds: Vec<DictSeed> = Vec::new();
    for (idx, assignment) in task.inputs.iter().enumerate() {
        let spec = task
            .pipeline
            .inputs
            .get(idx)
            .ok_or_else(|| EngineError::Plan("assignment without input spec".into()))?;
        let read_name: &'static str = match assignment {
            InputAssignment::Scan { .. } => "scan-read",
            InputAssignment::Shuffle { .. } => "shuffle-read",
        };
        let read_span = tracer.span(&env.ctx, "worker", lane, read_name);
        read_span.attr("query", task.query_id.as_str());
        let mut outcome = match assignment {
            InputAssignment::Scan { partitions } => {
                let (projection, predicate) = match spec {
                    InputSpec::Scan {
                        projection,
                        predicate,
                        ..
                    } => (projection.clone(), predicate.clone()),
                    InputSpec::Shuffle { .. } => {
                        return Err(EngineError::Plan(
                            "scan assignment for shuffle input".into(),
                        ))
                    }
                };
                read_scan(
                    &client,
                    &opts,
                    env,
                    partitions,
                    &projection,
                    predicate.as_ref(),
                    udfs,
                )
                .await?
            }
            InputAssignment::Shuffle {
                from_pipeline,
                upstream_fragments,
                partition_by,
                combine,
            } => {
                // Push the consumer chain's bound column set into the read;
                // leading filters prune row groups on the stream input only
                // (build sides are consumed unfiltered).
                let projection = crate::pushdown::shuffle_projection(&task.pipeline.ops, idx);
                let predicates: Vec<Expr> = if idx == 0 {
                    crate::pushdown::leading_predicates(&task.pipeline.ops)
                        .into_iter()
                        .cloned()
                        .collect()
                } else {
                    Vec::new()
                };
                read_shuffle(
                    &shuffle_client,
                    &opts,
                    &task.query_id,
                    *from_pipeline,
                    *upstream_fragments,
                    task.fragment,
                    task.n_fragments,
                    partition_by,
                    (*combine).max(1),
                    projection.as_deref(),
                    &predicates,
                    task.shuffle_read_fanin,
                    env.vcpus,
                )
                .await?
            }
        };
        report.logical_bytes_read += outcome.logical_bytes;
        report.storage_requests += outcome.requests;
        if let Some(s) = &outcome.shuffle {
            match &mut shuffle_stats {
                Some(total) => total.merge(s),
                None => shuffle_stats = Some(s.clone()),
            }
        }
        if idx == 0 {
            stream_scale = outcome.scale;
            seeds = std::mem::take(&mut outcome.seeds);
        }
        read_span
            .attr("bytes", outcome.logical_bytes)
            .attr("requests", outcome.requests);
        read_span.end();
        inputs.push(outcome.batches);
    }
    // I/O-stack CPU charge for ingesting the inputs.
    let io_span = tracer.span(&env.ctx, "worker", lane, "io-stack");
    io_span
        .attr("query", task.query_id.as_str())
        .attr("bytes", report.logical_bytes_read);
    env.ctx
        .sleep(cpu::io_stack_cost(
            report.logical_bytes_read as f64,
            report.storage_requests,
            env.vcpus,
        ))
        .await;
    io_span.end();
    report.io_secs = (env.ctx.now() - io_started).as_secs_f64();

    // Execute the operator chain, charging virtual CPU for logical rows.
    // Dictionaries decoded off storage seed the fused pipeline's DictCache,
    // so dictionary-encoded shuffle columns skip the first re-encode.
    let cpu_started = env.ctx.now();
    let (output, stats, arena_report) =
        execute_chain_sel_seeded(&task.pipeline.ops, inputs, &seeds, udfs)?;
    let logical_rows = stats.rows_in as f64 * stream_scale;
    env.ctx
        .sleep(cpu::chain_cost(&task.pipeline.ops, logical_rows, env.vcpus))
        .await;
    // Lay per-operator spans over the chain charge: the single sleep above
    // keeps timing identical, the spans slice it at each operator's share.
    if tracer.enabled() {
        let mut cursor = cpu_started;
        for op in &task.pipeline.ops {
            let end = cursor.saturating_add(cpu::op_cost(op, logical_rows, env.vcpus));
            let op_span = tracer.span_at(cursor, end, "worker", lane, op_label(op));
            op_span
                .attr("query", task.query_id.as_str())
                .attr("rows", logical_rows as u64)
                .attr("pipeline", task.pipeline.id)
                .attr("fragment", task.fragment);
            op_span.end();
            cursor = end;
        }
    }
    report.rows_in = (stats.rows_in as f64 * stream_scale) as u64;
    report.rows_out = (stats.rows_out as f64 * stream_scale) as u64;
    report.cpu_secs = (env.ctx.now() - cpu_started).as_secs_f64();

    // Sink.
    match &task.pipeline.sink {
        Sink::ShuffleWrite {
            partition_by,
            combine,
        } => {
            let sink_span = tracer.span(&env.ctx, "worker", lane, "shuffle-write");
            sink_span.attr("query", task.query_id.as_str());
            let combine = (*combine).max(1) as usize;
            let n_buckets = task.downstream_fragments.max(1) as usize;
            // Empty output still writes (empty) markers for every bucket
            // so downstream readers never block on missing objects.
            let schema = match output.first() {
                Some(sb) => Rc::clone(&sb.batch().schema),
                None => {
                    return Err(EngineError::Plan(
                        "pipeline produced no output batches (operator bug)".into(),
                    ))
                }
            };
            // Partition straight off the selection vectors — no
            // concat/materialise of the chain output.
            let buckets = partition_sel(output, partition_by, n_buckets)?;
            // Logical scaling applies to shuffled *data*, not to the fixed
            // SPF file overhead — otherwise empty buckets would masquerade
            // as hundreds of kilobytes.
            let empty = Batch::empty(Rc::clone(&schema));
            let n_groups = n_buckets.div_ceil(combine);
            let mut puts = Vec::with_capacity(n_groups);
            for (group, chunk) in buckets.chunks(combine).enumerate() {
                // Write combining: `combine` consecutive buckets share one
                // (larger) multiplexed object. The per-bucket directory in
                // the footer lets each reader range-GET only its own pages.
                // The file order rotates with the writer's fragment id so
                // every consumer's bucket takes each file position equally
                // often across the source fleet: suffix readers then pull
                // ~the same byte volume instead of the front bucket's
                // reader re-reading nearly whole segments.
                let rotation = task.fragment as usize % chunk.len().max(1);
                let empties = vec![Batch::empty(Rc::clone(&empty.schema)); chunk.len()];
                let overhead = spf::write_bucketed(&empties, 8192).len() as f64;
                let encoded = spf::write_bucketed_rotated(chunk, 8192, rotation);
                let len = encoded.len() as f64;
                let logical = overhead + stream_scale.max(1.0) * (len - overhead).max(0.0);
                let blob = Blob::scaled(encoded, (logical / len).max(1e-9));
                report.logical_bytes_written += blob.logical_len();
                let key = shuffle_key(
                    &task.query_id,
                    task.pipeline.id,
                    task.fragment,
                    group as u32,
                );
                let client = shuffle_client.clone();
                let opts = opts.clone();
                puts.push(
                    env.ctx
                        .spawn(async move { client.put(&key, blob, &opts).await }),
                );
            }
            for p in skyrise_sim::join_all(puts).await {
                let stats = p?;
                report.storage_requests += stats.attempts as u64;
            }
            sink_span
                .attr("bytes", report.logical_bytes_written)
                .attr("objects", n_groups);
            sink_span.end();
        }
        Sink::Result => {
            let batches: Vec<Batch> = output.into_iter().map(SelBatch::materialise).collect();
            let part = if batches.is_empty() {
                Batch::empty(skyrise_data::Schema::new(vec![]))
            } else {
                Batch::concat(&batches)
            };
            let encoded = spf::write(std::slice::from_ref(&part), 8192);
            let blob = Blob::new(encoded);
            report.logical_bytes_written += blob.logical_len();
            let sink_span = tracer.span(&env.ctx, "worker", lane, "result-write");
            sink_span
                .attr("query", task.query_id.as_str())
                .attr("bytes", blob.logical_len());
            let stats = client
                .put(&result_key(&task.query_id, task.fragment), blob, &opts)
                .await?;
            sink_span.end();
            report.storage_requests += stats.attempts as u64;
        }
    }

    // Per-operator and per-fragment telemetry (DESIGN.md §10). Resolved
    // here rather than cached: a worker fragment runs once per invocation.
    let metrics = env.ctx.metrics();
    if metrics.enabled() {
        metrics.counter("engine.worker.fragments").inc();
        metrics.counter("engine.worker.rows_in").add(report.rows_in);
        metrics
            .counter("engine.worker.rows_out")
            .add(report.rows_out);
        metrics
            .counter("engine.worker.bytes_read")
            .add(report.logical_bytes_read);
        metrics
            .counter("engine.worker.bytes_written")
            .add(report.logical_bytes_written);
        metrics
            .counter("engine.worker.storage_requests")
            .add(report.storage_requests);
        if let Some(s) = &shuffle_stats {
            metrics
                .counter("engine.shuffle.bytes_read")
                .add(s.bytes_read);
            metrics
                .counter("engine.shuffle.bytes_whole_object")
                .add(s.bytes_whole_object);
            metrics
                .counter("engine.shuffle.bytes_pruned")
                .add(s.bytes_pruned);
            metrics
                .counter("engine.shuffle.rows_demuxed")
                .add(s.rows_demuxed);
            metrics
                .counter("engine.shuffle.bytes_decoded")
                .add(s.bytes_decoded);
        }
        metrics
            .histogram("engine.worker.io_secs")
            .record(report.io_secs);
        metrics
            .histogram("engine.worker.cpu_secs")
            .record(report.cpu_secs);
        for op in &task.pipeline.ops {
            let label = op_label(op);
            metrics
                .counter(&format!("engine.op.{label}.invocations"))
                .inc();
            metrics
                .counter(&format!("engine.op.{label}.rows"))
                .add(logical_rows as u64);
        }
        metrics
            .counter("engine.arena.bytes_allocated")
            .add(arena_report.bytes_allocated);
        metrics
            .counter("engine.arena.resets")
            .add(arena_report.resets);
        for (label, bytes) in &arena_report.per_op {
            metrics
                .counter(&format!("engine.op.{label}.arena_bytes"))
                .add(*bytes);
        }
    }

    worker_span
        .attr("rows_in", report.rows_in)
        .attr("rows_out", report.rows_out)
        .attr("bytes_read", report.logical_bytes_read)
        .attr("bytes_written", report.logical_bytes_written);
    Ok(report)
}

/// Inefficient partitioning above recomputes buckets per iteration; keep
/// the allocation-friendly path for wide fan-outs.
async fn read_scan(
    client: &RetryingClient,
    opts: &RequestOpts,
    env: &ExecEnv,
    partitions: &[PartitionMeta],
    projection: &[String],
    predicate: Option<&crate::expr::Expr>,
    udfs: &UdfRegistry,
) -> Result<ReadOutcome, EngineError> {
    let mut outcome = ReadOutcome {
        batches: Vec::new(),
        logical_bytes: 0,
        requests: 0,
        scale: 1.0,
        shuffle: None,
        seeds: Vec::new(),
    };
    let mut payload_bytes = 0u64;

    // Partitions are fetched concurrently ("divides large storage requests
    // into smaller chunks to process them in parallel"), but the worker
    // bounds in-flight ranged requests so each gets a predictable share of
    // the sandbox NIC (and its size-based timeout stays meaningful).
    let chunk_gate = Rc::new(skyrise_sim::sync::Semaphore::new(CHUNK_CONCURRENCY));
    let mut handles = Vec::with_capacity(partitions.len());
    for part in partitions {
        let client = client.clone();
        let opts = opts.clone();
        let part = part.clone();
        let projection = projection.to_vec();
        let predicate = predicate.cloned();
        let udfs = udfs.clone();
        let ctx = env.ctx.clone();
        let vcpus = env.vcpus;
        let gate = Rc::clone(&chunk_gate);
        handles.push(env.ctx.spawn(async move {
            read_partition(
                &client,
                &opts,
                &ctx,
                vcpus,
                &part,
                &projection,
                predicate.as_ref(),
                &udfs,
                &gate,
            )
            .await
        }));
    }
    for h in skyrise_sim::join_all(handles).await {
        let (batches, logical, requests, payload) = h?;
        outcome.batches.extend(batches);
        outcome.logical_bytes += logical;
        outcome.requests += requests;
        payload_bytes += payload;
    }
    if payload_bytes > 0 {
        outcome.scale = outcome.logical_bytes as f64 / payload_bytes as f64;
    }
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
async fn read_partition(
    client: &RetryingClient,
    opts: &RequestOpts,
    ctx: &skyrise_sim::SimCtx,
    vcpus: f64,
    part: &PartitionMeta,
    projection: &[String],
    predicate: Option<&crate::expr::Expr>,
    udfs: &UdfRegistry,
    chunk_gate: &Rc<skyrise_sim::sync::Semaphore>,
) -> Result<(Vec<Batch>, u64, u64, u64), EngineError> {
    let mut logical = 0u64;
    let mut requests = 0u64;
    let mut payload = 0u64;
    // Ranged reads move `len x scale` logical bytes; timeouts must size
    // against that, not the payload length.
    let scale = (part.logical_bytes as f64 / part.payload_bytes.max(1) as f64).max(1.0);
    let expected = |len: u64| (len as f64 * scale) as u64;

    // 1. Trailer.
    let file_len = part.payload_bytes;
    let (trailer, s1) = client
        .get_range(
            &part.key,
            file_len - spf::TRAILER_LEN,
            spf::TRAILER_LEN,
            expected(spf::TRAILER_LEN),
            opts,
        )
        .await?;
    requests += s1.attempts as u64;
    logical += trailer.logical_len();
    payload += trailer.len() as u64;
    let (fstart, flen) = spf::footer_range(&trailer.bytes, file_len)?;

    // 2. Footer.
    let (footer_blob, s2) = client
        .get_range(&part.key, fstart, flen, expected(flen), opts)
        .await?;
    requests += s2.attempts as u64;
    logical += footer_blob.logical_len();
    payload += footer_blob.len() as u64;
    let footer = spf::parse_footer(&footer_blob.bytes)?;

    // Column projection indices.
    let proj: Vec<usize> = if projection.is_empty() {
        (0..footer.schema.len()).collect()
    } else {
        projection
            .iter()
            .map(|n| {
                footer
                    .schema
                    .index_of(n)
                    .ok_or_else(|| EngineError::Plan(format!("unknown scan column {n}")))
            })
            .collect::<Result<_, _>>()?
    };

    // 3. Column chunks, zone-map pruned, fetched in parallel per row group.
    let mut batches = Vec::new();
    for rg in &footer.row_groups {
        if let Some(pred) = predicate {
            if crate::pushdown::prune_row_group(pred, &footer.schema, rg) {
                continue;
            }
        }
        let mut chunk_handles = Vec::with_capacity(proj.len());
        for &ci in &proj {
            let meta = rg.chunks[ci].clone();
            let client = client.clone();
            let opts = opts.clone();
            let key = part.key.clone();
            let gate = Rc::clone(chunk_gate);
            let exp = expected(meta.len);
            chunk_handles.push(ctx.spawn(async move {
                let _slot = gate.acquire().await;
                client
                    .get_range(&key, meta.offset, meta.len, exp, &opts)
                    .await
                    .map(|(blob, stats)| (meta, blob, stats))
            }));
        }
        let mut columns = Vec::with_capacity(proj.len());
        for h in skyrise_sim::join_all(chunk_handles).await {
            let (meta, blob, stats) = h?;
            requests += stats.attempts as u64;
            logical += blob.logical_len();
            payload += blob.len() as u64;
            columns.push(spf::decode_chunk(&meta, &blob.bytes)?);
        }
        let batch = Batch::new(footer.schema.project(&proj), columns);
        // Residual filter (zone maps are row-group granular).
        let batch = match predicate {
            Some(pred) => {
                let mask = evaluate_mask(pred, &batch, udfs)?;
                batch.filter(&mask)
            }
            None => batch,
        };
        batches.push(batch);
    }

    // Zone maps may prune every row group; keep the schema alive with an
    // empty batch so downstream operators see consistent shapes.
    if batches.is_empty() {
        batches.push(Batch::empty(footer.schema.project(&proj)));
    }

    // Decode CPU charge for the logical bytes materialised.
    ctx.sleep(cpu::decode_cost(logical as f64, vcpus)).await;
    Ok((batches, logical, requests, payload))
}

/// What reading one shuffle segment produced.
struct ShuffleObject {
    batches: Vec<Batch>,
    /// `(local batch index, column index, sorted dict)` for dictionary
    /// chunks whose storage dictionary covers the decoded column exactly.
    seeds: Vec<(usize, usize, Rc<Vec<String>>)>,
    /// Projected schema of this segment (kept even when every row group is
    /// empty or pruned, so the caller can emit a typed marker batch).
    schema: Option<Rc<Schema>>,
    requests: u64,
    logical: u64,
    payload: u64,
    stats: ShuffleReadStats,
}

impl ShuffleObject {
    fn new() -> Self {
        ShuffleObject {
            batches: Vec::new(),
            seeds: Vec::new(),
            schema: None,
            requests: 0,
            logical: 0,
            payload: 0,
            stats: ShuffleReadStats::default(),
        }
    }
}

/// Tail, footer, and bucket directory of one shuffle segment — everything
/// a reader needs before it can fetch data pages.
struct SegmentMeta {
    tail_bytes: bytes::Bytes,
    /// File offset of the first tail byte.
    tail_start: u64,
    object_len: u64,
    /// Logical-to-payload multiplier of the segment's blob.
    scale: f64,
    footer: spf::Footer,
    index: Option<spf::BucketIndex>,
}

impl SegmentMeta {
    /// Byte layout by *file position* for a segment written by source
    /// fragment `src` (writers rotate bucket ids across positions, so
    /// positions — not bucket ids — transfer between sibling segments).
    fn layout(&self, src: u32) -> Option<ShuffleLayout> {
        let index = self.index.as_ref()?;
        let n = index.buckets.len();
        if n == 0 {
            return None;
        }
        let rotation = src as usize % n;
        Some(ShuffleLayout {
            object_len: self.object_len,
            starts: (0..n)
                .map(|position| index.buckets[(position + rotation) % n].byte_start)
                .collect(),
        })
    }
}

/// Byte layout of one shuffle segment by file position, learned from a
/// sibling's bucket directory.
struct ShuffleLayout {
    object_len: u64,
    /// First data byte of the bucket at each file position.
    starts: Vec<u64>,
}

impl ShuffleLayout {
    /// Suffix length expected to cover `my_bucket`'s pages plus the footer
    /// in the segment written by source fragment `src`, with headroom for
    /// size jitter between segments.
    fn suffix_hint(&self, my_bucket: usize, src: u32) -> u64 {
        let n = self.starts.len().max(1);
        let position = (my_bucket + n - src as usize % n) % n;
        (self.object_len - self.starts[position.min(n - 1)]) + self.object_len / 16 + 128
    }
}

/// Fetch a segment's tail and footer: one suffix GET of `suffix_len`
/// bytes, plus one ranged footer GET only when the tail stopped short of
/// the footer. Transfer accounting accrues on `obj`.
async fn read_segment_meta(
    client: &RetryingClient,
    opts: &RequestOpts,
    key: &str,
    suffix_len: u64,
    obj: &mut ShuffleObject,
) -> Result<SegmentMeta, EngineError> {
    let (tail, s1) = client.get_suffix(key, suffix_len, 0, opts).await?;
    obj.requests += s1.attempts as u64;
    obj.logical += tail.transferred;
    obj.payload += tail.blob.len() as u64;
    obj.stats.bytes_read += tail.transferred;
    let scale = tail.blob.logical_scale;
    obj.stats.bytes_whole_object += scaled(tail.object_len, scale);
    let object_len = tail.object_len;
    let tail_bytes = tail.blob.bytes.clone();
    let tail_start = object_len - tail_bytes.len() as u64;
    if tail_bytes.len() < spf::TRAILER_LEN as usize {
        return Err(spf::SpfError::Corrupt("shuffle object shorter than trailer").into());
    }
    let trailer = &tail_bytes[tail_bytes.len() - spf::TRAILER_LEN as usize..];
    let (fstart, flen) = spf::footer_range(trailer, object_len)?;
    let (footer, index) = if fstart >= tail_start {
        let a = (fstart - tail_start) as usize;
        spf::parse_footer_indexed(&tail_bytes[a..a + flen as usize])?
    } else {
        let (fb, s2) = client.get_range_metered(key, fstart, flen, 0, opts).await?;
        obj.requests += s2.attempts as u64;
        obj.logical += fb.transferred;
        obj.payload += fb.blob.len() as u64;
        obj.stats.bytes_read += fb.transferred;
        spf::parse_footer_indexed(&fb.blob.bytes)?
    };
    Ok(SegmentMeta {
        tail_bytes,
        tail_start,
        object_len,
        scale,
        footer,
        index,
    })
}

fn scaled(payload: u64, scale: f64) -> u64 {
    (payload as f64 * scale).round() as u64
}

#[allow(clippy::too_many_arguments)]
async fn read_shuffle(
    client: &RetryingClient,
    opts: &RequestOpts,
    query_id: &str,
    from_pipeline: u32,
    upstream_fragments: u32,
    my_fragment: u32,
    n_fragments: u32,
    partition_by: &[String],
    combine: u32,
    projection: Option<&[String]>,
    predicates: &[Expr],
    fanin: u32,
    vcpus: f64,
) -> Result<ReadOutcome, EngineError> {
    let my_group = my_fragment / combine;
    let my_bucket = (my_fragment - my_group * combine) as usize;
    let mut outcome = ReadOutcome {
        batches: Vec::new(),
        logical_bytes: 0,
        requests: 0,
        scale: 1.0,
        shuffle: None,
        seeds: Vec::new(),
    };
    let mut payload = 0u64;
    let mut stats = ShuffleReadStats::default();
    // Whole-object reads when nothing narrows the fetch: this group's
    // segments hold a single bucket (combine == 1, or the trailing group
    // of an uneven fan-out), so every data page is this consumer's anyway
    // and one GET beats a suffix probe + ranged read — projection still
    // applies post-decode. Zone-map pruning does narrow single-bucket
    // segments, so pushed predicates keep the ranged path. Ranged reads
    // also need native byte-range support — DynamoDB and EFS bill a full
    // get per range, so splitting the fetch there would multiply cost,
    // not cut it.
    let group_buckets = combine
        .min(n_fragments.saturating_sub(my_group * combine))
        .max(1);
    let whole_object = legacy_shuffle_read()
        || !matches!(client.storage, Storage::S3(_))
        || (group_buckets == 1 && predicates.is_empty());
    // The first segment's tail and footer are probed inline — one small
    // suffix GET, no data pages — because its bucket directory reveals the
    // layout every sibling segment shares (the upstream fleet writes
    // similarly-shaped objects). All segment reads, including finishing
    // the first, then fan out below with ONE suffix GET sized to cover
    // this consumer's bucket and the footer. Steady state is a single
    // request per segment, the same count as a whole-object read, so
    // shuffles that are rate-limit-bound (paper Sec. 4.5.2) see fewer
    // bytes, not more requests.
    let mut first: Option<(SegmentMeta, ShuffleObject)> = None;
    let mut layout: Option<ShuffleLayout> = None;
    if !whole_object && upstream_fragments > 0 {
        let key = shuffle_key(query_id, from_pipeline, 0, my_group);
        let mut probe = ShuffleObject::new();
        let meta = read_segment_meta(client, opts, &key, SHUFFLE_TAIL_HINT, &mut probe).await?;
        layout = meta.layout(0);
        first = Some((meta, probe));
    }
    // Bounded fan-in: a worker pulls its buckets a few at a time rather
    // than hammering the storage service with one request per upstream
    // fragment simultaneously.
    let gate = Rc::new(skyrise_sim::sync::Semaphore::new(fanin.max(1) as usize));
    let mut handles = Vec::with_capacity(upstream_fragments as usize);
    for src in 0..upstream_fragments {
        let key = shuffle_key(query_id, from_pipeline, src, my_group);
        let client = client.clone();
        let opts = opts.clone();
        let gate = Rc::clone(&gate);
        let projection: Option<Vec<String>> = projection.map(<[String]>::to_vec);
        let predicates = predicates.to_vec();
        let partition_by = partition_by.to_vec();
        let suffix_hint = layout.as_ref().map(|l| l.suffix_hint(my_bucket, src));
        let premeta = if src == 0 { first.take() } else { None };
        handles.push(client.ctx.clone().spawn(async move {
            let _slot = gate.acquire().await;
            read_shuffle_object(
                &client,
                &opts,
                &key,
                whole_object,
                my_bucket,
                combine,
                my_fragment,
                n_fragments,
                &partition_by,
                projection.as_deref(),
                &predicates,
                suffix_hint,
                premeta,
            )
            .await
        }));
    }
    let mut collected: Vec<ShuffleObject> = Vec::with_capacity(upstream_fragments as usize);
    for h in skyrise_sim::join_all(handles).await {
        collected.push(h?);
    }
    let mut schema: Option<Rc<Schema>> = None;
    for obj in collected {
        outcome.requests += obj.requests;
        outcome.logical_bytes += obj.logical;
        payload += obj.payload;
        stats.merge(&obj.stats);
        let base = outcome.batches.len();
        for (b, c, dict) in obj.seeds {
            outcome.seeds.push(DictSeed {
                batch: base + b,
                col: c,
                dict,
            });
        }
        outcome.batches.extend(obj.batches);
        if schema.is_none() {
            schema = obj.schema;
        }
    }
    // Bucket-indexed segments carry no marker row group for empty buckets;
    // keep the schema alive so the chain sees consistent shapes (and the
    // fused pipeline is not forced onto its legacy fallback).
    if outcome.batches.is_empty() {
        if let Some(s) = schema {
            outcome.batches.push(Batch::empty(s));
        }
    }
    if payload > 0 {
        outcome.scale = outcome.logical_bytes as f64 / payload as f64;
    }
    // Decompression + deserialisation CPU for what was actually decoded:
    // the whole segment on the demultiplexing path, only this bucket's kept
    // projected pages on the indexed path. Charged once against the
    // worker's vCPU share — the late-materialisation win is CPU as much as
    // bytes (decode-and-discard work the indexed layout never does).
    client
        .ctx
        .sleep(cpu::decode_cost(stats.bytes_decoded as f64, vcpus))
        .await;
    outcome.shuffle = Some(stats);
    Ok(outcome)
}

/// Decode a whole segment and keep this fragment's rows: the baseline path
/// for unindexed objects, non-S3 shuffle stores, and the bench toggle.
#[allow(clippy::too_many_arguments)]
fn demux_segment(
    obj: &mut ShuffleObject,
    file: &[u8],
    combine: u32,
    my_fragment: u32,
    n_fragments: u32,
    partition_by: &[String],
    projection: Option<&[String]>,
) -> Result<(), EngineError> {
    let footer = spf::read_footer(file)?;
    // Projection still applies (post-decode) so both read paths hand the
    // chain identically-shaped batches; the transfer savings are lost.
    let proj = projection_indices(&footer.schema, projection)?;
    let out_schema = footer.schema.project(&proj);
    if obj.schema.is_none() {
        obj.schema = Some(Rc::clone(&out_schema));
    }
    for batch in spf::read_all(file, None)? {
        if batch.num_rows() == 0 && batch.schema.is_empty() {
            continue;
        }
        let batch = if combine > 1 && batch.num_rows() > 0 {
            // Demultiplex: keep only the rows hashing to this fragment.
            let rows = batch.num_rows() as u64;
            let mine = partition_batch(&batch, partition_by, n_fragments.max(1) as usize)?
                .into_iter()
                .nth(my_fragment as usize)
                .expect("bucket exists");
            obj.stats.rows_demuxed += rows - mine.num_rows() as u64;
            mine
        } else {
            batch
        };
        obj.batches.push(batch.project(&proj));
    }
    Ok(())
}

fn projection_indices(
    schema: &Schema,
    projection: Option<&[String]>,
) -> Result<Vec<usize>, EngineError> {
    match projection {
        None => Ok((0..schema.len()).collect()),
        Some(names) => names
            .iter()
            .map(|n| {
                schema
                    .index_of(n)
                    .ok_or_else(|| EngineError::Plan(format!("unknown shuffle column {n}")))
            })
            .collect(),
    }
}

/// Read one shuffle segment. On the ranged path the reader issues one
/// suffix GET — sized by `suffix_hint` when a sibling segment has already
/// revealed where this consumer's bucket starts, `SHUFFLE_TAIL_HINT`
/// otherwise — and tops up with at most one footer GET and one corrective
/// byte-range GET when the guess fell short. With a good hint this is a
/// single request per segment, the same count as a whole-object read, so
/// rate-limit-bound shuffles pay fewer bytes without paying more requests.
/// Never a whole-object GET while the segment carries a bucket directory.
///
/// `premeta` carries a tail + footer that the caller already probed (the
/// layout-learning read of the first segment) together with its transfer
/// accounting; the data pages are still fetched here, under the fan-in
/// gate like every other segment.
#[allow(clippy::too_many_arguments)]
async fn read_shuffle_object(
    client: &RetryingClient,
    opts: &RequestOpts,
    key: &str,
    whole_object: bool,
    my_bucket: usize,
    combine: u32,
    my_fragment: u32,
    n_fragments: u32,
    partition_by: &[String],
    projection: Option<&[String]>,
    predicates: &[Expr],
    suffix_hint: Option<u64>,
    premeta: Option<(SegmentMeta, ShuffleObject)>,
) -> Result<ShuffleObject, EngineError> {
    if whole_object {
        let mut obj = ShuffleObject::new();
        let (blob, s) = client.get(key, 0, opts).await?;
        obj.requests += s.attempts as u64;
        obj.logical += blob.logical_len();
        obj.payload += blob.len() as u64;
        obj.stats.bytes_read += blob.logical_len();
        obj.stats.bytes_whole_object += blob.logical_len();
        obj.stats.bytes_decoded += blob.logical_len();
        demux_segment(
            &mut obj,
            &blob.bytes,
            combine,
            my_fragment,
            n_fragments,
            partition_by,
            projection,
        )?;
        return Ok(obj);
    }

    // 1.+2. Tail, footer, bucket directory — pre-probed or fetched now.
    let (meta, mut obj) = match premeta {
        Some(x) => x,
        None => {
            let mut obj = ShuffleObject::new();
            let meta = read_segment_meta(
                client,
                opts,
                key,
                suffix_hint.unwrap_or(SHUFFLE_TAIL_HINT),
                &mut obj,
            )
            .await?;
            (meta, obj)
        }
    };
    let SegmentMeta {
        tail_bytes,
        tail_start,
        scale,
        footer,
        index,
        ..
    } = meta;

    let proj = projection_indices(&footer.schema, projection)?;
    let out_schema = footer.schema.project(&proj);
    obj.schema = Some(Rc::clone(&out_schema));

    let Some(index) = index else {
        // Pre-index writer: fall back to the whole object and demultiplex.
        let (blob, s) = client.get(key, 0, opts).await?;
        obj.requests += s.attempts as u64;
        obj.logical += blob.logical_len();
        obj.payload += blob.len() as u64;
        obj.stats.bytes_read += blob.logical_len();
        obj.stats.bytes_decoded += blob.logical_len();
        return demux_segment(
            &mut obj,
            &blob.bytes,
            combine,
            my_fragment,
            n_fragments,
            partition_by,
            projection,
        )
        .map(|()| obj);
    };

    if index.buckets.len() <= my_bucket {
        return Err(spf::SpfError::Corrupt("bucket missing from segment directory").into());
    }

    // 3. Select this bucket's row groups, zone-pruned against the pushed
    //    predicates (pruning only — the chain's filters still run).
    let mut kept: Vec<&spf::RowGroupMeta> = Vec::new();
    for rg in index.row_groups(&footer, my_bucket) {
        if predicates
            .iter()
            .any(|p| crate::pushdown::prune_row_group(p, &footer.schema, rg))
        {
            for c in &rg.chunks {
                obj.stats.bytes_pruned += scaled(c.len, scale);
            }
            continue;
        }
        for (ci, c) in rg.chunks.iter().enumerate() {
            if !proj.contains(&ci) {
                obj.stats.bytes_pruned += scaled(c.len, scale);
            }
        }
        kept.push(rg);
    }

    // 4. First wanted byte of this bucket's projected, unpruned pages.
    let mut first_wanted: Option<u64> = None;
    for rg in &kept {
        for &ci in &proj {
            let c = &rg.chunks[ci];
            first_wanted = Some(first_wanted.map_or(c.offset, |lo| lo.min(c.offset)));
        }
    }
    let Some(lo) = first_wanted else {
        return Ok(obj); // empty or fully pruned bucket
    };

    // 5. Corrective prefix GET only when the suffix fell short of the
    //    bucket start; otherwise every wanted page is already local.
    let fetched: Vec<u8>;
    let (base, data): (u64, &[u8]) = if lo >= tail_start {
        (tail_start, &tail_bytes)
    } else {
        let (rb, s3) = client
            .get_range_metered(key, lo, tail_start - lo, 0, opts)
            .await?;
        obj.requests += s3.attempts as u64;
        obj.logical += rb.transferred;
        obj.payload += rb.blob.len() as u64;
        obj.stats.bytes_read += rb.transferred;
        let mut d = rb.blob.bytes.to_vec();
        d.extend_from_slice(&tail_bytes);
        fetched = d;
        (lo, &fetched)
    };

    // 6. Late-materialized decode: dictionary chunks surface their storage
    //    dictionary so the fused pipeline's DictCache starts warm.
    for rg in kept {
        let mut columns = Vec::with_capacity(proj.len());
        for (out_col, &ci) in proj.iter().enumerate() {
            let c = &rg.chunks[ci];
            let a = (c.offset - base) as usize;
            let b = a + c.len as usize;
            obj.stats.bytes_decoded += scaled(c.len, scale);
            let (col, dict) = spf::decode_chunk_with_dict(c, &data[a..b])?;
            if let Some(d) = dict {
                obj.seeds.push((obj.batches.len(), out_col, Rc::new(d)));
            }
            columns.push(col);
        }
        obj.batches
            .push(Batch::new(Rc::clone(&out_schema), columns));
    }
    Ok(obj)
}

async fn wait_barrier(
    client: &RetryingClient,
    opts: &RequestOpts,
    name: &str,
) -> Result<(), EngineError> {
    // "implemented as an extra operator that polls a shared queue for a
    // barrier condition"
    let key = barrier_key(name);
    loop {
        match client.storage.get(&key, opts).await {
            Ok(_) => return Ok(()),
            Err(skyrise_storage::StorageError::NotFound { .. }) => {
                client
                    .ctx
                    .sleep(skyrise_sim::SimDuration::from_millis(100))
                    .await;
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Helper for the coordinator: extract a `Value` row representation of
/// a result batch for JSON responses.
pub fn batch_to_rows(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_layouts_are_stable() {
        assert_eq!(shuffle_key("q1", 2, 3, 4), "shuffle/q1/p2/f3/b4");
        assert_eq!(result_key("q1", 0), "results/q1/part-00000.spf");
        assert_eq!(barrier_key("scan"), "barriers/scan");
    }

    #[test]
    fn task_json_round_trip() {
        let task = WorkerTask {
            query_id: "q".into(),
            pipeline: Pipeline {
                id: 0,
                inputs: vec![],
                ops: vec![],
                sink: Sink::Result,
                fragments: None,
            },
            fragment: 1,
            n_fragments: 8,
            downstream_fragments: 4,
            inputs: vec![InputAssignment::Shuffle {
                from_pipeline: 0,
                upstream_fragments: 2,
                partition_by: vec![],
                combine: 1,
            }],
            expected_input_bytes: 64 << 20,
            shuffle_read_fanin: 4,
        };
        let json = serde_json::to_string(&task).unwrap();
        let back: WorkerTask = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fragment, 1);
        assert_eq!(back.shuffle_read_fanin, 4);
        assert!(matches!(
            back.inputs[0],
            InputAssignment::Shuffle {
                upstream_fragments: 2,
                ..
            }
        ));
        // Tasks serialised by a pre-fan-in coordinator keep the old width.
        let stripped = json.replace(",\"shuffle_read_fanin\":4", "");
        let old: WorkerTask = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.shuffle_read_fanin, 2);
    }
}
