//! The dataset catalog and loader.
//!
//! Datasets live as partitioned SPF objects in shared storage, described
//! by a JSON catalog object ("the coordinator fetches the metadata on the
//! referenced pipeline input datasets, including the number and sizes of
//! the files", paper Sec. 3.2).
//!
//! The loader applies **logical-size scaling** (see `skyrise-data`): the
//! carried payload is generated at a small scale factor while each
//! partition advertises the logical size the paper's Table 4 reports for
//! SF1000. Network transfer times, request counts, and invoices all see
//! logical bytes; operator input sees the payload.

use crate::error::EngineError;
use serde::{Deserialize, Serialize};
use skyrise_data::{spf, Batch};
use skyrise_storage::{Blob, RequestOpts, RetryingClient, Storage};

/// One partition (object) of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionMeta {
    /// Object key.
    pub key: String,
    /// Real (payload) size in bytes.
    pub payload_bytes: u64,
    /// Logical size in bytes (payload x scale).
    pub logical_bytes: u64,
    /// Payload rows.
    pub payload_rows: u64,
    /// Logical rows (payload rows x scale).
    pub logical_rows: u64,
}

/// Catalog entry of one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Dataset name (catalog key stem).
    pub name: String,
    /// Per-partition metadata, in key order.
    pub partitions: Vec<PartitionMeta>,
}

impl DatasetMeta {
    /// Catalog object key for a dataset name.
    pub fn catalog_key(name: &str) -> String {
        format!("catalog/{name}.json")
    }

    /// Total logical bytes across partitions.
    pub fn total_logical_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.logical_bytes).sum()
    }

    /// Total logical rows across partitions.
    pub fn total_logical_rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.logical_rows).sum()
    }

    /// Mean partition logical size (bytes).
    pub fn mean_partition_bytes(&self) -> f64 {
        if self.partitions.is_empty() {
            0.0
        } else {
            self.total_logical_bytes() as f64 / self.partitions.len() as f64
        }
    }
}

/// How a table should be laid out in storage.
#[derive(Debug, Clone)]
pub struct DatasetLayout {
    /// Dataset name to register.
    pub name: String,
    /// Number of partitions (objects).
    pub partitions: usize,
    /// Target *logical* size per partition (bytes). The loader scales the
    /// payload to advertise this. `None` disables scaling (logical =
    /// payload).
    pub target_partition_logical_bytes: Option<u64>,
    /// SPF row-group size.
    pub rows_per_group: usize,
}

/// Write a table into storage as a partitioned SPF dataset and register
/// it in the catalog. Uses the backdoor (dataset setup is not billed).
pub fn load_dataset(
    storage: &Storage,
    layout: &DatasetLayout,
    table: &Batch,
) -> Result<DatasetMeta, EngineError> {
    let rows = table.num_rows();
    let parts = layout.partitions.max(1);
    let rows_per_part = rows.div_ceil(parts);
    let mut partitions = Vec::with_capacity(parts);
    for p in 0..parts {
        let start = (p * rows_per_part).min(rows);
        let end = ((p + 1) * rows_per_part).min(rows);
        let slice = table.slice(start, end);
        let payload_rows = slice.num_rows() as u64;
        let encoded = spf::write(&[slice], layout.rows_per_group.max(1));
        let payload_bytes = encoded.len() as u64;
        let scale = match layout.target_partition_logical_bytes {
            Some(target) if payload_bytes > 0 => (target as f64 / payload_bytes as f64).max(1.0),
            _ => 1.0,
        };
        let key = format!("data/{}/part-{p:05}.spf", layout.name);
        let blob = Blob::scaled(encoded, scale);
        let meta = PartitionMeta {
            key: key.clone(),
            payload_bytes,
            logical_bytes: blob.logical_len(),
            payload_rows,
            logical_rows: (payload_rows as f64 * scale).round() as u64,
        };
        storage.backdoor_put(&key, blob);
        partitions.push(meta);
    }
    let meta = DatasetMeta {
        name: layout.name.clone(),
        partitions,
    };
    let json = serde_json::to_string(&meta)?;
    storage.backdoor_put(&DatasetMeta::catalog_key(&layout.name), Blob::new(json));
    Ok(meta)
}

/// Fetch a dataset's catalog entry (a billed, retried read, as the
/// coordinator does it — a stray tail-latency request must not stall the
/// whole query).
pub async fn fetch_dataset(
    client: &RetryingClient,
    name: &str,
    opts: &RequestOpts,
) -> Result<DatasetMeta, EngineError> {
    let (blob, _) = client
        .get(&DatasetMeta::catalog_key(name), 4096, opts)
        .await?;
    let meta: DatasetMeta = serde_json::from_slice(&blob.bytes)?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_data::{Column, DataType, Field, Schema};
    use skyrise_pricing::shared_meter;
    use skyrise_sim::Sim;
    use skyrise_storage::S3Bucket;

    fn table(n: usize) -> Batch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        Batch::new(
            schema,
            vec![
                Column::Int64((0..n as i64).collect()),
                Column::Float64((0..n).map(|i| i as f64).collect()),
            ],
        )
    }

    #[test]
    fn load_partitions_and_catalog_roundtrip() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let layout = DatasetLayout {
                name: "t".into(),
                partitions: 4,
                target_partition_logical_bytes: None,
                rows_per_group: 100,
            };
            let meta = load_dataset(&storage, &layout, &table(1000)).unwrap();
            assert_eq!(meta.partitions.len(), 4);
            assert_eq!(
                meta.partitions.iter().map(|p| p.payload_rows).sum::<u64>(),
                1000
            );
            let client = RetryingClient::new(
                storage.clone(),
                ctx.clone(),
                skyrise_storage::RetryPolicy::eager(),
            );
            let fetched = fetch_dataset(&client, "t", &RequestOpts::default())
                .await
                .unwrap();
            assert_eq!(fetched.partitions.len(), 4);
            // Partition objects are readable SPF files.
            let blob = storage
                .get(&meta.partitions[0].key, &RequestOpts::default())
                .await
                .unwrap();
            let batches = spf::read_all(&blob.bytes, None).unwrap();
            let rows: usize = batches.iter().map(Batch::num_rows).sum();
            assert_eq!(rows as u64, meta.partitions[0].payload_rows);
        });
        sim.run();
        h.try_take().unwrap();
    }

    #[test]
    fn logical_scaling_hits_target() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let target = 64 * 1024 * 1024u64;
            let layout = DatasetLayout {
                name: "scaled".into(),
                partitions: 2,
                target_partition_logical_bytes: Some(target),
                rows_per_group: 512,
            };
            let meta = load_dataset(&storage, &layout, &table(2000)).unwrap();
            for p in &meta.partitions {
                let rel = (p.logical_bytes as f64 - target as f64).abs() / target as f64;
                assert!(rel < 0.01, "logical {} vs target {target}", p.logical_bytes);
                assert!(p.payload_bytes < 100_000);
                assert!(p.logical_rows > p.payload_rows);
            }
            assert!(meta.total_logical_bytes() >= 2 * target - 1024);
            assert!(meta.mean_partition_bytes() > 0.0);
        });
        sim.run();
        h.try_take().unwrap();
    }
}
