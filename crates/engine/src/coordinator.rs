//! The query coordinator function.
//!
//! "The coordinator fetches the metadata on the referenced pipeline input
//! datasets ... compiles a distributed query plan, deciding on the number
//! of fragments per pipeline for data-parallel execution ... then
//! schedules the pipelines stage-wise based on their dependencies."
//! (paper Sec. 3.2)
//!
//! Scheduling 256 or more workers, the coordinator switches to the
//! two-level invocation procedure: it invokes fan-out helper functions
//! that in turn invoke the workers.

use crate::catalog::{fetch_dataset, DatasetMeta};
use crate::error::EngineError;
use crate::plan::{InputSpec, PhysicalPlan};
use crate::worker::{result_key, InputAssignment, WorkerReport, WorkerTask};
use serde::{Deserialize, Serialize};
use skyrise_compute::{ComputePlatform, ExecEnv, FaasError};
use skyrise_sim::{first_completed, race, Either, SimCtx, SimDuration};
use skyrise_storage::{RequestOpts, RetryPolicy, RetryingClient, Storage};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Fragment threshold beyond which the two-level invocation kicks in.
pub const TWO_LEVEL_THRESHOLD: usize = 256;
/// Workers per fan-out helper.
pub const FANOUT_GROUP: usize = 64;
/// Coordinator-side cost of issuing one invocation request.
pub const DISPATCH_LATENCY: SimDuration = SimDuration::from_micros(1_500);

/// Per-query tunables carried in the request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Target logical input bytes per worker when sizing fragments.
    pub target_bytes_per_worker: u64,
    /// Hard ceiling on fragments per pipeline.
    pub max_parallelism: u32,
    /// Inline the result rows in the response when small.
    pub include_rows: bool,
    /// Fault-tolerance policy applied to every task invocation.
    #[serde(default)]
    pub task_policy: TaskPolicy,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            target_bytes_per_worker: 900 << 20,
            max_parallelism: 1_000,
            include_rows: true,
            task_policy: TaskPolicy::default(),
        }
    }
}

/// Fault-tolerance policy for task invocations: bounded retry with
/// exponential backoff on transient failures, plus speculative
/// re-execution of stragglers (a duplicate invoke after a size-based
/// timeout; the first completion wins and the abandoned duplicate still
/// runs — and bills — to completion).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskPolicy {
    /// Maximum invocations per task (first + retries + speculative
    /// duplicates) before the query fails.
    pub max_attempts: u32,
    /// Base straggler timeout for a zero-byte task (seconds).
    pub straggler_base_secs: f64,
    /// Expected effective input bandwidth for the size-based straggler
    /// timeout (bytes/second).
    pub straggler_bw: f64,
    /// Multiplier on the expected task duration before re-triggering.
    pub straggler_slack: f64,
    /// Launch speculative duplicates for stragglers.
    pub speculate: bool,
    /// First retry backoff sleep (milliseconds).
    pub backoff_base_ms: u64,
    /// Retry backoff ceiling (milliseconds).
    pub backoff_cap_ms: u64,
    /// Apply full jitter to backoff sleeps.
    pub jitter: bool,
    /// Concurrent in-flight shuffle-segment reads per worker. Two mirrors
    /// real workers, which interleave shuffle reads with decode and join
    /// work; wider fan-ins trade NIC contention for overlap.
    #[serde(default = "crate::worker::default_shuffle_read_fanin")]
    pub shuffle_read_fanin: u32,
}

impl Default for TaskPolicy {
    fn default() -> Self {
        TaskPolicy {
            max_attempts: 4,
            // Generous: healthy runs never speculate; tighten to study
            // the straggler re-trigger.
            straggler_base_secs: 600.0,
            straggler_bw: 20.0 * 1024.0 * 1024.0,
            straggler_slack: 4.0,
            speculate: true,
            backoff_base_ms: 200,
            backoff_cap_ms: 10_000,
            jitter: true,
            shuffle_read_fanin: crate::worker::default_shuffle_read_fanin(),
        }
    }
}

impl TaskPolicy {
    /// A policy with no retries and no speculation: the first failure
    /// (or straggler) is terminal.
    pub fn disabled() -> Self {
        TaskPolicy {
            max_attempts: 1,
            speculate: false,
            ..TaskPolicy::default()
        }
    }

    /// Straggler re-trigger timeout for a task expected to read `bytes`.
    pub fn timeout_for(&self, bytes: u64) -> SimDuration {
        let transfer = bytes as f64 / self.straggler_bw.max(1.0) * self.straggler_slack;
        SimDuration::from_secs_f64(self.straggler_base_secs + transfer)
    }

    /// The backoff schedule as a storage [`RetryPolicy`] (reusing its
    /// jittered exponential backoff).
    pub(crate) fn backoff_policy(&self) -> RetryPolicy {
        RetryPolicy {
            backoff_base: SimDuration::from_millis(self.backoff_base_ms),
            backoff_cap: SimDuration::from_millis(self.backoff_cap_ms),
            max_attempts: self.max_attempts.max(1),
            jitter: self.jitter,
            ..RetryPolicy::eager()
        }
    }
}

/// The request the driver sends to the coordinator function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Unique id of this execution (also keys shuffle/result objects).
    pub query_id: String,
    /// The physical plan to execute.
    pub plan: PhysicalPlan,
    /// Per-query tunables.
    pub config: QueryConfig,
}

/// Per-stage execution statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Pipeline id this stage executed.
    pub pipeline: u32,
    /// Worker fragments scheduled.
    pub fragments: u32,
    /// Fragment count of the consuming pipeline (shuffle object fan-out).
    pub downstream_fragments: u32,
    /// Stage wall time (coordinator-observed).
    pub duration_secs: f64,
    /// Sum of worker wall times (the "cumulated time" of Table 6).
    pub cumulative_worker_secs: f64,
    /// Sum of worker I/O phases (fetch + I/O stack + decode).
    pub io_secs_total: f64,
    /// Sum of worker operator-execution phases.
    pub cpu_secs_total: f64,
    /// Logical bytes all workers read.
    pub logical_bytes_read: u64,
    /// Logical bytes all workers wrote.
    pub logical_bytes_written: u64,
    /// Storage requests issued (including retries).
    pub storage_requests: u64,
    /// Logical rows the stage emitted.
    pub rows_out: u64,
    /// Workers that cold-started.
    pub cold_starts: u32,
    /// Failure-driven re-invocations across the stage's tasks (worker and
    /// fan-out helper tiers), excluding speculative duplicates.
    #[serde(default)]
    pub task_retries: u32,
    /// Speculative duplicate invocations launched for stragglers.
    #[serde(default)]
    pub speculative_invokes: u32,
    /// Wall seconds spent in attempts that ultimately failed.
    #[serde(default)]
    pub failed_attempt_secs: f64,
}

impl StageStats {
    /// Mean shuffle object size written by this stage (bytes), if it
    /// shuffled.
    pub fn mean_shuffle_object_bytes(&self) -> Option<f64> {
        let objects = self.fragments as u64 * self.downstream_fragments as u64;
        (self.logical_bytes_written > 0 && objects > 0)
            .then(|| self.logical_bytes_written as f64 / objects as f64)
    }
}

/// The coordinator's JSON response ("the location of the query result in
/// serverless storage, the query runtime and cost").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Echoed query id.
    pub query_id: String,
    /// Storage key of the result object.
    pub result_key: String,
    /// End-to-end query latency (coordinator wall time).
    pub runtime_secs: f64,
    /// Sum of all worker wall times across stages.
    pub cumulative_worker_secs: f64,
    /// Per-stage execution statistics.
    pub stages: Vec<StageStats>,
    /// Inlined result rows (when small and requested).
    pub rows: Option<Vec<Vec<skyrise_data::Value>>>,
}

impl QueryResponse {
    /// Total storage requests across stages.
    pub fn total_requests(&self) -> u64 {
        self.stages.iter().map(|s| s.storage_requests).sum()
    }

    /// Peak fragment count across stages.
    pub fn peak_workers(&self) -> u32 {
        self.stages.iter().map(|s| s.fragments).max().unwrap_or(0)
    }

    /// Mean fragment count across stages — with [`QueryResponse::peak_workers`]
    /// this yields Table 6's peak-to-average-node ratio.
    pub fn average_workers(&self) -> f64 {
        if self.stages.is_empty() {
            0.0
        } else {
            self.stages.iter().map(|s| s.fragments as f64).sum::<f64>() / self.stages.len() as f64
        }
    }
}

/// Payload of the fan-out helper: worker tasks serialised individually.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutRequest {
    /// Worker tasks this helper dispatches.
    pub tasks: Vec<WorkerTask>,
    /// Fault-tolerance policy the helper applies per worker invocation.
    #[serde(default)]
    pub policy: TaskPolicy,
}

/// Run the coordinator logic inside its function environment.
pub async fn run_coordinator(
    env: &ExecEnv,
    scan_storage: &Storage,
    platform: &ComputePlatform,
    worker_fn: &str,
    fanout_fn: &str,
    request: &QueryRequest,
) -> Result<QueryResponse, EngineError> {
    let started = env.ctx.now();
    let opts = RequestOpts::from_nic(&env.nic);
    let plan = &request.plan;
    let tracer = env.ctx.tracer();
    let lane = tracer.next_lane();
    let query_span = tracer.span(&env.ctx, "coordinator", lane, "query");
    query_span
        .attr("query", request.query_id.as_str())
        .attr("plan", plan.name.as_str())
        .attr("pipelines", plan.pipelines.len());
    let client = RetryingClient::new(scan_storage.clone(), env.ctx.clone(), RetryPolicy::eager());

    // 1. Fetch metadata for every scanned dataset.
    let mut datasets: BTreeMap<String, DatasetMeta> = BTreeMap::new();
    for pipeline in &plan.pipelines {
        for input in &pipeline.inputs {
            if let InputSpec::Scan { dataset, .. } = input {
                if !datasets.contains_key(dataset) {
                    let meta = fetch_dataset(&client, dataset, &opts).await?;
                    datasets.insert(dataset.clone(), meta);
                }
            }
        }
    }

    // 2. Decide fragment counts.
    let mut fragments: BTreeMap<u32, u32> = BTreeMap::new();
    for &id in &plan.stages() {
        let pipeline = plan.pipeline(id);
        let mut n = if let Some(hint) = pipeline.fragments {
            hint
        } else {
            match pipeline.inputs.first() {
                Some(InputSpec::Scan { dataset, .. }) => {
                    let bytes = datasets[dataset].total_logical_bytes();
                    (bytes.div_ceil(request.config.target_bytes_per_worker.max(1)))
                        .clamp(1, request.config.max_parallelism as u64) as u32
                }
                Some(InputSpec::Shuffle { from_pipeline }) => fragments[from_pipeline],
                None => 1,
            }
        };
        // Never schedule more scan fragments than partitions: a worker
        // with an empty share would produce nothing to shuffle.
        if let Some(InputSpec::Scan { dataset, .. }) = pipeline.inputs.first() {
            n = n.min(datasets[dataset].partitions.len() as u32);
        }
        fragments.insert(id, n.clamp(1, request.config.max_parallelism));
    }

    // 3. Execute stages in dependency order.
    let mut stages = Vec::new();
    let mut cumulative = 0.0f64;
    for id in plan.stages() {
        let pipeline = plan.pipeline(id);
        let n = fragments[&id];
        // The consuming pipeline's fragment count sizes shuffle buckets.
        let downstream = plan
            .pipelines
            .iter()
            .find(|p| {
                p.inputs.iter().any(
                    |i| matches!(i, InputSpec::Shuffle { from_pipeline } if *from_pipeline == id),
                )
            })
            .map(|p| fragments[&p.id])
            .unwrap_or(1);

        // Build per-fragment tasks.
        let mut tasks = Vec::with_capacity(n as usize);
        for frag in 0..n {
            let mut assignments = Vec::with_capacity(pipeline.inputs.len());
            let mut expected_input = 0u64;
            for (idx, input) in pipeline.inputs.iter().enumerate() {
                assignments.push(match input {
                    InputSpec::Scan { dataset, .. } => {
                        let meta = &datasets[dataset];
                        let partitions: Vec<_> = if idx == 0 {
                            // Stream input: round-robin partitions.
                            meta.partitions
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| (*i as u32) % n == frag)
                                .map(|(_, p)| p.clone())
                                .collect()
                        } else {
                            // Build inputs are broadcast.
                            meta.partitions.clone()
                        };
                        expected_input += partitions.iter().map(|p| p.logical_bytes).sum::<u64>();
                        InputAssignment::Scan { partitions }
                    }
                    InputSpec::Shuffle { from_pipeline } => {
                        // Estimate this fragment's share of the upstream
                        // stage's shuffle output (already executed).
                        expected_input += stages
                            .iter()
                            .find(|s: &&StageStats| s.pipeline == *from_pipeline)
                            .map(|s| s.logical_bytes_written / u64::from(n.max(1)))
                            .unwrap_or(0);
                        let upstream = plan.pipeline(*from_pipeline);
                        let (partition_by, combine) = match &upstream.sink {
                            crate::plan::Sink::ShuffleWrite {
                                partition_by,
                                combine,
                            } => (partition_by.clone(), (*combine).max(1)),
                            crate::plan::Sink::Result => {
                                return Err(EngineError::Plan(format!(
                                    "pipeline {} reads from a result sink",
                                    pipeline.id
                                )))
                            }
                        };
                        InputAssignment::Shuffle {
                            from_pipeline: *from_pipeline,
                            upstream_fragments: fragments[from_pipeline],
                            partition_by,
                            combine,
                        }
                    }
                });
            }
            tasks.push(WorkerTask {
                query_id: request.query_id.clone(),
                pipeline: pipeline.clone(),
                fragment: frag,
                n_fragments: n,
                downstream_fragments: downstream,
                inputs: assignments,
                expected_input_bytes: expected_input,
                shuffle_read_fanin: request.config.task_policy.shuffle_read_fanin.max(1),
            });
        }

        let stage_span = tracer.span(&env.ctx, "coordinator", lane, "stage");
        stage_span
            .attr("query", request.query_id.as_str())
            .attr("pipeline", id)
            .attr("fragments", n)
            .attr("downstream_fragments", downstream);
        tracer
            .instant(&env.ctx, "coordinator", lane, "fragment-assignment")
            .attr("query", request.query_id.as_str())
            .attr("pipeline", id)
            .attr("fragments", n);
        let stage_started = env.ctx.now();
        let policy = &request.config.task_policy;
        let (reports, fleet) =
            invoke_fleet(env, platform, worker_fn, fanout_fn, tasks, policy, lane).await?;
        let duration = (env.ctx.now() - stage_started).as_secs_f64();

        let mut stat = StageStats {
            pipeline: id,
            fragments: n,
            downstream_fragments: downstream,
            duration_secs: duration,
            // Helper-tier retries (two-level dispatch only).
            task_retries: fleet.task_retries,
            failed_attempt_secs: fleet.failed_attempt_secs,
            ..StageStats::default()
        };
        for r in &reports {
            stat.cumulative_worker_secs += r.io_secs + r.cpu_secs;
            stat.io_secs_total += r.io_secs;
            stat.cpu_secs_total += r.cpu_secs;
            stat.logical_bytes_read += r.logical_bytes_read;
            stat.logical_bytes_written += r.logical_bytes_written;
            stat.storage_requests += r.storage_requests;
            stat.rows_out += r.rows_out;
            stat.cold_starts += r.cold_start as u32;
            stat.task_retries += r.invoke_attempts.saturating_sub(1 + r.speculative_invokes);
            stat.speculative_invokes += r.speculative_invokes;
            stat.failed_attempt_secs += r.failed_attempt_secs;
        }
        stage_span
            .attr("rows_out", stat.rows_out)
            .attr("cold_starts", stat.cold_starts)
            .attr("task_retries", stat.task_retries)
            .attr("speculative_invokes", stat.speculative_invokes);
        stage_span.end();
        cumulative += stat.cumulative_worker_secs;
        stages.push(stat);
    }

    // 4. Assemble the response, optionally inlining small results.
    let result_pipeline = plan.result_pipeline();
    let key = result_key(&request.query_id, 0);
    let rows = if request.config.include_rows && fragments[&result_pipeline.id] == 1 {
        let (blob, _) = client.get(&key, 64 * 1024, &opts).await?;
        let batches = skyrise_data::spf::read_all(&blob.bytes, None)?;
        let all = skyrise_data::Batch::concat(&batches);
        if all.num_rows() <= 10_000 {
            Some(crate::worker::batch_to_rows(&all))
        } else {
            None
        }
    } else {
        None
    };

    Ok(QueryResponse {
        query_id: request.query_id.clone(),
        result_key: key,
        runtime_secs: (env.ctx.now() - started).as_secs_f64(),
        cumulative_worker_secs: cumulative,
        stages,
        rows,
    })
}

/// Attempt accounting for one resilient task invocation.
#[derive(Debug, Clone, Copy, Default)]
struct TaskAttempts {
    /// Invocations launched (first + retries + speculative duplicates).
    launched: u32,
    /// Speculative duplicates among `launched`.
    speculative: u32,
    /// Wall seconds spent in attempts that ultimately failed.
    failed_secs: f64,
}

/// Dispatch-tier attempt statistics not attributable to a single worker
/// report (fan-out helper retries under two-level invocation).
#[derive(Debug, Clone, Copy, Default)]
struct FleetStats {
    task_retries: u32,
    failed_attempt_secs: f64,
}

/// Stamp a worker report with the dispatcher's attempt accounting.
fn stamp_attempts(report: &mut WorkerReport, acct: TaskAttempts) {
    report.invoke_attempts = acct.launched.max(1);
    report.speculative_invokes = acct.speculative;
    report.failed_attempt_secs = acct.failed_secs;
}

/// Invoke `name` with `payload` under `policy`: bounded retry with
/// jittered exponential backoff on transient failures (throttling, sandbox
/// crashes, injected transients), plus a speculative duplicate invoke once
/// the size-based straggler timeout elapses. The first completion wins;
/// abandoned duplicates keep running (and billing) to completion. Fails
/// with [`EngineError::TaskFailed`] after `policy.max_attempts` launches
/// all failed.
async fn invoke_resilient(
    ctx: &SimCtx,
    platform: &ComputePlatform,
    name: &str,
    payload: String,
    expected_bytes: u64,
    policy: &TaskPolicy,
    lane: u64,
    label: &str,
) -> Result<(String, TaskAttempts), EngineError> {
    let tracer = ctx.tracer();
    let metrics = ctx.metrics();
    let backoff = policy.backoff_policy();
    let timeout = policy.timeout_for(expected_bytes);
    let max_attempts = policy.max_attempts.max(1);
    let mut acct = TaskAttempts::default();
    let mut last_err = String::new();

    let spawn_attempt = || {
        let platform = platform.clone();
        let name = name.to_string();
        let payload = payload.clone();
        let started = ctx.now();
        ctx.spawn(async move { (started, platform.invoke(&name, payload).await) })
    };

    // The caller's dispatch loop already paid DISPATCH_LATENCY serially
    // for this first launch; relaunches pay it inside this task,
    // concurrently with other tasks.
    let mut outstanding = vec![spawn_attempt()];
    acct.launched = 1;
    let mut last_launch = ctx.now();

    loop {
        if outstanding.is_empty() {
            // Every launched attempt has failed: back off and relaunch,
            // or give up once the attempt budget is spent.
            if acct.launched >= max_attempts {
                metrics.counter("engine.task.exhausted").inc();
                return Err(EngineError::TaskFailed {
                    attempts: acct.launched,
                    last: last_err,
                });
            }
            ctx.sleep(backoff.backoff(ctx, acct.launched)).await;
            ctx.sleep(DISPATCH_LATENCY).await;
            metrics.counter("engine.task.retries").inc();
            tracer
                .instant(ctx, "coordinator", lane, "task-retry")
                .attr("task", label)
                .attr("attempt", acct.launched + 1);
            outstanding.push(spawn_attempt());
            acct.launched += 1;
            last_launch = ctx.now();
        }

        let can_speculate = policy.speculate && acct.launched < max_attempts;
        let completion = if can_speculate {
            let deadline = last_launch.saturating_add(timeout);
            match race(first_completed(&mut outstanding), ctx.sleep_until(deadline)).await {
                Either::Left(done) => Some(done),
                Either::Right(()) => None,
            }
        } else {
            Some(first_completed(&mut outstanding).await)
        };

        match completion {
            None => {
                // Straggler: trigger a speculative duplicate.
                metrics.counter("engine.task.speculative_invokes").inc();
                tracer
                    .instant(ctx, "coordinator", lane, "straggler-retrigger")
                    .attr("task", label)
                    .attr("outstanding", outstanding.len())
                    .attr("timeout_s", timeout.as_secs_f64());
                ctx.sleep(DISPATCH_LATENCY).await;
                outstanding.push(spawn_attempt());
                acct.launched += 1;
                acct.speculative += 1;
                last_launch = ctx.now();
            }
            Some((_, (_, Ok(result)))) => return Ok((result.output, acct)),
            Some((_, (started, Err(err)))) => match err {
                // Misconfiguration, not an infrastructure fault.
                FaasError::UnknownFunction(_) | FaasError::PayloadTooLarge(_) => {
                    return Err(EngineError::Worker(err.to_string()));
                }
                _ => {
                    metrics.counter("engine.task.attempt_failures").inc();
                    acct.failed_secs += (ctx.now() - started).as_secs_f64();
                    last_err = err.to_string();
                }
            },
        }
    }
}

/// Invoke a fleet of worker tasks, two-level beyond the threshold. Each
/// report comes back stamped with its attempt accounting; helper-tier
/// retries (not attributable to one worker) are returned in [`FleetStats`].
async fn invoke_fleet(
    env: &ExecEnv,
    platform: &ComputePlatform,
    worker_fn: &str,
    fanout_fn: &str,
    tasks: Vec<WorkerTask>,
    policy: &TaskPolicy,
    lane: u64,
) -> Result<(Vec<WorkerReport>, FleetStats), EngineError> {
    let mut fleet = FleetStats::default();
    if tasks.len() >= TWO_LEVEL_THRESHOLD {
        // Two-level: dispatch fan-out helpers, each invoking a group.
        // A helper failure would re-run its whole group, so helpers
        // retry but never speculate.
        let helper_policy = TaskPolicy {
            speculate: false,
            ..policy.clone()
        };
        let mut handles = Vec::new();
        for (g, group) in tasks.chunks(FANOUT_GROUP).enumerate() {
            env.ctx.sleep(DISPATCH_LATENCY).await;
            let payload = serde_json::to_string(&FanoutRequest {
                tasks: group.to_vec(),
                policy: policy.clone(),
            })?;
            let expected: u64 = group.iter().map(|t| t.expected_input_bytes).sum();
            let ctx = env.ctx.clone();
            let platform = platform.clone();
            let name = fanout_fn.to_string();
            let hp = helper_policy.clone();
            let label = format!("fanout/{g}");
            handles.push(env.ctx.spawn(async move {
                invoke_resilient(&ctx, &platform, &name, payload, expected, &hp, lane, &label).await
            }));
        }
        let mut reports = Vec::with_capacity(tasks.len());
        for h in skyrise_sim::join_all(handles).await {
            let (output, acct) = h?;
            fleet.task_retries += acct.launched.saturating_sub(1);
            fleet.failed_attempt_secs += acct.failed_secs;
            let group: Vec<WorkerReport> = serde_json::from_str(&output)?;
            reports.extend(group);
        }
        Ok((reports, fleet))
    } else {
        let mut handles = Vec::with_capacity(tasks.len());
        for task in &tasks {
            env.ctx.sleep(DISPATCH_LATENCY).await;
            let payload = serde_json::to_string(task)?;
            let expected = task.expected_input_bytes;
            let ctx = env.ctx.clone();
            let platform = platform.clone();
            let name = worker_fn.to_string();
            let tp = policy.clone();
            let label = format!("{}/p{}/f{}", task.query_id, task.pipeline.id, task.fragment);
            handles.push(env.ctx.spawn(async move {
                invoke_resilient(&ctx, &platform, &name, payload, expected, &tp, lane, &label).await
            }));
        }
        let mut reports = Vec::with_capacity(tasks.len());
        for h in skyrise_sim::join_all(handles).await {
            let (output, acct) = h?;
            let mut report: WorkerReport = serde_json::from_str(&output)?;
            stamp_attempts(&mut report, acct);
            reports.push(report);
        }
        Ok((reports, fleet))
    }
}

/// Run a fan-out helper: invoke each task in the group (under the
/// request's fault-tolerance policy) and gather the stamped reports.
pub async fn run_fanout(
    env: &ExecEnv,
    platform: &ComputePlatform,
    worker_fn: &str,
    request: &FanoutRequest,
) -> Result<Vec<WorkerReport>, EngineError> {
    let lane = env.ctx.tracer().next_lane();
    let mut handles = Vec::with_capacity(request.tasks.len());
    for task in &request.tasks {
        env.ctx.sleep(DISPATCH_LATENCY).await;
        let payload = serde_json::to_string(task)?;
        let expected = task.expected_input_bytes;
        let ctx = env.ctx.clone();
        let platform = platform.clone();
        let name = worker_fn.to_string();
        let tp = request.policy.clone();
        let label = format!("{}/p{}/f{}", task.query_id, task.pipeline.id, task.fragment);
        handles.push(env.ctx.spawn(async move {
            invoke_resilient(&ctx, &platform, &name, payload, expected, &tp, lane, &label).await
        }));
    }
    let mut reports = Vec::with_capacity(request.tasks.len());
    for h in skyrise_sim::join_all(handles).await {
        let (output, acct) = h?;
        let mut report: WorkerReport = serde_json::from_str(&output)?;
        stamp_attempts(&mut report, acct);
        reports.push(report);
    }
    Ok(reports)
}

/// `Rc` alias used by the driver to share platform handles into handlers.
pub type SharedPlatform = Rc<ComputePlatform>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = QueryConfig::default();
        assert_eq!(c.target_bytes_per_worker, 900 << 20);
        assert!(c.include_rows);
    }

    #[test]
    fn response_aggregates() {
        let r = QueryResponse {
            stages: vec![
                StageStats {
                    fragments: 284,
                    storage_requests: 100,
                    ..StageStats::default()
                },
                StageStats {
                    fragments: 1,
                    storage_requests: 5,
                    ..StageStats::default()
                },
            ],
            ..QueryResponse::default()
        };
        assert_eq!(r.total_requests(), 105);
        assert_eq!(r.peak_workers(), 284);
        assert!((r.average_workers() - 142.5).abs() < 1e-9);
        // Peak-to-average ratio, as in Table 6.
        let ratio = r.peak_workers() as f64 / r.average_workers();
        assert!((ratio - 1.993).abs() < 0.01);
    }

    #[test]
    fn request_json_round_trip() {
        let req = QueryRequest {
            query_id: "q6-run-1".into(),
            plan: PhysicalPlan {
                name: "q6".into(),
                pipelines: vec![],
            },
            config: QueryConfig::default(),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: QueryRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.query_id, "q6-run-1");
    }
}
