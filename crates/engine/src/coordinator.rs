//! The query coordinator function.
//!
//! "The coordinator fetches the metadata on the referenced pipeline input
//! datasets ... compiles a distributed query plan, deciding on the number
//! of fragments per pipeline for data-parallel execution ... then
//! schedules the pipelines stage-wise based on their dependencies."
//! (paper Sec. 3.2)
//!
//! Scheduling 256 or more workers, the coordinator switches to the
//! two-level invocation procedure: it invokes fan-out helper functions
//! that in turn invoke the workers.

use crate::catalog::{fetch_dataset, DatasetMeta};
use crate::error::EngineError;
use crate::plan::{InputSpec, PhysicalPlan};
use crate::worker::{result_key, InputAssignment, WorkerReport, WorkerTask};
use serde::{Deserialize, Serialize};
use skyrise_compute::{ComputePlatform, ExecEnv};
use skyrise_sim::SimDuration;
use skyrise_storage::{RequestOpts, RetryPolicy, RetryingClient, Storage};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Fragment threshold beyond which the two-level invocation kicks in.
pub const TWO_LEVEL_THRESHOLD: usize = 256;
/// Workers per fan-out helper.
pub const FANOUT_GROUP: usize = 64;
/// Coordinator-side cost of issuing one invocation request.
pub const DISPATCH_LATENCY: SimDuration = SimDuration::from_micros(1_500);

/// Per-query tunables carried in the request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Target logical input bytes per worker when sizing fragments.
    pub target_bytes_per_worker: u64,
    /// Hard ceiling on fragments per pipeline.
    pub max_parallelism: u32,
    /// Inline the result rows in the response when small.
    pub include_rows: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            target_bytes_per_worker: 900 << 20,
            max_parallelism: 1_000,
            include_rows: true,
        }
    }
}

/// The request the driver sends to the coordinator function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Unique id of this execution (also keys shuffle/result objects).
    pub query_id: String,
    /// The physical plan to execute.
    pub plan: PhysicalPlan,
    /// Per-query tunables.
    pub config: QueryConfig,
}

/// Per-stage execution statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Pipeline id this stage executed.
    pub pipeline: u32,
    /// Worker fragments scheduled.
    pub fragments: u32,
    /// Fragment count of the consuming pipeline (shuffle object fan-out).
    pub downstream_fragments: u32,
    /// Stage wall time (coordinator-observed).
    pub duration_secs: f64,
    /// Sum of worker wall times (the "cumulated time" of Table 6).
    pub cumulative_worker_secs: f64,
    /// Sum of worker I/O phases (fetch + I/O stack + decode).
    pub io_secs_total: f64,
    /// Sum of worker operator-execution phases.
    pub cpu_secs_total: f64,
    /// Logical bytes all workers read.
    pub logical_bytes_read: u64,
    /// Logical bytes all workers wrote.
    pub logical_bytes_written: u64,
    /// Storage requests issued (including retries).
    pub storage_requests: u64,
    /// Logical rows the stage emitted.
    pub rows_out: u64,
    /// Workers that cold-started.
    pub cold_starts: u32,
}

impl StageStats {
    /// Mean shuffle object size written by this stage (bytes), if it
    /// shuffled.
    pub fn mean_shuffle_object_bytes(&self) -> Option<f64> {
        let objects = self.fragments as u64 * self.downstream_fragments as u64;
        (self.logical_bytes_written > 0 && objects > 0)
            .then(|| self.logical_bytes_written as f64 / objects as f64)
    }
}

/// The coordinator's JSON response ("the location of the query result in
/// serverless storage, the query runtime and cost").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Echoed query id.
    pub query_id: String,
    /// Storage key of the result object.
    pub result_key: String,
    /// End-to-end query latency (coordinator wall time).
    pub runtime_secs: f64,
    /// Sum of all worker wall times across stages.
    pub cumulative_worker_secs: f64,
    /// Per-stage execution statistics.
    pub stages: Vec<StageStats>,
    /// Inlined result rows (when small and requested).
    pub rows: Option<Vec<Vec<skyrise_data::Value>>>,
}

impl QueryResponse {
    /// Total storage requests across stages.
    pub fn total_requests(&self) -> u64 {
        self.stages.iter().map(|s| s.storage_requests).sum()
    }

    /// Peak fragment count across stages.
    pub fn peak_workers(&self) -> u32 {
        self.stages.iter().map(|s| s.fragments).max().unwrap_or(0)
    }

    /// Mean fragment count across stages — with [`QueryResponse::peak_workers`]
    /// this yields Table 6's peak-to-average-node ratio.
    pub fn average_workers(&self) -> f64 {
        if self.stages.is_empty() {
            0.0
        } else {
            self.stages.iter().map(|s| s.fragments as f64).sum::<f64>() / self.stages.len() as f64
        }
    }
}

/// Payload of the fan-out helper: worker tasks serialised individually.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutRequest {
    /// Worker tasks this helper dispatches.
    pub tasks: Vec<WorkerTask>,
}

/// Run the coordinator logic inside its function environment.
pub async fn run_coordinator(
    env: &ExecEnv,
    scan_storage: &Storage,
    platform: &ComputePlatform,
    worker_fn: &str,
    fanout_fn: &str,
    request: &QueryRequest,
) -> Result<QueryResponse, EngineError> {
    let started = env.ctx.now();
    let opts = RequestOpts::from_nic(&env.nic);
    let plan = &request.plan;
    let tracer = env.ctx.tracer();
    let lane = tracer.next_lane();
    let query_span = tracer.span(&env.ctx, "coordinator", lane, "query");
    query_span
        .attr("query", request.query_id.as_str())
        .attr("plan", plan.name.as_str())
        .attr("pipelines", plan.pipelines.len());
    let client = RetryingClient::new(scan_storage.clone(), env.ctx.clone(), RetryPolicy::eager());

    // 1. Fetch metadata for every scanned dataset.
    let mut datasets: BTreeMap<String, DatasetMeta> = BTreeMap::new();
    for pipeline in &plan.pipelines {
        for input in &pipeline.inputs {
            if let InputSpec::Scan { dataset, .. } = input {
                if !datasets.contains_key(dataset) {
                    let meta = fetch_dataset(&client, dataset, &opts).await?;
                    datasets.insert(dataset.clone(), meta);
                }
            }
        }
    }

    // 2. Decide fragment counts.
    let mut fragments: BTreeMap<u32, u32> = BTreeMap::new();
    for &id in &plan.stages() {
        let pipeline = plan.pipeline(id);
        let mut n = if let Some(hint) = pipeline.fragments {
            hint
        } else {
            match pipeline.inputs.first() {
                Some(InputSpec::Scan { dataset, .. }) => {
                    let bytes = datasets[dataset].total_logical_bytes();
                    (bytes.div_ceil(request.config.target_bytes_per_worker.max(1)))
                        .clamp(1, request.config.max_parallelism as u64) as u32
                }
                Some(InputSpec::Shuffle { from_pipeline }) => fragments[from_pipeline],
                None => 1,
            }
        };
        // Never schedule more scan fragments than partitions: a worker
        // with an empty share would produce nothing to shuffle.
        if let Some(InputSpec::Scan { dataset, .. }) = pipeline.inputs.first() {
            n = n.min(datasets[dataset].partitions.len() as u32);
        }
        fragments.insert(id, n.clamp(1, request.config.max_parallelism));
    }

    // 3. Execute stages in dependency order.
    let mut stages = Vec::new();
    let mut cumulative = 0.0f64;
    for id in plan.stages() {
        let pipeline = plan.pipeline(id);
        let n = fragments[&id];
        // The consuming pipeline's fragment count sizes shuffle buckets.
        let downstream = plan
            .pipelines
            .iter()
            .find(|p| {
                p.inputs.iter().any(
                    |i| matches!(i, InputSpec::Shuffle { from_pipeline } if *from_pipeline == id),
                )
            })
            .map(|p| fragments[&p.id])
            .unwrap_or(1);

        // Build per-fragment tasks.
        let mut tasks = Vec::with_capacity(n as usize);
        for frag in 0..n {
            let mut assignments = Vec::with_capacity(pipeline.inputs.len());
            for (idx, input) in pipeline.inputs.iter().enumerate() {
                assignments.push(match input {
                    InputSpec::Scan { dataset, .. } => {
                        let meta = &datasets[dataset];
                        let partitions = if idx == 0 {
                            // Stream input: round-robin partitions.
                            meta.partitions
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| (*i as u32) % n == frag)
                                .map(|(_, p)| p.clone())
                                .collect()
                        } else {
                            // Build inputs are broadcast.
                            meta.partitions.clone()
                        };
                        InputAssignment::Scan { partitions }
                    }
                    InputSpec::Shuffle { from_pipeline } => {
                        let upstream = plan.pipeline(*from_pipeline);
                        let (partition_by, combine) = match &upstream.sink {
                            crate::plan::Sink::ShuffleWrite {
                                partition_by,
                                combine,
                            } => (partition_by.clone(), (*combine).max(1)),
                            crate::plan::Sink::Result => {
                                return Err(EngineError::Plan(format!(
                                    "pipeline {} reads from a result sink",
                                    pipeline.id
                                )))
                            }
                        };
                        InputAssignment::Shuffle {
                            from_pipeline: *from_pipeline,
                            upstream_fragments: fragments[from_pipeline],
                            partition_by,
                            combine,
                        }
                    }
                });
            }
            tasks.push(WorkerTask {
                query_id: request.query_id.clone(),
                pipeline: pipeline.clone(),
                fragment: frag,
                n_fragments: n,
                downstream_fragments: downstream,
                inputs: assignments,
            });
        }

        let stage_span = tracer.span(&env.ctx, "coordinator", lane, "stage");
        stage_span
            .attr("query", request.query_id.as_str())
            .attr("pipeline", id)
            .attr("fragments", n)
            .attr("downstream_fragments", downstream);
        tracer
            .instant(&env.ctx, "coordinator", lane, "fragment-assignment")
            .attr("query", request.query_id.as_str())
            .attr("pipeline", id)
            .attr("fragments", n);
        let stage_started = env.ctx.now();
        let reports = invoke_fleet(env, platform, worker_fn, fanout_fn, tasks).await?;
        let duration = (env.ctx.now() - stage_started).as_secs_f64();

        let mut stat = StageStats {
            pipeline: id,
            fragments: n,
            downstream_fragments: downstream,
            duration_secs: duration,
            ..StageStats::default()
        };
        for r in &reports {
            stat.cumulative_worker_secs += r.io_secs + r.cpu_secs;
            stat.io_secs_total += r.io_secs;
            stat.cpu_secs_total += r.cpu_secs;
            stat.logical_bytes_read += r.logical_bytes_read;
            stat.logical_bytes_written += r.logical_bytes_written;
            stat.storage_requests += r.storage_requests;
            stat.rows_out += r.rows_out;
            stat.cold_starts += r.cold_start as u32;
        }
        stage_span
            .attr("rows_out", stat.rows_out)
            .attr("cold_starts", stat.cold_starts);
        stage_span.end();
        cumulative += stat.cumulative_worker_secs;
        stages.push(stat);
    }

    // 4. Assemble the response, optionally inlining small results.
    let result_pipeline = plan.result_pipeline();
    let key = result_key(&request.query_id, 0);
    let rows = if request.config.include_rows && fragments[&result_pipeline.id] == 1 {
        let (blob, _) = client.get(&key, 64 * 1024, &opts).await?;
        let batches = skyrise_data::spf::read_all(&blob.bytes, None)?;
        let all = skyrise_data::Batch::concat(&batches);
        if all.num_rows() <= 10_000 {
            Some(crate::worker::batch_to_rows(&all))
        } else {
            None
        }
    } else {
        None
    };

    Ok(QueryResponse {
        query_id: request.query_id.clone(),
        result_key: key,
        runtime_secs: (env.ctx.now() - started).as_secs_f64(),
        cumulative_worker_secs: cumulative,
        stages,
        rows,
    })
}

/// Invoke a fleet of worker tasks, two-level beyond the threshold.
async fn invoke_fleet(
    env: &ExecEnv,
    platform: &ComputePlatform,
    worker_fn: &str,
    fanout_fn: &str,
    tasks: Vec<WorkerTask>,
) -> Result<Vec<WorkerReport>, EngineError> {
    if tasks.len() >= TWO_LEVEL_THRESHOLD {
        // Two-level: dispatch fan-out helpers, each invoking a group.
        let mut handles = Vec::new();
        for group in tasks.chunks(FANOUT_GROUP) {
            env.ctx.sleep(DISPATCH_LATENCY).await;
            let payload = serde_json::to_string(&FanoutRequest {
                tasks: group.to_vec(),
            })?;
            let platform = platform.clone();
            let name = fanout_fn.to_string();
            handles.push(
                env.ctx
                    .spawn(async move { platform.invoke(&name, payload).await }),
            );
        }
        let mut reports = Vec::with_capacity(tasks.len());
        for h in skyrise_sim::join_all(handles).await {
            let result = h.map_err(|e| EngineError::Worker(e.to_string()))?;
            let group: Vec<WorkerReport> = serde_json::from_str(&result.output)?;
            reports.extend(group);
        }
        Ok(reports)
    } else {
        let mut handles = Vec::with_capacity(tasks.len());
        for task in &tasks {
            env.ctx.sleep(DISPATCH_LATENCY).await;
            let payload = serde_json::to_string(task)?;
            let platform = platform.clone();
            let name = worker_fn.to_string();
            handles.push(
                env.ctx
                    .spawn(async move { platform.invoke(&name, payload).await }),
            );
        }
        let mut reports = Vec::with_capacity(tasks.len());
        for h in skyrise_sim::join_all(handles).await {
            let result = h.map_err(|e| EngineError::Worker(e.to_string()))?;
            let report: WorkerReport = serde_json::from_str(&result.output)?;
            reports.push(report);
        }
        Ok(reports)
    }
}

/// Run a fan-out helper: invoke each task in the group and gather reports.
pub async fn run_fanout(
    env: &ExecEnv,
    platform: &ComputePlatform,
    worker_fn: &str,
    request: &FanoutRequest,
) -> Result<Vec<WorkerReport>, EngineError> {
    let mut handles = Vec::with_capacity(request.tasks.len());
    for task in &request.tasks {
        env.ctx.sleep(DISPATCH_LATENCY).await;
        let payload = serde_json::to_string(task)?;
        let platform = platform.clone();
        let name = worker_fn.to_string();
        handles.push(
            env.ctx
                .spawn(async move { platform.invoke(&name, payload).await }),
        );
    }
    let mut reports = Vec::with_capacity(request.tasks.len());
    for h in skyrise_sim::join_all(handles).await {
        let result = h.map_err(|e| EngineError::Worker(e.to_string()))?;
        reports.push(serde_json::from_str(&result.output)?);
    }
    Ok(reports)
}

/// `Rc` alias used by the driver to share platform handles into handlers.
pub type SharedPlatform = Rc<ComputePlatform>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = QueryConfig::default();
        assert_eq!(c.target_bytes_per_worker, 900 << 20);
        assert!(c.include_rows);
    }

    #[test]
    fn response_aggregates() {
        let r = QueryResponse {
            stages: vec![
                StageStats {
                    fragments: 284,
                    storage_requests: 100,
                    ..StageStats::default()
                },
                StageStats {
                    fragments: 1,
                    storage_requests: 5,
                    ..StageStats::default()
                },
            ],
            ..QueryResponse::default()
        };
        assert_eq!(r.total_requests(), 105);
        assert_eq!(r.peak_workers(), 284);
        assert!((r.average_workers() - 142.5).abs() < 1e-9);
        // Peak-to-average ratio, as in Table 6.
        let ratio = r.peak_workers() as f64 / r.average_workers();
        assert!((ratio - 1.993).abs() < 0.01);
    }

    #[test]
    fn request_json_round_trip() {
        let req = QueryRequest {
            query_id: "q6-run-1".into(),
            plan: PhysicalPlan {
                name: "q6".into(),
                pipelines: vec![],
            },
            config: QueryConfig::default(),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: QueryRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.query_id, "q6-run-1");
    }
}
