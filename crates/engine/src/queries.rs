//! Plan builders for the paper's query suite (Sec. 3.1): TPC-H Q1, Q6,
//! Q12 and TPCx-BB Q3. "These queries are I/O-heavy and thus lend
//! themselves well to evaluate cloud resources. ... Q1 and Q6 select,
//! project, and aggregate data. Q3 and Q12 are join queries with a broad
//! set of operators, including user-defined functions."
//!
//! Dataset names follow the loader convention: `h_lineitem`, `h_orders`,
//! `bb_clickstreams`, `bb_item`.

use crate::expr::{ArithOp, CmpOp, Expr, NamedExpr};
use crate::plan::{AggExpr, AggFunc, AggMode, InputSpec, Op, PhysicalPlan, Pipeline, Sink};
use skyrise_data::date;
use skyrise_data::Value;

/// Dataset name of the TPC-H LINEITEM table.
pub const H_LINEITEM: &str = "h_lineitem";
/// Dataset name of the TPC-H ORDERS table.
pub const H_ORDERS: &str = "h_orders";
/// Dataset name of the TPCx-BB WEB_CLICKSTREAMS table.
pub const BB_CLICKSTREAMS: &str = "bb_clickstreams";
/// Dataset name of the TPCx-BB ITEM table.
pub const BB_ITEM: &str = "bb_item";

fn lit_date(y: i64, m: u32, d: u32) -> Expr {
    Expr::lit_i64(date::from_ymd(y, m, d))
}

/// TPC-H Q1: scan-heavy aggregation over LINEITEM.
pub fn q1() -> PhysicalPlan {
    let cutoff = Expr::lit_i64(date::from_ymd(1998, 12, 1) - 90);
    let predicate = Expr::col("l_shipdate").cmp(CmpOp::Le, cutoff);
    let one_minus_disc = Expr::lit_f64(1.0).arith(ArithOp::Sub, Expr::col("l_discount"));
    let disc_price = Expr::col("l_extendedprice").arith(ArithOp::Mul, one_minus_disc.clone());
    let charge = disc_price.clone().arith(
        ArithOp::Mul,
        Expr::lit_f64(1.0).arith(ArithOp::Add, Expr::col("l_tax")),
    );
    let aggregates = vec![
        AggExpr::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty"),
        AggExpr::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_base_price"),
        AggExpr::new(AggFunc::Sum, Expr::col("disc_price"), "sum_disc_price"),
        AggExpr::new(AggFunc::Sum, Expr::col("charge"), "sum_charge"),
        AggExpr::new(AggFunc::Avg, Expr::col("l_quantity"), "avg_qty"),
        AggExpr::new(AggFunc::Avg, Expr::col("l_extendedprice"), "avg_price"),
        AggExpr::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
        AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "count_order"),
    ];
    PhysicalPlan {
        name: "tpch-q1".into(),
        pipelines: vec![
            Pipeline {
                id: 0,
                inputs: vec![InputSpec::Scan {
                    dataset: H_LINEITEM.into(),
                    projection: vec![
                        "l_returnflag".into(),
                        "l_linestatus".into(),
                        "l_quantity".into(),
                        "l_extendedprice".into(),
                        "l_discount".into(),
                        "l_tax".into(),
                        "l_shipdate".into(),
                    ],
                    predicate: Some(predicate),
                }],
                ops: vec![
                    Op::Project {
                        exprs: vec![
                            NamedExpr::new("l_returnflag", Expr::col("l_returnflag")),
                            NamedExpr::new("l_linestatus", Expr::col("l_linestatus")),
                            NamedExpr::new("l_quantity", Expr::col("l_quantity")),
                            NamedExpr::new("l_extendedprice", Expr::col("l_extendedprice")),
                            NamedExpr::new("l_discount", Expr::col("l_discount")),
                            NamedExpr::new("disc_price", disc_price),
                            NamedExpr::new("charge", charge),
                        ],
                    },
                    Op::HashAggregate {
                        group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                        aggregates: aggregates.clone(),
                        mode: AggMode::Partial,
                    },
                ],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 1,
                inputs: vec![InputSpec::Shuffle { from_pipeline: 0 }],
                ops: vec![
                    Op::HashAggregate {
                        group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                        aggregates,
                        mode: AggMode::Final,
                    },
                    Op::Sort {
                        by: vec![("l_returnflag".into(), true), ("l_linestatus".into(), true)],
                    },
                ],
                sink: Sink::Result,
                fragments: Some(1),
            },
        ],
    }
}

/// TPC-H Q6: the forecasting revenue change query (scan + filter + global
/// aggregate). The paper's network-burst experiment workhorse (Fig. 14).
pub fn q6() -> PhysicalPlan {
    let predicate = Expr::And(vec![
        Expr::col("l_shipdate").cmp(CmpOp::Ge, lit_date(1994, 1, 1)),
        Expr::col("l_shipdate").cmp(CmpOp::Lt, lit_date(1995, 1, 1)),
        Expr::col("l_discount").cmp(CmpOp::Ge, Expr::lit_f64(0.05)),
        Expr::col("l_discount").cmp(CmpOp::Le, Expr::lit_f64(0.07)),
        Expr::col("l_quantity").cmp(CmpOp::Lt, Expr::lit_f64(24.0)),
    ]);
    let revenue = Expr::col("l_extendedprice").arith(ArithOp::Mul, Expr::col("l_discount"));
    let aggregates = vec![AggExpr::new(AggFunc::Sum, Expr::col("revenue"), "revenue")];
    PhysicalPlan {
        name: "tpch-q6".into(),
        pipelines: vec![
            Pipeline {
                id: 0,
                inputs: vec![InputSpec::Scan {
                    dataset: H_LINEITEM.into(),
                    projection: vec![
                        "l_shipdate".into(),
                        "l_discount".into(),
                        "l_quantity".into(),
                        "l_extendedprice".into(),
                    ],
                    predicate: Some(predicate),
                }],
                ops: vec![
                    Op::Project {
                        exprs: vec![NamedExpr::new("revenue", revenue)],
                    },
                    Op::HashAggregate {
                        group_by: vec![],
                        aggregates: aggregates.clone(),
                        mode: AggMode::Partial,
                    },
                ],
                sink: Sink::ShuffleWrite {
                    partition_by: vec![],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 1,
                inputs: vec![InputSpec::Shuffle { from_pipeline: 0 }],
                ops: vec![Op::HashAggregate {
                    group_by: vec![],
                    aggregates,
                    mode: AggMode::Final,
                }],
                sink: Sink::Result,
                fragments: Some(1),
            },
        ],
    }
}

/// TPC-H Q12: shipping-modes-and-order-priority join (the paper's shuffle
/// workhorse, Fig. 15). Uses the `is_high_priority` UDF.
pub fn q12() -> PhysicalPlan {
    let lineitem_pred = Expr::And(vec![
        Expr::InList {
            expr: Box::new(Expr::col("l_shipmode")),
            list: vec![Value::Utf8("MAIL".into()), Value::Utf8("SHIP".into())],
        },
        Expr::col("l_commitdate").cmp(CmpOp::Lt, Expr::col("l_receiptdate")),
        Expr::col("l_shipdate").cmp(CmpOp::Lt, Expr::col("l_commitdate")),
        Expr::col("l_receiptdate").cmp(CmpOp::Ge, lit_date(1994, 1, 1)),
        Expr::col("l_receiptdate").cmp(CmpOp::Lt, lit_date(1995, 1, 1)),
    ]);
    let high = Expr::Udf {
        name: "is_high_priority".into(),
        args: vec![Expr::col("o_orderpriority")],
    };
    let low = Expr::lit_i64(1).arith(ArithOp::Sub, high.clone());
    let aggregates = vec![
        AggExpr::new(AggFunc::Sum, Expr::col("high"), "high_line_count"),
        AggExpr::new(AggFunc::Sum, Expr::col("low"), "low_line_count"),
    ];
    PhysicalPlan {
        name: "tpch-q12".into(),
        pipelines: vec![
            Pipeline {
                id: 0,
                inputs: vec![InputSpec::Scan {
                    dataset: H_ORDERS.into(),
                    projection: vec!["o_orderkey".into(), "o_orderpriority".into()],
                    predicate: None,
                }],
                ops: vec![],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["o_orderkey".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 1,
                inputs: vec![InputSpec::Scan {
                    dataset: H_LINEITEM.into(),
                    projection: vec![
                        "l_orderkey".into(),
                        "l_shipmode".into(),
                        "l_commitdate".into(),
                        "l_receiptdate".into(),
                        "l_shipdate".into(),
                    ],
                    predicate: Some(lineitem_pred),
                }],
                ops: vec![],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["l_orderkey".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 2,
                inputs: vec![
                    InputSpec::Shuffle { from_pipeline: 1 },
                    InputSpec::Shuffle { from_pipeline: 0 },
                ],
                ops: vec![
                    Op::HashJoin {
                        build_input: 1,
                        build_key: "o_orderkey".into(),
                        probe_key: "l_orderkey".into(),
                        build_columns: vec!["o_orderpriority".into()],
                    },
                    Op::Project {
                        exprs: vec![
                            NamedExpr::new("l_shipmode", Expr::col("l_shipmode")),
                            NamedExpr::new("high", high),
                            NamedExpr::new("low", low),
                        ],
                    },
                    Op::HashAggregate {
                        group_by: vec!["l_shipmode".into()],
                        aggregates: aggregates.clone(),
                        mode: AggMode::Partial,
                    },
                ],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["l_shipmode".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 3,
                inputs: vec![InputSpec::Shuffle { from_pipeline: 2 }],
                ops: vec![
                    Op::HashAggregate {
                        group_by: vec!["l_shipmode".into()],
                        aggregates,
                        mode: AggMode::Final,
                    },
                    Op::Sort {
                        by: vec![("l_shipmode".into(), true)],
                    },
                ],
                sink: Sink::Result,
                fragments: Some(1),
            },
        ],
    }
}

/// TPCx-BB Q3 (simplified per DESIGN.md): for purchases of items in
/// `category`, count views of category items within the preceding
/// `window` clicks of the same user, then report the top `top_n` items.
/// An I/O-bound MapReduce-style job: shuffle clicks by user, sessionise,
/// aggregate by item.
pub fn bb_q3(category: &str, window: usize, top_n: u64) -> PhysicalPlan {
    let aggregates = vec![AggExpr::new(AggFunc::Sum, Expr::col("views"), "views")];
    PhysicalPlan {
        name: "tpcxbb-q3".into(),
        pipelines: vec![
            Pipeline {
                id: 0,
                inputs: vec![InputSpec::Scan {
                    dataset: BB_CLICKSTREAMS.into(),
                    projection: vec![
                        "wcs_user_sk".into(),
                        "wcs_click_date_sk".into(),
                        "wcs_click_time_sk".into(),
                        "wcs_item_sk".into(),
                        "wcs_sales_sk".into(),
                    ],
                    predicate: None,
                }],
                ops: vec![],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["wcs_user_sk".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 1,
                inputs: vec![
                    InputSpec::Shuffle { from_pipeline: 0 },
                    InputSpec::Scan {
                        dataset: BB_ITEM.into(),
                        projection: vec!["i_item_sk".into(), "i_category".into()],
                        predicate: Some(
                            Expr::col("i_category").cmp(CmpOp::Eq, Expr::lit_str(category)),
                        ),
                    },
                ],
                ops: vec![
                    Op::SessionizeQ3 {
                        category_input: 1,
                        window,
                    },
                    Op::HashAggregate {
                        group_by: vec!["item_sk".into()],
                        aggregates: aggregates.clone(),
                        mode: AggMode::Partial,
                    },
                ],
                sink: Sink::ShuffleWrite {
                    partition_by: vec!["item_sk".into()],
                    combine: 1,
                },
                fragments: None,
            },
            Pipeline {
                id: 2,
                inputs: vec![InputSpec::Shuffle { from_pipeline: 1 }],
                ops: vec![
                    Op::HashAggregate {
                        group_by: vec!["item_sk".into()],
                        aggregates,
                        mode: AggMode::Final,
                    },
                    Op::Sort {
                        by: vec![("views".into(), false), ("item_sk".into(), true)],
                    },
                    Op::Limit { n: top_n },
                ],
                sink: Sink::Result,
                fragments: Some(1),
            },
        ],
    }
}

/// The full suite in the paper's order.
pub fn suite() -> Vec<PhysicalPlan> {
    vec![q1(), q6(), q12(), bb_q3("Electronics", 10, 30)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_plans_are_well_formed() {
        for plan in suite() {
            // Stage order exists and ends with the result pipeline.
            let stages = plan.stages();
            assert_eq!(stages.len(), plan.pipelines.len());
            let result = plan.result_pipeline();
            assert_eq!(stages.last(), Some(&result.id));
            assert_eq!(result.fragments, Some(1));
        }
    }

    #[test]
    fn q1_touches_only_lineitem() {
        let plan = q1();
        for p in &plan.pipelines {
            for i in &p.inputs {
                if let InputSpec::Scan { dataset, .. } = i {
                    assert_eq!(dataset, H_LINEITEM);
                }
            }
        }
    }

    #[test]
    fn q12_is_a_two_table_join() {
        let plan = q12();
        let scans: Vec<&str> = plan
            .pipelines
            .iter()
            .flat_map(|p| &p.inputs)
            .filter_map(|i| match i {
                InputSpec::Scan { dataset, .. } => Some(dataset.as_str()),
                _ => None,
            })
            .collect();
        assert!(scans.contains(&H_ORDERS) && scans.contains(&H_LINEITEM));
        let has_join = plan
            .pipelines
            .iter()
            .flat_map(|p| &p.ops)
            .any(|o| matches!(o, Op::HashJoin { .. }));
        assert!(has_join);
        let uses_udf = plan.to_json().contains("is_high_priority");
        assert!(uses_udf, "Q12 exercises the UDF path");
    }

    #[test]
    fn plans_serialize_roundtrip() {
        for plan in suite() {
            let json = plan.to_json();
            let back = PhysicalPlan::from_json(&json).unwrap();
            assert_eq!(plan, back);
        }
    }
}
