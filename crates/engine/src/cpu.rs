//! The compute-time model.
//!
//! Operators execute *for real* on the (small) carried payloads, but the
//! simulated clock must reflect SF1000-scale work. Each worker therefore
//! charges virtual CPU time per **logical** row/byte using calibrated
//! per-operator constants, divided by its vCPU share. The constants are
//! set so a 4-vCPU worker's end-to-end scan throughput lands where the
//! paper's Fig. 14 puts it: the I/O stack slightly below the network
//! model, the scan operator markedly below that (decompression +
//! deserialisation), and the full query slightly below the scan.

use crate::plan::Op;
use skyrise_sim::SimDuration;

/// Per-request S3 handling overhead in the worker's I/O stack (seconds).
pub const IO_STACK_PER_REQUEST: f64 = 0.0015;
/// I/O-stack per-byte cost (buffering, checksum): ~12 GB/s per vCPU.
pub const IO_STACK_NS_PER_BYTE: f64 = 0.085;
/// Decompression + deserialisation: ~0.5 GB/s per vCPU (2 GB/s on a
/// 4-vCPU worker — comparable to single-core ZSTD + Parquet decode).
pub const DECODE_NS_PER_BYTE: f64 = 2.0;

/// Per-row operator costs in nanoseconds (single vCPU).
pub fn op_ns_per_row(op: &Op) -> f64 {
    match op {
        Op::Filter { .. } => 4.0,
        Op::Project { exprs } => 3.0 * exprs.len().max(1) as f64,
        Op::HashAggregate { aggregates, .. } => 18.0 + 6.0 * aggregates.len() as f64,
        Op::HashJoin { .. } => 28.0,
        Op::Sort { .. } => 95.0,
        Op::Limit { .. } => 0.5,
        Op::SessionizeQ3 { .. } => 60.0,
        Op::Barrier { .. } => 0.0,
    }
}

/// CPU time to push `logical_rows` through an operator chain on `vcpus`.
pub fn chain_cost(ops: &[Op], logical_rows: f64, vcpus: f64) -> SimDuration {
    let ns_per_row: f64 = ops.iter().map(op_ns_per_row).sum();
    SimDuration::from_secs_f64(ns_per_row * logical_rows / 1e9 / vcpus.max(0.25))
}

/// CPU time a single operator contributes to [`chain_cost`] — used to slice
/// the chain charge into per-operator trace spans.
pub fn op_cost(op: &Op, logical_rows: f64, vcpus: f64) -> SimDuration {
    SimDuration::from_secs_f64(op_ns_per_row(op) * logical_rows / 1e9 / vcpus.max(0.25))
}

/// CPU time for the I/O stack to ingest `logical_bytes` over `requests`.
pub fn io_stack_cost(logical_bytes: f64, requests: u64, vcpus: f64) -> SimDuration {
    let secs = IO_STACK_NS_PER_BYTE * logical_bytes / 1e9 / vcpus.max(0.25)
        + IO_STACK_PER_REQUEST * requests as f64 / vcpus.max(0.25);
    SimDuration::from_secs_f64(secs)
}

/// CPU time to decode `logical_bytes` of columnar data.
pub fn decode_cost(logical_bytes: f64, vcpus: f64) -> SimDuration {
    SimDuration::from_secs_f64(DECODE_NS_PER_BYTE * logical_bytes / 1e9 / vcpus.max(0.25))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{AggExpr, AggFunc, AggMode};

    #[test]
    fn chain_cost_scales_with_rows_and_vcpus() {
        let ops = vec![Op::Filter {
            predicate: Expr::lit_i64(1).cmp(crate::expr::CmpOp::Eq, Expr::lit_i64(1)),
        }];
        let one = chain_cost(&ops, 1e6, 1.0);
        let four = chain_cost(&ops, 1e6, 4.0);
        assert!((one.as_secs_f64() / four.as_secs_f64() - 4.0).abs() < 1e-9);
        let double = chain_cost(&ops, 2e6, 1.0);
        assert!((double.as_secs_f64() / one.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_cost_grows_with_agg_count() {
        let mk = |n: usize| Op::HashAggregate {
            group_by: vec![],
            aggregates: (0..n)
                .map(|i| AggExpr::new(AggFunc::Sum, Expr::lit_f64(0.0), &format!("a{i}")))
                .collect(),
            mode: AggMode::Single,
        };
        assert!(op_ns_per_row(&mk(8)) > op_ns_per_row(&mk(1)));
    }

    #[test]
    fn fig14_regime_decode_dominates_io_stack() {
        // Per 4-vCPU worker: decode throughput must sit clearly below the
        // Lambda network burst (1.29 GB/s) so the scan curve drops below
        // the I/O curve in Fig. 14.
        let gb = 1e9;
        let decode_bps = gb / decode_cost(gb, 4.0).as_secs_f64();
        let io_bps = gb / io_stack_cost(gb, 16, 4.0).as_secs_f64();
        assert!(decode_bps < io_bps);
        assert!(
            decode_bps > 1.29e9,
            "decode must not be the hard bottleneck"
        );
        assert!(io_bps > 2.0 * 1.29e9, "I/O stack close to network-bound");
    }
}
