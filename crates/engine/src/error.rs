//! Engine error type.

use crate::expr::ExprError;
use skyrise_data::spf::SpfError;
use skyrise_storage::StorageError;
use std::fmt;

/// Anything that can go wrong while planning or executing a query.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// Malformed or inconsistent plan.
    Plan(String),
    /// Expression evaluation failed.
    Expr(ExprError),
    /// Storage service error (post retries).
    Storage(StorageError),
    /// SPF decoding failed.
    Format(SpfError),
    /// JSON (de)serialisation failed.
    Json(String),
    /// A worker invocation failed.
    Worker(String),
    /// A task exhausted its invocation attempts (retries + speculation).
    TaskFailed {
        /// Attempts launched, including speculative duplicates.
        attempts: u32,
        /// The last attempt's error.
        last: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Expr(e) => write!(f, "expression error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Format(e) => write!(f, "format error: {e}"),
            EngineError::Json(m) => write!(f, "json error: {m}"),
            EngineError::Worker(m) => write!(f, "worker error: {m}"),
            EngineError::TaskFailed { attempts, last } => {
                write!(f, "task failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<SpfError> for EngineError {
    fn from(e: SpfError) -> Self {
        EngineError::Format(e)
    }
}

impl From<serde_json::Error> for EngineError {
    fn from(e: serde_json::Error) -> Self {
        EngineError::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = StorageError::Throttled.into();
        assert!(e.to_string().contains("SlowDown"));
        let e: EngineError = SpfError::NotAnSpfFile.into();
        assert!(e.to_string().contains("SPF"));
        let e = EngineError::Plan("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
