//! Vectorised physical operators.
//!
//! A worker materialises its pipeline inputs and pushes input 0 through
//! the operator chain batch-by-batch; blocking operators (aggregation,
//! sort, join build, sessionisation) gather state across batches.

use crate::error::EngineError;
use crate::expr::{evaluate, evaluate_mask, UdfRegistry};
use crate::plan::{AggExpr, AggFunc, AggMode, Op};
use skyrise_data::keys::{self, bits_to_f64, total_order_bits};
use skyrise_data::{Batch, Column, DataType, Field, Schema, Value};
use skyrise_sim::{fnv1a64_fold, FNV64_OFFSET};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Target batch size of the vectorised executor.
pub const BATCH_SIZE: usize = 4096;

/// A hashable, totally-ordered scalar usable as a group/join/sort key.
/// Floats participate via `f64::total_cmp` (exact-bits equality).
///
/// This is the engine's *legacy* key representation: the production
/// kernels run on `skyrise_data::KeyBuffer`'s normalized fixed-width
/// encoding (see [`crate::bind`]); `ScalarKey` is kept as the oracle the
/// property tests compare against.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarKey {
    /// Integer key.
    I64(i64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
    /// Total-order key over the float's bits (see
    /// [`skyrise_data::total_order_bits`]).
    F64(u64),
}

impl ScalarKey {
    /// From a value (never fails; floats key by total order).
    pub fn try_from_value(v: &Value) -> Result<ScalarKey, EngineError> {
        Ok(match v {
            Value::Int64(x) => ScalarKey::I64(*x),
            Value::Utf8(s) => ScalarKey::Str(s.clone()),
            Value::Bool(b) => ScalarKey::Bool(*b),
            Value::Float64(x) => ScalarKey::F64(total_order_bits(*x)),
        })
    }

    /// Key of one row of a column, without going through a `Value`.
    pub fn from_column(col: &Column, row: usize) -> ScalarKey {
        match col {
            Column::Int64(v) => ScalarKey::I64(v[row]),
            Column::Utf8(v) => ScalarKey::Str(v[row].clone()),
            Column::Bool(v) => ScalarKey::Bool(v[row]),
            Column::Float64(v) => ScalarKey::F64(total_order_bits(v[row])),
        }
    }

    /// Back to a value.
    pub fn into_value(self) -> Value {
        match self {
            ScalarKey::I64(x) => Value::Int64(x),
            ScalarKey::Str(s) => Value::Utf8(s),
            ScalarKey::Bool(b) => Value::Bool(b),
            ScalarKey::F64(bits) => Value::Float64(bits_to_f64(bits)),
        }
    }

    /// Stable hash for shuffle partitioning — must agree between writer
    /// and reader fragments. Mirrors the batched `mix64` lane hash in
    /// `skyrise_data::keys` (one finalizer over the normalized key word,
    /// type-tagged); strings FNV their bytes first, which is the only
    /// remaining per-row use of FNV-1a (it stays the sanitizer-digest
    /// hash).
    pub fn partition_hash(&self) -> u64 {
        match self {
            ScalarKey::I64(x) => keys::hash_key_i64(*x),
            ScalarKey::Str(s) => keys::hash_key_utf8(fnv1a64_fold(FNV64_OFFSET, s.as_bytes())),
            ScalarKey::Bool(b) => keys::hash_key_bool(*b),
            ScalarKey::F64(bits) => keys::hash_key_f64_bits(*bits),
        }
    }
}

#[cfg(test)]
mod key_tests {
    use super::*;

    #[test]
    fn float_keys_order_totally() {
        let mut keys: Vec<ScalarKey> = [-5.0, f64::NEG_INFINITY, 0.0, 3.5, -0.1, f64::INFINITY]
            .iter()
            .map(|&x| ScalarKey::try_from_value(&Value::Float64(x)).unwrap())
            .collect();
        keys.sort();
        let back: Vec<f64> = keys
            .into_iter()
            .map(|k| match k.into_value() {
                Value::Float64(x) => x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            back,
            vec![f64::NEG_INFINITY, -5.0, -0.1, 0.0, 3.5, f64::INFINITY]
        );
    }

    #[test]
    fn float_key_round_trips_bits() {
        for x in [-1.25e300, -0.0, 0.0, 1.0, 6.02e23] {
            let k = ScalarKey::try_from_value(&Value::Float64(x)).unwrap();
            let Value::Float64(y) = k.into_value() else {
                unreachable!()
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Pin `partition_hash` to the batched mix64 lane hash in
    /// `skyrise_data::keys`: the scalar oracle and the vectorised
    /// partitioner must agree bit-for-bit, and strings must keep feeding
    /// the workspace FNV-1a digest through the same finalizer.
    #[test]
    fn partition_hash_matches_batched_mix64() {
        use skyrise_data::keys::{
            hash_key_bool, hash_key_f64_bits, hash_key_i64, hash_key_utf8, mix64, norm_i64,
            HASH_TAG_BOOL, HASH_TAG_I64, HASH_TAG_UTF8,
        };
        use skyrise_sim::fnv1a64;
        assert_eq!(ScalarKey::I64(42).partition_hash(), hash_key_i64(42));
        assert_eq!(
            ScalarKey::I64(42).partition_hash(),
            mix64(norm_i64(42) ^ HASH_TAG_I64)
        );
        assert_eq!(
            ScalarKey::Str("foobar".into()).partition_hash(),
            hash_key_utf8(fnv1a64(b"foobar"))
        );
        assert_eq!(
            ScalarKey::Str("foobar".into()).partition_hash(),
            mix64(fnv1a64(b"foobar") ^ HASH_TAG_UTF8)
        );
        assert_eq!(ScalarKey::Bool(true).partition_hash(), hash_key_bool(true));
        assert_eq!(
            ScalarKey::Bool(false).partition_hash(),
            mix64(HASH_TAG_BOOL)
        );
        let bits = total_order_bits(1.5);
        assert_eq!(
            ScalarKey::F64(bits).partition_hash(),
            hash_key_f64_bits(bits)
        );
    }
}

/// Extract key columns of a batch as per-row composite keys.
fn row_keys(batch: &Batch, columns: &[String]) -> Result<Vec<Vec<ScalarKey>>, EngineError> {
    let cols: Vec<&Column> = columns
        .iter()
        .map(|c| {
            batch
                .schema
                .index_of(c)
                .map(|i| &batch.columns[i])
                .ok_or_else(|| EngineError::Plan(format!("unknown key column {c}")))
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::with_capacity(batch.num_rows());
    for row in 0..batch.num_rows() {
        let key = cols
            .iter()
            .map(|c| ScalarKey::from_column(c, row))
            .collect::<Vec<_>>();
        out.push(key);
    }
    Ok(out)
}

/// Execution statistics of one operator chain run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpChainStats {
    /// Rows entering the chain (payload rows of input 0).
    pub rows_in: u64,
    /// Rows leaving the chain.
    pub rows_out: u64,
}

/// Run an operator chain over materialised inputs. `inputs[0]` is the
/// streamed side; other inputs are consumed by join/sessionise operators.
pub fn execute_ops(
    ops: &[Op],
    inputs: &[Vec<Batch>],
    udfs: &UdfRegistry,
) -> Result<(Vec<Batch>, OpChainStats), EngineError> {
    let mut stream: Vec<Batch> = inputs
        .first()
        .cloned()
        .ok_or_else(|| EngineError::Plan("pipeline has no inputs".into()))?;
    let mut stats = OpChainStats {
        rows_in: stream.iter().map(|b| b.num_rows() as u64).sum(),
        rows_out: 0,
    };
    for op in ops {
        stream = apply_op(op, stream, inputs, udfs)?;
    }
    stats.rows_out = stream.iter().map(|b| b.num_rows() as u64).sum();
    Ok((stream, stats))
}

fn apply_op(
    op: &Op,
    stream: Vec<Batch>,
    inputs: &[Vec<Batch>],
    udfs: &UdfRegistry,
) -> Result<Vec<Batch>, EngineError> {
    match op {
        Op::Filter { predicate } => stream
            .iter()
            .map(|b| Ok(b.filter(&evaluate_mask(predicate, b, udfs)?)))
            .collect(),
        Op::Project { exprs } => stream.iter().map(|b| project(b, exprs, udfs)).collect(),
        Op::HashAggregate {
            group_by,
            aggregates,
            mode,
        } => hash_aggregate(&stream, group_by, aggregates, *mode, udfs).map(|b| vec![b]),
        Op::HashJoin {
            build_input,
            build_key,
            probe_key,
            build_columns,
        } => {
            let build = inputs
                .get(*build_input)
                .ok_or_else(|| EngineError::Plan(format!("no build input {build_input}")))?;
            hash_join(&stream, build, build_key, probe_key, build_columns)
        }
        Op::Sort { by } => sort(&stream, by).map(|b| vec![b]),
        Op::Limit { n } => Ok(limit(stream, *n as usize)),
        Op::SessionizeQ3 {
            category_input,
            window,
        } => {
            let items = inputs
                .get(*category_input)
                .ok_or_else(|| EngineError::Plan(format!("no input {category_input}")))?;
            sessionize_q3(&stream, items, *window).map(|b| vec![b])
        }
        // The worker intercepts barriers before execution; inside the
        // operator chain they are a no-op passthrough.
        Op::Barrier { .. } => Ok(stream),
    }
}

fn project(
    batch: &Batch,
    exprs: &[crate::expr::NamedExpr],
    udfs: &UdfRegistry,
) -> Result<Batch, EngineError> {
    let mut fields = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for ne in exprs {
        let col = evaluate(&ne.expr, batch, udfs)?;
        fields.push(Field::new(&ne.name, col.data_type()));
        columns.push(col);
    }
    Ok(Batch::new(Schema::new(fields), columns))
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Sum(f64),
    Count(i64),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        match self {
            AggState::Sum(s) => *s += v.as_f64(),
            AggState::Count(c) => *c += 1,
            AggState::Avg { sum, count } => {
                *sum += v.as_f64();
                *count += 1;
            }
            AggState::Min(m) => merge_minmax(m, v, false),
            AggState::Max(m) => merge_minmax(m, v, true),
        }
    }

    /// Merge a partial-state row (Final mode).
    pub(crate) fn merge(&mut self, primary: &Value, secondary: Option<&Value>) {
        match self {
            AggState::Sum(s) => *s += primary.as_f64(),
            AggState::Count(c) => *c += primary.as_f64() as i64,
            AggState::Avg { sum, count } => {
                *sum += primary.as_f64();
                *count += secondary.expect("avg partial has a count column").as_f64() as i64;
            }
            AggState::Min(m) => merge_minmax(m, primary, false),
            AggState::Max(m) => merge_minmax(m, primary, true),
        }
    }
}

fn merge_minmax(state: &mut Option<Value>, v: &Value, is_max: bool) {
    let better = match state {
        None => true,
        Some(cur) => {
            let ord = match (&*cur, v) {
                (Value::Int64(a), Value::Int64(b)) => b.cmp(a),
                (Value::Utf8(a), Value::Utf8(b)) => b.cmp(a),
                _ => v
                    .as_f64()
                    .partial_cmp(&cur.as_f64())
                    .unwrap_or(std::cmp::Ordering::Equal),
            };
            if is_max {
                ord == std::cmp::Ordering::Greater
            } else {
                ord == std::cmp::Ordering::Less
            }
        }
    };
    if better {
        *state = Some(v.clone());
    }
}

/// Names of the output columns of a partial aggregate for `agg`.
pub fn partial_columns(agg: &AggExpr) -> Vec<String> {
    match agg.func {
        AggFunc::Avg => vec![format!("{}__sum", agg.name), format!("{}__cnt", agg.name)],
        _ => vec![agg.name.clone()],
    }
}

fn hash_aggregate(
    stream: &[Batch],
    group_by: &[String],
    aggregates: &[AggExpr],
    mode: AggMode,
    udfs: &UdfRegistry,
) -> Result<Batch, EngineError> {
    // Deterministic group order: BTreeMap keyed on the composite key.
    let mut groups: std::collections::BTreeMap<Vec<ScalarKey>, Vec<AggState>> =
        std::collections::BTreeMap::new();

    for batch in stream {
        if batch.num_rows() == 0 {
            continue;
        }
        let keys = row_keys(batch, group_by)?;
        match mode {
            AggMode::Partial | AggMode::Single => {
                // Evaluate agg arguments once per batch.
                let args: Vec<Column> = aggregates
                    .iter()
                    .map(|a| match a.func {
                        AggFunc::Count => Ok(Column::Int64(vec![1; batch.num_rows()])),
                        _ => evaluate(&a.expr, batch, udfs),
                    })
                    .collect::<Result<_, _>>()?;
                for (row, key) in keys.into_iter().enumerate() {
                    let states = groups.entry(key).or_insert_with(|| {
                        aggregates.iter().map(|a| AggState::new(a.func)).collect()
                    });
                    for (s, col) in states.iter_mut().zip(&args) {
                        s.update(&col.value(row));
                    }
                }
            }
            AggMode::Final => {
                // Read partial-state columns by naming convention.
                let cols: Vec<(Column, Option<Column>)> = aggregates
                    .iter()
                    .map(|a| {
                        let names = partial_columns(a);
                        let primary = batch
                            .schema
                            .index_of(&names[0])
                            .map(|i| batch.columns[i].clone())
                            .ok_or_else(|| {
                                EngineError::Plan(format!("missing partial column {}", names[0]))
                            })?;
                        let secondary = names
                            .get(1)
                            .map(|n| {
                                batch
                                    .schema
                                    .index_of(n)
                                    .map(|i| batch.columns[i].clone())
                                    .ok_or_else(|| {
                                        EngineError::Plan(format!("missing partial column {n}"))
                                    })
                            })
                            .transpose()?;
                        Ok((primary, secondary))
                    })
                    .collect::<Result<_, EngineError>>()?;
                for (row, key) in keys.into_iter().enumerate() {
                    let states = groups.entry(key).or_insert_with(|| {
                        aggregates.iter().map(|a| AggState::new(a.func)).collect()
                    });
                    for (s, (primary, secondary)) in states.iter_mut().zip(&cols) {
                        s.merge(
                            &primary.value(row),
                            secondary.as_ref().map(|c| c.value(row)).as_ref(),
                        );
                    }
                }
            }
        }
    }

    // Assemble the output batch.
    let empty_schema_types: Vec<DataType> = group_by.iter().map(|_| DataType::Utf8).collect();
    let _ = empty_schema_types;
    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();

    // Group columns (types inferred from the first key).
    for (gi, gname) in group_by.iter().enumerate() {
        let mut vals: Vec<Value> = Vec::with_capacity(groups.len());
        for key in groups.keys() {
            vals.push(key[gi].clone().into_value());
        }
        let col = column_from_values(&vals);
        fields.push(Field::new(gname, col.data_type()));
        columns.push(col);
    }

    // Aggregate columns.
    let emit_final = !matches!(mode, AggMode::Partial);
    for (ai, agg) in aggregates.iter().enumerate() {
        match (agg.func, emit_final) {
            (AggFunc::Avg, false) => {
                let mut sums = Vec::with_capacity(groups.len());
                let mut counts = Vec::with_capacity(groups.len());
                for states in groups.values() {
                    let AggState::Avg { sum, count } = &states[ai] else {
                        unreachable!()
                    };
                    sums.push(*sum);
                    counts.push(*count);
                }
                fields.push(Field::new(&format!("{}__sum", agg.name), DataType::Float64));
                columns.push(Column::Float64(sums));
                fields.push(Field::new(&format!("{}__cnt", agg.name), DataType::Int64));
                columns.push(Column::Int64(counts));
            }
            _ => {
                let mut vals: Vec<Value> = Vec::with_capacity(groups.len());
                for states in groups.values() {
                    vals.push(match &states[ai] {
                        AggState::Sum(s) => Value::Float64(*s),
                        AggState::Count(c) => Value::Int64(*c),
                        AggState::Avg { sum, count } => Value::Float64(if *count == 0 {
                            0.0
                        } else {
                            sum / *count as f64
                        }),
                        AggState::Min(m) | AggState::Max(m) => {
                            m.clone().unwrap_or(Value::Float64(f64::NAN))
                        }
                    });
                }
                let col = column_from_values(&vals);
                fields.push(Field::new(&agg.name, col.data_type()));
                columns.push(col);
            }
        }
    }

    if groups.is_empty() && group_by.is_empty() && emit_final {
        // Global aggregate over zero rows still yields one row of zeros.
        for (f, c) in fields.iter().zip(columns.iter_mut()) {
            let _ = f;
            match c {
                Column::Float64(v) => v.push(0.0),
                Column::Int64(v) => v.push(0),
                Column::Utf8(v) => v.push(String::new()),
                Column::Bool(v) => v.push(false),
            }
        }
    }

    Ok(Batch::new(Schema::new(fields), columns))
}

pub(crate) fn column_from_values(vals: &[Value]) -> Column {
    match vals.first() {
        Some(Value::Int64(_)) => Column::Int64(
            vals.iter()
                .map(|v| match v {
                    Value::Int64(x) => *x,
                    other => other.as_f64() as i64,
                })
                .collect(),
        ),
        Some(Value::Utf8(_)) => Column::Utf8(
            vals.iter()
                .map(|v| match v {
                    Value::Utf8(s) => s.clone(),
                    other => other.to_string(),
                })
                .collect(),
        ),
        Some(Value::Bool(_)) => Column::Bool(
            vals.iter()
                .map(|v| matches!(v, Value::Bool(true)))
                .collect(),
        ),
        _ => Column::Float64(vals.iter().map(Value::as_f64).collect()),
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

fn hash_join(
    probe: &[Batch],
    build: &[Batch],
    build_key: &str,
    probe_key: &str,
    build_columns: &[String],
) -> Result<Vec<Batch>, EngineError> {
    if build.is_empty() || probe.is_empty() {
        return Err(EngineError::Plan(
            "hash join requires materialised build and probe inputs".into(),
        ));
    }
    let build_all = Batch::concat(build);
    let build_keys = row_keys(&build_all, &[build_key.to_string()])?;
    let mut table: BTreeMap<ScalarKey, Vec<usize>> = BTreeMap::new();
    for (row, mut key) in build_keys.into_iter().enumerate() {
        table
            .entry(key.pop().expect("single key"))
            .or_default()
            .push(row);
    }

    let build_col_refs: Vec<(&Field, &Column)> = build_columns
        .iter()
        .map(|name| {
            build_all
                .schema
                .index_of(name)
                .map(|i| (&build_all.schema.fields[i], &build_all.columns[i]))
                .ok_or_else(|| EngineError::Plan(format!("unknown build column {name}")))
        })
        .collect::<Result<_, _>>()?;

    let mut out = Vec::new();
    for pb in probe {
        let probe_keys = row_keys(pb, &[probe_key.to_string()])?;
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        for (prow, mut key) in probe_keys.into_iter().enumerate() {
            if let Some(matches) = table.get(&key.pop().expect("single key")) {
                for &brow in matches {
                    probe_idx.push(prow);
                    build_idx.push(brow);
                }
            }
        }
        let mut fields: Vec<Field> = pb.schema.fields.clone();
        let mut columns: Vec<Column> = pb.take(&probe_idx).columns;
        for (f, c) in &build_col_refs {
            fields.push((*f).clone());
            columns.push(c.take(&build_idx));
        }
        out.push(Batch::new(Schema::new(fields), columns));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// sort / limit
// ---------------------------------------------------------------------------

fn sort(stream: &[Batch], by: &[(String, bool)]) -> Result<Batch, EngineError> {
    if stream.is_empty() {
        return Err(EngineError::Plan("sort over no batches".into()));
    }
    let all = Batch::concat(stream);
    let keys: Vec<(Vec<ScalarKey>, bool)> = by
        .iter()
        .map(|(name, asc)| Ok((row_keys_single(&all, name)?, *asc)))
        .collect::<Result<_, EngineError>>()?;
    let mut idx: Vec<usize> = (0..all.num_rows()).collect();
    idx.sort_by(|&a, &b| {
        for (col, asc) in &keys {
            let ord = col[a].cmp(&col[b]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(all.take(&idx))
}

fn row_keys_single(batch: &Batch, name: &str) -> Result<Vec<ScalarKey>, EngineError> {
    let i = batch
        .schema
        .index_of(name)
        .ok_or_else(|| EngineError::Plan(format!("unknown sort column {name}")))?;
    Ok((0..batch.num_rows())
        .map(|r| ScalarKey::from_column(&batch.columns[i], r))
        .collect())
}

fn limit(stream: Vec<Batch>, n: usize) -> Vec<Batch> {
    let mut remaining = n;
    let mut out = Vec::new();
    for b in stream {
        if remaining == 0 {
            // Keep the schema alive with an empty batch if nothing was
            // emitted yet (n == 0).
            if out.is_empty() {
                out.push(b.slice(0, 0));
            }
            break;
        }
        let take = b.num_rows().min(remaining);
        remaining -= take;
        out.push(b.slice(0, take));
    }
    out
}

// ---------------------------------------------------------------------------
// TPCx-BB Q3 sessionisation
// ---------------------------------------------------------------------------

/// For each purchase of a category item, count category items viewed in
/// the preceding `window` clicks of the same user session stream. Emits
/// `(item_sk, views)` partial counts.
fn sessionize_q3(clicks: &[Batch], items: &[Batch], window: usize) -> Result<Batch, EngineError> {
    let category: std::collections::BTreeSet<i64> = items
        .iter()
        .flat_map(|b| b.column("i_item_sk").as_i64().iter().copied())
        .collect();
    if clicks.is_empty() {
        return Ok(Batch::new(
            Schema::new(vec![
                Field::new("item_sk", DataType::Int64),
                Field::new("views", DataType::Int64),
            ]),
            vec![Column::Int64(vec![]), Column::Int64(vec![])],
        ));
    }
    let all = Batch::concat(clicks);
    let users = all.column("wcs_user_sk").as_i64();
    let dates = all.column("wcs_click_date_sk").as_i64();
    let times = all.column("wcs_click_time_sk").as_i64();
    let item_sk = all.column("wcs_item_sk").as_i64();
    let sales = all.column("wcs_sales_sk").as_i64();

    // Order clicks per user by (date, time).
    let mut idx: Vec<usize> = (0..all.num_rows()).collect();
    idx.sort_by_key(|&i| (users[i], dates[i], times[i]));

    let mut views: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    let mut start = 0usize;
    while start < idx.len() {
        let user = users[idx[start]];
        let mut end = start;
        while end < idx.len() && users[idx[end]] == user {
            end += 1;
        }
        let session = &idx[start..end];
        for (pos, &click) in session.iter().enumerate() {
            let is_purchase = sales[click] != 0 && category.contains(&item_sk[click]);
            if !is_purchase {
                continue;
            }
            let from = pos.saturating_sub(window);
            for &prior in &session[from..pos] {
                let viewed = item_sk[prior];
                if category.contains(&viewed) {
                    *views.entry(viewed).or_insert(0) += 1;
                }
            }
        }
        start = end;
    }

    Ok(Batch::new(
        Schema::new(vec![
            Field::new("item_sk", DataType::Int64),
            Field::new("views", DataType::Int64),
        ]),
        vec![
            Column::Int64(views.keys().copied().collect()),
            Column::Int64(views.values().copied().collect()),
        ],
    ))
}

/// Per-row shuffle hashes of the named key columns, computed
/// column-at-a-time with the batched, four-lane-unrolled `mix64` fold
/// from `skyrise_data::keys` — no `ScalarKey` materialisation and no
/// per-byte FNV chain on the numeric types. Row `r`'s hash folds each
/// key column with `h * 31 + col_hash`, matching
/// [`ScalarKey::partition_hash`] bit-for-bit.
pub(crate) fn partition_hashes(
    batch: &Batch,
    partition_by: &[String],
) -> Result<Vec<u64>, EngineError> {
    let mut hashes = vec![0u64; batch.num_rows()];
    for name in partition_by {
        let col = batch
            .schema
            .index_of(name)
            .map(|i| &batch.columns[i])
            .ok_or_else(|| EngineError::Plan(format!("unknown key column {name}")))?;
        match col {
            Column::Int64(v) => keys::fold_hash_i64(&mut hashes, v),
            Column::Float64(v) => keys::fold_hash_f64(&mut hashes, v),
            Column::Bool(v) => keys::fold_hash_bool(&mut hashes, v),
            Column::Utf8(v) => {
                // Strings still hash their bytes (FNV-1a digest through
                // the mix64 finalizer); runs of equal adjacent strings —
                // common in sorted/clustered key columns — reuse the
                // previous hash instead of re-digesting.
                let mut memo: Option<(&str, u64)> = None;
                for (h, s) in hashes.iter_mut().zip(v) {
                    let kh = match memo {
                        Some((prev, kh)) if prev == s.as_str() => kh,
                        _ => {
                            let kh = keys::hash_key_utf8(fnv1a64_fold(FNV64_OFFSET, s.as_bytes()));
                            memo = Some((s.as_str(), kh));
                            kh
                        }
                    };
                    *h = h.wrapping_mul(31).wrapping_add(kh);
                }
            }
        }
    }
    Ok(hashes)
}

/// Hash-partition a batch's rows into `n` buckets by key columns — the
/// shuffle writer. Returns one (possibly empty) batch per bucket.
pub fn partition_batch(
    batch: &Batch,
    partition_by: &[String],
    n: usize,
) -> Result<Vec<Batch>, EngineError> {
    assert!(n > 0);
    if partition_by.is_empty() {
        // Round-robin-free: everything to bucket 0 (single downstream).
        let mut out = vec![Batch::empty(Rc::clone(&batch.schema)); n];
        out[0] = batch.clone();
        return Ok(out);
    }
    let hashes = partition_hashes(batch, partition_by)?;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (row, h) in hashes.iter().enumerate() {
        buckets[(h % n as u64) as usize].push(row);
    }
    Ok(buckets.into_iter().map(|rows| batch.take(&rows)).collect())
}

/// Row-at-a-time `ScalarKey` partitioner, kept as the oracle the
/// vectorised [`partition_batch`] is property-tested against.
pub fn partition_batch_scalar(
    batch: &Batch,
    partition_by: &[String],
    n: usize,
) -> Result<Vec<Batch>, EngineError> {
    assert!(n > 0);
    if partition_by.is_empty() {
        let mut out = vec![Batch::empty(Rc::clone(&batch.schema)); n];
        out[0] = batch.clone();
        return Ok(out);
    }
    let keys = row_keys(batch, partition_by)?;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (row, key) in keys.iter().enumerate() {
        let mut h = 0u64;
        for k in key {
            h = h.wrapping_mul(31).wrapping_add(k.partition_hash());
        }
        buckets[(h % n as u64) as usize].push(row);
    }
    Ok(buckets.into_iter().map(|rows| batch.take(&rows)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr, NamedExpr};

    fn udfs() -> UdfRegistry {
        UdfRegistry::with_builtins()
    }

    fn lineitems() -> Vec<Batch> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("flag", DataType::Utf8),
        ]);
        vec![
            Batch::new(
                Rc::clone(&schema),
                vec![
                    Column::Int64(vec![1, 2, 3]),
                    Column::Float64(vec![10.0, 20.0, 30.0]),
                    Column::Utf8(vec!["A".into(), "B".into(), "A".into()]),
                ],
            ),
            Batch::new(
                schema,
                vec![
                    Column::Int64(vec![4, 5]),
                    Column::Float64(vec![40.0, 50.0]),
                    Column::Utf8(vec!["B".into(), "A".into()]),
                ],
            ),
        ]
    }

    #[test]
    fn filter_project_chain() {
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("k").cmp(CmpOp::Ge, Expr::lit_i64(2)),
            },
            Op::Project {
                exprs: vec![NamedExpr::new(
                    "double",
                    Expr::col("price").arith(crate::expr::ArithOp::Mul, Expr::lit_f64(2.0)),
                )],
            },
        ];
        let (out, stats) = execute_ops(&ops, &[lineitems()], &udfs()).unwrap();
        let all = Batch::concat(&out);
        assert_eq!(all.column("double").as_f64(), &[40.0, 60.0, 80.0, 100.0]);
        assert_eq!(stats.rows_in, 5);
        assert_eq!(stats.rows_out, 4);
    }

    #[test]
    fn single_phase_aggregate() {
        let ops = vec![Op::HashAggregate {
            group_by: vec!["flag".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Sum, Expr::col("price"), "total"),
                AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
                AggExpr::new(AggFunc::Avg, Expr::col("price"), "avg_price"),
                AggExpr::new(AggFunc::Max, Expr::col("k"), "max_k"),
            ],
            mode: AggMode::Single,
        }];
        let (out, _) = execute_ops(&ops, &[lineitems()], &udfs()).unwrap();
        let b = &out[0];
        assert_eq!(
            b.column("flag").as_str(),
            &["A".to_string(), "B".to_string()]
        );
        assert_eq!(b.column("total").as_f64(), &[90.0, 60.0]);
        assert_eq!(b.column("cnt").as_i64(), &[3, 2]);
        assert_eq!(b.column("avg_price").as_f64(), &[30.0, 30.0]);
        assert_eq!(b.column("max_k").as_i64(), &[5, 4]);
    }

    #[test]
    fn partial_then_final_equals_single() {
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("price"), "total"),
            AggExpr::new(AggFunc::Avg, Expr::col("price"), "avg_price"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "cnt"),
            AggExpr::new(AggFunc::Min, Expr::col("k"), "min_k"),
        ];
        let group = vec!["flag".to_string()];
        // Split the input across two "fragments".
        let input = lineitems();
        let partial_op = Op::HashAggregate {
            group_by: group.clone(),
            aggregates: aggs.clone(),
            mode: AggMode::Partial,
        };
        let (p1, _) = execute_ops(
            std::slice::from_ref(&partial_op),
            &[vec![input[0].clone()]],
            &udfs(),
        )
        .unwrap();
        let (p2, _) = execute_ops(
            std::slice::from_ref(&partial_op),
            &[vec![input[1].clone()]],
            &udfs(),
        )
        .unwrap();
        let final_op = Op::HashAggregate {
            group_by: group.clone(),
            aggregates: aggs.clone(),
            mode: AggMode::Final,
        };
        let merged: Vec<Batch> = p1.into_iter().chain(p2).collect();
        let (fin, _) = execute_ops(std::slice::from_ref(&final_op), &[merged], &udfs()).unwrap();

        let single_op = Op::HashAggregate {
            group_by: group,
            aggregates: aggs,
            mode: AggMode::Single,
        };
        let (single, _) = execute_ops(std::slice::from_ref(&single_op), &[input], &udfs()).unwrap();
        assert_eq!(fin[0].columns, single[0].columns);
    }

    #[test]
    fn hash_join_inner() {
        let orders_schema = Schema::new(vec![
            Field::new("o_key", DataType::Int64),
            Field::new("prio", DataType::Utf8),
        ]);
        let orders = vec![Batch::new(
            orders_schema,
            vec![
                Column::Int64(vec![1, 2, 4]),
                Column::Utf8(vec!["HI".into(), "LO".into(), "HI".into()]),
            ],
        )];
        let ops = vec![Op::HashJoin {
            build_input: 1,
            build_key: "o_key".into(),
            probe_key: "k".into(),
            build_columns: vec!["prio".into()],
        }];
        let (out, _) = execute_ops(&ops, &[lineitems(), orders], &udfs()).unwrap();
        let all = Batch::concat(&out);
        assert_eq!(all.num_rows(), 3); // keys 1, 2, 4 match
        assert_eq!(all.column("k").as_i64(), &[1, 2, 4]);
        assert_eq!(
            all.column("prio").as_str(),
            &["HI".to_string(), "LO".to_string(), "HI".to_string()]
        );
    }

    #[test]
    fn join_duplicates_multiply() {
        let left_schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        let left = vec![Batch::new(left_schema, vec![Column::Int64(vec![7, 7])])];
        let right_schema = Schema::new(vec![
            Field::new("rk", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let right = vec![Batch::new(
            right_schema,
            vec![Column::Int64(vec![7, 7, 8]), Column::Int64(vec![1, 2, 3])],
        )];
        let ops = vec![Op::HashJoin {
            build_input: 1,
            build_key: "rk".into(),
            probe_key: "k".into(),
            build_columns: vec!["v".into()],
        }];
        let (out, _) = execute_ops(&ops, &[left, right], &udfs()).unwrap();
        assert_eq!(Batch::concat(&out).num_rows(), 4); // 2 x 2
    }

    #[test]
    fn sort_and_limit() {
        let ops = vec![
            Op::Sort {
                by: vec![("flag".into(), true), ("k".into(), false)],
            },
            Op::Limit { n: 3 },
        ];
        let (out, _) = execute_ops(&ops, &[lineitems()], &udfs()).unwrap();
        let all = Batch::concat(&out);
        assert_eq!(all.column("k").as_i64(), &[5, 3, 1]);
    }

    #[test]
    fn partition_batch_is_complete_and_disjoint() {
        let input = Batch::concat(&lineitems());
        let parts = partition_batch(&input, &["k".to_string()], 4).unwrap();
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, input.num_rows());
        // Same key always lands in the same bucket.
        let again = partition_batch(&input, &["k".to_string()], 4).unwrap();
        for (a, b) in parts.iter().zip(&again) {
            assert_eq!(a.columns, b.columns);
        }
    }

    #[test]
    fn partition_without_keys_goes_to_bucket_zero() {
        let input = Batch::concat(&lineitems());
        let parts = partition_batch(&input, &[], 3).unwrap();
        assert_eq!(parts[0].num_rows(), 5);
        assert_eq!(parts[1].num_rows(), 0);
    }

    #[test]
    fn sessionize_counts_prior_views() {
        let schema = Schema::new(vec![
            Field::new("wcs_user_sk", DataType::Int64),
            Field::new("wcs_click_date_sk", DataType::Int64),
            Field::new("wcs_click_time_sk", DataType::Int64),
            Field::new("wcs_item_sk", DataType::Int64),
            Field::new("wcs_sales_sk", DataType::Int64),
        ]);
        // User 1 views items 10, 11, 10 then buys item 12.
        let clicks = vec![Batch::new(
            schema,
            vec![
                Column::Int64(vec![1, 1, 1, 1]),
                Column::Int64(vec![0, 0, 0, 0]),
                Column::Int64(vec![1, 2, 3, 4]),
                Column::Int64(vec![10, 11, 10, 12]),
                Column::Int64(vec![0, 0, 0, 99]),
            ],
        )];
        let item_schema = Schema::new(vec![Field::new("i_item_sk", DataType::Int64)]);
        let items = vec![Batch::new(
            item_schema,
            vec![Column::Int64(vec![10, 12])], // category: items 10, 12
        )];
        let ops = vec![Op::SessionizeQ3 {
            category_input: 1,
            window: 10,
        }];
        let (out, _) = execute_ops(&ops, &[clicks, items], &udfs()).unwrap();
        let b = &out[0];
        // Item 11 is outside the category; item 10 viewed twice before
        // the purchase of category item 12.
        assert_eq!(b.column("item_sk").as_i64(), &[10]);
        assert_eq!(b.column("views").as_i64(), &[2]);
    }

    #[test]
    fn barrier_is_passthrough_in_chain() {
        let ops = vec![Op::Barrier {
            name: "scan-done".into(),
        }];
        let (out, stats) = execute_ops(&ops, &[lineitems()], &udfs()).unwrap();
        assert_eq!(stats.rows_in, stats.rows_out);
        assert_eq!(Batch::concat(&out).num_rows(), 5);
    }
}
