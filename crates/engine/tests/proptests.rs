//! Property-based tests over the engine's core invariants.

use proptest::prelude::*;
use skyrise_data::{Batch, Column, DataType, Field, KeyBuffer, Schema, Value};
use skyrise_engine::bind::execute_chain;
use skyrise_engine::expr::{evaluate_mask, ArithOp, CmpOp, Expr, NamedExpr, UdfRegistry};
use skyrise_engine::operators::{execute_ops, partition_batch, partition_batch_scalar, ScalarKey};
use skyrise_engine::plan::{AggExpr, AggFunc, AggMode, Op};
use std::collections::BTreeMap;
use std::rc::Rc;

fn kv_batch(keys: &[i64], vals: &[f64]) -> Batch {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]);
    Batch::new(
        schema,
        vec![Column::Int64(keys.to_vec()), Column::Float64(vals.to_vec())],
    )
}

proptest! {
    /// Hash join produces exactly the nested-loop join's multiset of pairs.
    #[test]
    fn hash_join_equals_nested_loop(
        probe_keys in prop::collection::vec(0i64..20, 0..60),
        build_keys in prop::collection::vec(0i64..20, 1..40),
    ) {
        let probe_vals: Vec<f64> = (0..probe_keys.len()).map(|i| i as f64).collect();
        let build_vals: Vec<f64> = (0..build_keys.len()).map(|i| 1000.0 + i as f64).collect();
        let probe = kv_batch(&probe_keys, &probe_vals);
        let build_schema = Schema::new(vec![
            Field::new("bk", DataType::Int64),
            Field::new("bv", DataType::Float64),
        ]);
        let build = Batch::new(
            build_schema,
            vec![Column::Int64(build_keys.clone()), Column::Float64(build_vals.clone())],
        );
        let ops = vec![Op::HashJoin {
            build_input: 1,
            build_key: "bk".into(),
            probe_key: "k".into(),
            build_columns: vec!["bv".into()],
        }];
        let (out, _) = execute_ops(&ops, &[vec![probe], vec![build]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);

        // Nested loop reference.
        let mut expect: Vec<(f64, f64)> = Vec::new();
        for (pi, pk) in probe_keys.iter().enumerate() {
            for (bi, bk) in build_keys.iter().enumerate() {
                if pk == bk {
                    expect.push((probe_vals[pi], build_vals[bi]));
                }
            }
        }
        let mut got: Vec<(f64, f64)> = (0..out.num_rows())
            .map(|i| (out.column("v").as_f64()[i], out.column("bv").as_f64()[i]))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, expect);
    }

    /// Distributed aggregation (partial per split, then final) equals
    /// single-phase aggregation, however the rows are split.
    #[test]
    fn partial_final_agg_is_split_invariant(
        keys in prop::collection::vec(0i64..8, 1..80),
        split in 1usize..79,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64 * 1.5 + 1.0).collect();
        let all = kv_batch(&keys, &vals);
        let split = split.min(keys.len());
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("v"), "s"),
            AggExpr::new(AggFunc::Avg, Expr::col("v"), "a"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "c"),
            AggExpr::new(AggFunc::Min, Expr::col("k"), "mn"),
            AggExpr::new(AggFunc::Max, Expr::col("k"), "mx"),
        ];
        let udfs = UdfRegistry::new();
        let partial = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs.clone(),
            mode: AggMode::Partial,
        };
        let final_op = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs.clone(),
            mode: AggMode::Final,
        };
        let single = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs,
            mode: AggMode::Single,
        };
        let (p1, _) = execute_ops(
            std::slice::from_ref(&partial),
            &[vec![all.slice(0, split)]],
            &udfs,
        )
        .unwrap();
        let (p2, _) = execute_ops(
            std::slice::from_ref(&partial),
            &[vec![all.slice(split, all.num_rows())]],
            &udfs,
        )
        .unwrap();
        let merged: Vec<Batch> = p1.into_iter().chain(p2).collect();
        let (fin, _) = execute_ops(std::slice::from_ref(&final_op), &[merged], &udfs).unwrap();
        let (want, _) = execute_ops(std::slice::from_ref(&single), &[vec![all]], &udfs).unwrap();
        prop_assert_eq!(&fin[0].columns, &want[0].columns);
    }

    /// Shuffle partitioning is complete, disjoint, and key-stable: the
    /// same key never lands in two buckets, and bucket assignment is
    /// independent of which rows accompany it.
    #[test]
    fn partitioning_is_complete_and_stable(
        keys in prop::collection::vec(-50i64..50, 0..120),
        n_buckets in 1usize..12,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let parts = partition_batch(&batch, &["k".to_string()], n_buckets).unwrap();
        prop_assert_eq!(parts.len(), n_buckets);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        prop_assert_eq!(total, batch.num_rows());
        // Key-to-bucket mapping is a function.
        let mut seen: BTreeMap<i64, usize> = BTreeMap::new();
        for (b, part) in parts.iter().enumerate() {
            for &k in part.column("k").as_i64() {
                if let Some(&prev) = seen.get(&k) {
                    prop_assert_eq!(prev, b, "key {} split across buckets", k);
                }
                seen.insert(k, b);
            }
        }
        // Stability: a singleton batch maps each key to the same bucket.
        for (&k, &bucket) in &seen {
            let single = kv_batch(&[k], &[0.0]);
            let p = partition_batch(&single, &["k".to_string()], n_buckets).unwrap();
            prop_assert_eq!(p[bucket].num_rows(), 1);
        }
    }

    /// Boolean algebra over masks: De Morgan and double negation.
    #[test]
    fn expression_boolean_algebra(
        keys in prop::collection::vec(-10i64..10, 1..50),
        threshold in -10i64..10,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let udfs = UdfRegistry::new();
        let a = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(threshold));
        let b = Expr::col("v").cmp(CmpOp::Ge, Expr::lit_f64(0.0));
        let not_and = Expr::Not(Box::new(Expr::And(vec![a.clone(), b.clone()])));
        let or_nots = Expr::Or(vec![
            Expr::Not(Box::new(a.clone())),
            Expr::Not(Box::new(b.clone())),
        ]);
        prop_assert_eq!(
            evaluate_mask(&not_and, &batch, &udfs).unwrap(),
            evaluate_mask(&or_nots, &batch, &udfs).unwrap()
        );
        let double_neg = Expr::Not(Box::new(Expr::Not(Box::new(a.clone()))));
        prop_assert_eq!(
            evaluate_mask(&double_neg, &batch, &udfs).unwrap(),
            evaluate_mask(&a, &batch, &udfs).unwrap()
        );
    }

    /// Sort emits an ordered permutation of its input.
    #[test]
    fn sort_is_an_ordered_permutation(
        keys in prop::collection::vec(-100i64..100, 1..80),
        ascending in any::<bool>(),
    ) {
        let vals: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let ops = vec![Op::Sort {
            by: vec![("k".into(), ascending)],
        }];
        let (out, _) = execute_ops(&ops, &[vec![batch]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);
        let sorted = out.column("k").as_i64();
        prop_assert_eq!(sorted.len(), keys.len());
        for w in sorted.windows(2) {
            if ascending {
                prop_assert!(w[0] <= w[1]);
            } else {
                prop_assert!(w[0] >= w[1]);
            }
        }
        let mut a = keys.clone();
        let mut b = sorted.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// ScalarKey partition hashing is deterministic and value-faithful.
    #[test]
    fn scalar_keys_round_trip(x in any::<i64>(), s in "[a-z]{0,12}") {
        let ki = ScalarKey::try_from_value(&Value::Int64(x)).unwrap();
        prop_assert_eq!(ki.partition_hash(), ScalarKey::try_from_value(&Value::Int64(x)).unwrap().partition_hash());
        prop_assert_eq!(ki.into_value(), Value::Int64(x));
        let ks = ScalarKey::try_from_value(&Value::Utf8(s.clone())).unwrap();
        prop_assert_eq!(ks.into_value(), Value::Utf8(s));
    }

    /// Limit keeps exactly min(n, rows) leading rows.
    #[test]
    fn limit_takes_a_prefix(
        keys in prop::collection::vec(any::<i64>(), 0..60),
        n in 0u64..80,
    ) {
        let vals: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let ops = vec![Op::Limit { n }];
        let (out, _) = execute_ops(&ops, &[vec![batch]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);
        let take = (n as usize).min(keys.len());
        prop_assert_eq!(out.num_rows(), take);
        prop_assert_eq!(out.column("k").as_i64(), &keys[..take]);
    }
}

/// Deterministic (non-proptest) regression: group columns survive a full
/// partial -> shuffle-partition -> final round trip.
#[test]
fn distributed_agg_through_partitioning() {
    let keys: Vec<i64> = (0..200).map(|i| i % 7).collect();
    let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let batch = kv_batch(&keys, &vals);
    let udfs = UdfRegistry::new();
    let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col("v"), "s")];
    let partial = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs.clone(),
        mode: AggMode::Partial,
    };
    // Two "workers" aggregate halves, partition by key into 3 buckets.
    let (w1, _) = execute_ops(
        std::slice::from_ref(&partial),
        &[vec![batch.slice(0, 100)]],
        &udfs,
    )
    .unwrap();
    let (w2, _) = execute_ops(
        std::slice::from_ref(&partial),
        &[vec![batch.slice(100, 200)]],
        &udfs,
    )
    .unwrap();
    let mut buckets: Vec<Vec<Batch>> = vec![Vec::new(); 3];
    for out in [w1, w2] {
        for b in out {
            for (i, p) in partition_batch(&b, &["k".to_string()], 3)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                buckets[i].push(p);
            }
        }
    }
    // Three "reducers" finalise their buckets; union must equal single-phase.
    let final_op = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs.clone(),
        mode: AggMode::Final,
    };
    let mut got: Vec<(i64, f64)> = Vec::new();
    for bucket in buckets {
        let (fin, _) = execute_ops(std::slice::from_ref(&final_op), &[bucket], &udfs).unwrap();
        for i in 0..fin[0].num_rows() {
            got.push((
                fin[0].column("k").as_i64()[i],
                fin[0].column("s").as_f64()[i],
            ));
        }
    }
    got.sort_by_key(|a| a.0);
    let single = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs,
        mode: AggMode::Single,
    };
    let (want, _) = execute_ops(std::slice::from_ref(&single), &[vec![batch]], &udfs).unwrap();
    let want_rows: Vec<(i64, f64)> = (0..want[0].num_rows())
        .map(|i| {
            (
                want[0].column("k").as_i64()[i],
                want[0].column("s").as_f64()[i],
            )
        })
        .collect();
    assert_eq!(got, want_rows);
    let _ = Rc::new(());
}

// ---------------------------------------------------------------------------
// Normalized-key kernels vs the row-at-a-time ScalarKey oracle.
//
// The bound executor (`bind::execute_chain`) must produce *byte-identical*
// output to the legacy `operators::execute_ops` path for every operator it
// rewrites, on batches mixing every key type (including NaN / -0.0 floats).
// ---------------------------------------------------------------------------

/// One row of mixed-type key material plus a payload value.
type MixedRow = (i64, String, u8, bool, f64);

fn mixed_rows() -> impl Strategy<Value = Vec<MixedRow>> {
    prop::collection::vec(
        (
            -4i64..4,
            "[a-c]{0,3}",
            0u8..7,
            any::<bool>(),
            -100.0f64..100.0,
        ),
        0..60,
    )
}

/// Float keys from a small palette so groups collide; slots 5/6 are the
/// nasty cases (NaN and -0.0) both encodings must agree on.
fn float_key(slot: u8) -> f64 {
    match slot {
        5 => f64::NAN,
        6 => -0.0,
        s => s as f64 * 0.5 - 1.0,
    }
}

fn mixed_batch(rows: &[MixedRow]) -> Batch {
    let schema = Schema::new(vec![
        Field::new("ki", DataType::Int64),
        Field::new("ks", DataType::Utf8),
        Field::new("kf", DataType::Float64),
        Field::new("kb", DataType::Bool),
        Field::new("v", DataType::Float64),
    ]);
    Batch::new(
        schema,
        vec![
            Column::Int64(rows.iter().map(|r| r.0).collect()),
            Column::Utf8(rows.iter().map(|r| r.1.clone()).collect()),
            Column::Float64(rows.iter().map(|r| float_key(r.2)).collect()),
            Column::Bool(rows.iter().map(|r| r.3).collect()),
            Column::Float64(rows.iter().map(|r| r.4).collect()),
        ],
    )
}

/// Split rows into a stream of batches at `split` (both halves non-empty
/// batches unless the side is empty).
fn mixed_stream(rows: &[MixedRow], split: usize) -> Vec<Batch> {
    let split = split.min(rows.len());
    let mut out = Vec::new();
    if split > 0 {
        out.push(mixed_batch(&rows[..split]));
    }
    if split < rows.len() {
        out.push(mixed_batch(&rows[split..]));
    }
    if out.is_empty() {
        out.push(mixed_batch(rows));
    }
    out
}

/// Column equality at the bit level: NaN equals NaN, and -0.0 does *not*
/// equal 0.0 — stricter than f64's `==` in both directions, which is what
/// a byte-identical-output contract requires.
fn columns_bitwise_eq(a: &Column, b: &Column) -> bool {
    match (a, b) {
        (Column::Float64(x), Column::Float64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        _ => a == b,
    }
}

/// Bound and legacy executors must agree batch-for-batch: same schemas,
/// same columns, bit for bit.
fn assert_chain_matches_oracle(ops: &[Op], inputs: &[Vec<Batch>]) -> Result<(), TestCaseError> {
    let udfs = UdfRegistry::new();
    let (got, _) = execute_chain(ops, inputs, &udfs).unwrap();
    let (want, _) = execute_ops(ops, inputs, &udfs).unwrap();
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        prop_assert_eq!(&g.schema.fields, &w.schema.fields);
        prop_assert_eq!(g.columns.len(), w.columns.len());
        for (gc, wc) in g.columns.iter().zip(&w.columns) {
            prop_assert!(
                columns_bitwise_eq(gc, wc),
                "column mismatch: {:?} vs {:?}",
                gc,
                wc
            );
        }
    }
    Ok(())
}

proptest! {
    /// Normalized-key aggregation (all modes, multi-type group keys)
    /// matches the BTreeMap-of-ScalarKey oracle bit for bit.
    #[test]
    fn bound_aggregate_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        key_mask in 1usize..16,
    ) {
        let keys: Vec<String> = ["ki", "ks", "kf", "kb"]
            .iter()
            .enumerate()
            .filter(|(i, _)| key_mask & (1 << i) != 0)
            .map(|(_, k)| k.to_string())
            .collect();
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("v"), "s"),
            AggExpr::new(AggFunc::Avg, Expr::col("v"), "a"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "c"),
            AggExpr::new(AggFunc::Min, Expr::col("v"), "mn"),
            AggExpr::new(AggFunc::Max, Expr::col("v"), "mx"),
        ];
        let input = vec![mixed_stream(&rows, split)];
        for mode in [AggMode::Single, AggMode::Partial] {
            let op = Op::HashAggregate {
                group_by: keys.clone(),
                aggregates: aggs.clone(),
                mode,
            };
            assert_chain_matches_oracle(std::slice::from_ref(&op), &input)?;
        }
        // Final mode consumes partials produced by the (oracle) partial op.
        let partial = Op::HashAggregate {
            group_by: keys.clone(),
            aggregates: aggs.clone(),
            mode: AggMode::Partial,
        };
        let (partials, _) =
            execute_ops(std::slice::from_ref(&partial), &input, &UdfRegistry::new()).unwrap();
        let final_op = Op::HashAggregate {
            group_by: keys,
            aggregates: aggs,
            mode: AggMode::Final,
        };
        assert_chain_matches_oracle(std::slice::from_ref(&final_op), &[partials])?;
    }

    /// Dictionary-probe hash join (string and int keys, plus a cross-type
    /// probe that must match nothing) agrees with the oracle join.
    #[test]
    fn bound_join_matches_scalar_oracle(
        probe in mixed_rows(),
        build in prop::collection::vec((-4i64..4, "[a-c]{0,3}", -100.0f64..100.0), 1..30),
        key_is_string in any::<bool>(),
    ) {
        let build_schema = Schema::new(vec![
            Field::new("bi", DataType::Int64),
            Field::new("bs", DataType::Utf8),
            Field::new("bv", DataType::Float64),
        ]);
        let build_batch = Batch::new(
            build_schema,
            vec![
                Column::Int64(build.iter().map(|r| r.0).collect()),
                Column::Utf8(build.iter().map(|r| r.1.clone()).collect()),
                Column::Float64(build.iter().map(|r| r.2).collect()),
            ],
        );
        let (build_key, probe_key) = if key_is_string {
            ("bs", "ks")
        } else {
            ("bi", "ki")
        };
        let ops = vec![Op::HashJoin {
            build_input: 1,
            build_key: build_key.into(),
            probe_key: probe_key.into(),
            build_columns: vec!["bv".into()],
        }];
        let inputs = vec![mixed_stream(&probe, 17), vec![build_batch.clone()]];
        assert_chain_matches_oracle(&ops, &inputs)?;
        // Cross-type probe (int probe column vs string build key): both
        // paths must yield zero matches rather than coercing.
        let cross = vec![Op::HashJoin {
            build_input: 1,
            build_key: "bs".into(),
            probe_key: "ki".into(),
            build_columns: vec!["bv".into()],
        }];
        assert_chain_matches_oracle(&cross, &inputs)?;
    }

    /// Normalized-key multi-column sort (mixed asc/desc) is byte-identical
    /// to the oracle's Vec<ScalarKey> comparator sort.
    #[test]
    fn bound_sort_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        desc_mask in 0usize..8,
    ) {
        let by = vec![
            ("ks".to_string(), desc_mask & 1 == 0),
            ("kf".to_string(), desc_mask & 2 == 0),
            ("ki".to_string(), desc_mask & 4 == 0),
        ];
        let ops = vec![Op::Sort { by }];
        assert_chain_matches_oracle(&ops, &[mixed_stream(&rows, split)])?;
    }

    /// Filter/Project through the selection-vector path match the oracle,
    /// including stats-visible row counts downstream of a Limit.
    #[test]
    fn bound_filter_project_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        threshold in -4i64..4,
        n in 0u64..50,
    ) {
        let ops = vec![
            Op::Filter {
                predicate: Expr::col("ki").cmp(CmpOp::Ge, Expr::lit_i64(threshold)),
            },
            Op::Project {
                exprs: vec![
                    NamedExpr::new("ks", Expr::col("ks")),
                    NamedExpr::new(
                        "v2",
                        Expr::col("v").arith(ArithOp::Mul, Expr::lit_f64(2.0)),
                    ),
                ],
            },
            Op::Limit { n },
        ];
        assert_chain_matches_oracle(&ops, &[mixed_stream(&rows, split)])?;
    }

    /// Vectorised column-at-a-time partitioning equals the row-at-a-time
    /// ScalarKey partitioner, bucket for bucket.
    #[test]
    fn vectorised_partition_matches_scalar_oracle(
        rows in mixed_rows(),
        n_buckets in 1usize..12,
        key_mask in 1usize..16,
    ) {
        let keys: Vec<String> = ["ki", "ks", "kf", "kb"]
            .iter()
            .enumerate()
            .filter(|(i, _)| key_mask & (1 << i) != 0)
            .map(|(_, k)| k.to_string())
            .collect();
        let batch = mixed_batch(&rows);
        let got = partition_batch(&batch, &keys, n_buckets).unwrap();
        let want = partition_batch_scalar(&batch, &keys, n_buckets).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.columns.len(), w.columns.len());
            for (gc, wc) in g.columns.iter().zip(&w.columns) {
                prop_assert!(columns_bitwise_eq(gc, wc));
            }
        }
    }

    /// KeyBuffer's fixed-width byte order is exactly ScalarKey's Ord for
    /// every key-type mix: sorting by normalized words equals sorting by
    /// the legacy comparator.
    #[test]
    fn key_buffer_order_matches_scalar_key_ord(
        rows in mixed_rows(),
        key_mask in 1usize..16,
    ) {
        let cols: Vec<usize> = (0..4).filter(|i| key_mask & (1 << i) != 0).collect();
        let batch = mixed_batch(&rows);
        let kb = KeyBuffer::encode(&[&batch], &cols);
        let got: Vec<usize> = kb.sort_indices().into_iter().map(|i| i as usize).collect();
        let scalar_rows: Vec<Vec<ScalarKey>> = (0..batch.num_rows())
            .map(|r| {
                cols.iter()
                    .map(|&c| ScalarKey::from_column(&batch.columns[c], r))
                    .collect()
            })
            .collect();
        let mut want: Vec<usize> = (0..batch.num_rows()).collect();
        want.sort_by(|&a, &b| scalar_rows[a].cmp(&scalar_rows[b]));
        prop_assert_eq!(got, want);
        // Decode round-trips through the dictionary.
        for (gi, &c) in cols.iter().enumerate() {
            for r in 0..batch.num_rows() {
                prop_assert_eq!(
                    ScalarKey::try_from_value(&kb.value(r, gi)).unwrap(),
                    scalar_rows[r][gi].clone()
                );
            }
        }
    }
}

/// `ki < threshold` over `mixed_rows` (ki in -4..4): threshold -4 selects
/// nothing, threshold 4 selects everything, values between split the
/// stream — exercising empty, full, and partial selection vectors.
fn ki_filter(threshold: i64) -> Op {
    Op::Filter {
        predicate: Expr::col("ki").cmp(CmpOp::Lt, Expr::lit_i64(threshold)),
    }
}

proptest! {
    /// A selection vector produced by Filter feeds the aggregate's
    /// accumulators directly (no materialise between operators); every
    /// mode must still match the filter-then-aggregate oracle bit for bit.
    #[test]
    fn filtered_aggregate_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        threshold in -4i64..=4,
    ) {
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("v"), "s"),
            AggExpr::new(AggFunc::Avg, Expr::col("v"), "a"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "c"),
            AggExpr::new(AggFunc::Min, Expr::col("v"), "mn"),
            AggExpr::new(AggFunc::Max, Expr::col("v"), "mx"),
        ];
        let input = vec![mixed_stream(&rows, split)];
        for mode in [AggMode::Single, AggMode::Partial] {
            let ops = vec![
                ki_filter(threshold),
                Op::HashAggregate {
                    group_by: vec!["ks".into(), "kf".into()],
                    aggregates: aggs.clone(),
                    mode,
                },
            ];
            assert_chain_matches_oracle(&ops, &input)?;
        }
    }

    /// Filter on the probe side of a join: the probe is encoded and hashed
    /// under the selection vector, never gathered.
    #[test]
    fn filtered_join_probe_matches_scalar_oracle(
        probe in mixed_rows(),
        build in prop::collection::vec((-4i64..4, -100.0f64..100.0), 1..30),
        split in 0usize..60,
        threshold in -4i64..=4,
    ) {
        let build_schema = Schema::new(vec![
            Field::new("bi", DataType::Int64),
            Field::new("bv", DataType::Float64),
        ]);
        let build_batch = Batch::new(
            build_schema,
            vec![
                Column::Int64(build.iter().map(|r| r.0).collect()),
                Column::Float64(build.iter().map(|r| r.1).collect()),
            ],
        );
        let ops = vec![
            ki_filter(threshold),
            Op::HashJoin {
                build_input: 1,
                build_key: "bi".into(),
                probe_key: "ki".into(),
                build_columns: vec!["bv".into()],
            },
        ];
        let inputs = vec![mixed_stream(&probe, split), vec![build_batch]];
        assert_chain_matches_oracle(&ops, &inputs)?;
    }

    /// Filter feeding the sort's key encoder under the selection vector:
    /// the gather happens once, at emission, in sorted order.
    #[test]
    fn filtered_sort_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        threshold in -4i64..=4,
        desc_mask in 0usize..4,
    ) {
        let ops = vec![
            ki_filter(threshold),
            Op::Sort {
                by: vec![
                    ("ks".to_string(), desc_mask & 1 == 0),
                    ("kf".to_string(), desc_mask & 2 == 0),
                ],
            },
        ];
        assert_chain_matches_oracle(&ops, &[mixed_stream(&rows, split)])?;
    }

    /// Limit over a Rows selection truncates the vector in place; over a
    /// full selection it degrades to a Prefix — either way the emitted
    /// rows match the oracle's slice semantics, including n = 0 and
    /// n >= survivors.
    #[test]
    fn limit_over_selection_matches_scalar_oracle(
        rows in mixed_rows(),
        split in 0usize..60,
        threshold in -4i64..=4,
        n in 0u64..70,
    ) {
        let ops = vec![ki_filter(threshold), Op::Limit { n }];
        assert_chain_matches_oracle(&ops, &[mixed_stream(&rows, split)])?;
    }
}
