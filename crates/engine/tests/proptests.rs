//! Property-based tests over the engine's core invariants.

use proptest::prelude::*;
use skyrise_data::{Batch, Column, DataType, Field, Schema, Value};
use skyrise_engine::expr::{evaluate_mask, CmpOp, Expr, UdfRegistry};
use skyrise_engine::operators::{execute_ops, partition_batch, ScalarKey};
use skyrise_engine::plan::{AggExpr, AggFunc, AggMode, Op};
use std::collections::HashMap;
use std::rc::Rc;

fn kv_batch(keys: &[i64], vals: &[f64]) -> Batch {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]);
    Batch::new(
        schema,
        vec![Column::Int64(keys.to_vec()), Column::Float64(vals.to_vec())],
    )
}

proptest! {
    /// Hash join produces exactly the nested-loop join's multiset of pairs.
    #[test]
    fn hash_join_equals_nested_loop(
        probe_keys in prop::collection::vec(0i64..20, 0..60),
        build_keys in prop::collection::vec(0i64..20, 1..40),
    ) {
        let probe_vals: Vec<f64> = (0..probe_keys.len()).map(|i| i as f64).collect();
        let build_vals: Vec<f64> = (0..build_keys.len()).map(|i| 1000.0 + i as f64).collect();
        let probe = kv_batch(&probe_keys, &probe_vals);
        let build_schema = Schema::new(vec![
            Field::new("bk", DataType::Int64),
            Field::new("bv", DataType::Float64),
        ]);
        let build = Batch::new(
            build_schema,
            vec![Column::Int64(build_keys.clone()), Column::Float64(build_vals.clone())],
        );
        let ops = vec![Op::HashJoin {
            build_input: 1,
            build_key: "bk".into(),
            probe_key: "k".into(),
            build_columns: vec!["bv".into()],
        }];
        let (out, _) = execute_ops(&ops, &[vec![probe], vec![build]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);

        // Nested loop reference.
        let mut expect: Vec<(f64, f64)> = Vec::new();
        for (pi, pk) in probe_keys.iter().enumerate() {
            for (bi, bk) in build_keys.iter().enumerate() {
                if pk == bk {
                    expect.push((probe_vals[pi], build_vals[bi]));
                }
            }
        }
        let mut got: Vec<(f64, f64)> = (0..out.num_rows())
            .map(|i| (out.column("v").as_f64()[i], out.column("bv").as_f64()[i]))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, expect);
    }

    /// Distributed aggregation (partial per split, then final) equals
    /// single-phase aggregation, however the rows are split.
    #[test]
    fn partial_final_agg_is_split_invariant(
        keys in prop::collection::vec(0i64..8, 1..80),
        split in 1usize..79,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64 * 1.5 + 1.0).collect();
        let all = kv_batch(&keys, &vals);
        let split = split.min(keys.len());
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, Expr::col("v"), "s"),
            AggExpr::new(AggFunc::Avg, Expr::col("v"), "a"),
            AggExpr::new(AggFunc::Count, Expr::lit_i64(1), "c"),
            AggExpr::new(AggFunc::Min, Expr::col("k"), "mn"),
            AggExpr::new(AggFunc::Max, Expr::col("k"), "mx"),
        ];
        let udfs = UdfRegistry::new();
        let partial = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs.clone(),
            mode: AggMode::Partial,
        };
        let final_op = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs.clone(),
            mode: AggMode::Final,
        };
        let single = Op::HashAggregate {
            group_by: vec!["k".into()],
            aggregates: aggs,
            mode: AggMode::Single,
        };
        let (p1, _) = execute_ops(
            std::slice::from_ref(&partial),
            &[vec![all.slice(0, split)]],
            &udfs,
        )
        .unwrap();
        let (p2, _) = execute_ops(
            std::slice::from_ref(&partial),
            &[vec![all.slice(split, all.num_rows())]],
            &udfs,
        )
        .unwrap();
        let merged: Vec<Batch> = p1.into_iter().chain(p2).collect();
        let (fin, _) = execute_ops(std::slice::from_ref(&final_op), &[merged], &udfs).unwrap();
        let (want, _) = execute_ops(std::slice::from_ref(&single), &[vec![all]], &udfs).unwrap();
        prop_assert_eq!(&fin[0].columns, &want[0].columns);
    }

    /// Shuffle partitioning is complete, disjoint, and key-stable: the
    /// same key never lands in two buckets, and bucket assignment is
    /// independent of which rows accompany it.
    #[test]
    fn partitioning_is_complete_and_stable(
        keys in prop::collection::vec(-50i64..50, 0..120),
        n_buckets in 1usize..12,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let parts = partition_batch(&batch, &["k".to_string()], n_buckets).unwrap();
        prop_assert_eq!(parts.len(), n_buckets);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        prop_assert_eq!(total, batch.num_rows());
        // Key-to-bucket mapping is a function.
        let mut seen: HashMap<i64, usize> = HashMap::new();
        for (b, part) in parts.iter().enumerate() {
            for &k in part.column("k").as_i64() {
                if let Some(&prev) = seen.get(&k) {
                    prop_assert_eq!(prev, b, "key {} split across buckets", k);
                }
                seen.insert(k, b);
            }
        }
        // Stability: a singleton batch maps each key to the same bucket.
        for (&k, &bucket) in &seen {
            let single = kv_batch(&[k], &[0.0]);
            let p = partition_batch(&single, &["k".to_string()], n_buckets).unwrap();
            prop_assert_eq!(p[bucket].num_rows(), 1);
        }
    }

    /// Boolean algebra over masks: De Morgan and double negation.
    #[test]
    fn expression_boolean_algebra(
        keys in prop::collection::vec(-10i64..10, 1..50),
        threshold in -10i64..10,
    ) {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let udfs = UdfRegistry::new();
        let a = Expr::col("k").cmp(CmpOp::Lt, Expr::lit_i64(threshold));
        let b = Expr::col("v").cmp(CmpOp::Ge, Expr::lit_f64(0.0));
        let not_and = Expr::Not(Box::new(Expr::And(vec![a.clone(), b.clone()])));
        let or_nots = Expr::Or(vec![
            Expr::Not(Box::new(a.clone())),
            Expr::Not(Box::new(b.clone())),
        ]);
        prop_assert_eq!(
            evaluate_mask(&not_and, &batch, &udfs).unwrap(),
            evaluate_mask(&or_nots, &batch, &udfs).unwrap()
        );
        let double_neg = Expr::Not(Box::new(Expr::Not(Box::new(a.clone()))));
        prop_assert_eq!(
            evaluate_mask(&double_neg, &batch, &udfs).unwrap(),
            evaluate_mask(&a, &batch, &udfs).unwrap()
        );
    }

    /// Sort emits an ordered permutation of its input.
    #[test]
    fn sort_is_an_ordered_permutation(
        keys in prop::collection::vec(-100i64..100, 1..80),
        ascending in any::<bool>(),
    ) {
        let vals: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let ops = vec![Op::Sort {
            by: vec![("k".into(), ascending)],
        }];
        let (out, _) = execute_ops(&ops, &[vec![batch]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);
        let sorted = out.column("k").as_i64();
        prop_assert_eq!(sorted.len(), keys.len());
        for w in sorted.windows(2) {
            if ascending {
                prop_assert!(w[0] <= w[1]);
            } else {
                prop_assert!(w[0] >= w[1]);
            }
        }
        let mut a = keys.clone();
        let mut b = sorted.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// ScalarKey partition hashing is deterministic and value-faithful.
    #[test]
    fn scalar_keys_round_trip(x in any::<i64>(), s in "[a-z]{0,12}") {
        let ki = ScalarKey::try_from_value(Value::Int64(x)).unwrap();
        prop_assert_eq!(ki.partition_hash(), ScalarKey::try_from_value(Value::Int64(x)).unwrap().partition_hash());
        prop_assert_eq!(ki.into_value(), Value::Int64(x));
        let ks = ScalarKey::try_from_value(Value::Utf8(s.clone())).unwrap();
        prop_assert_eq!(ks.into_value(), Value::Utf8(s));
    }

    /// Limit keeps exactly min(n, rows) leading rows.
    #[test]
    fn limit_takes_a_prefix(
        keys in prop::collection::vec(any::<i64>(), 0..60),
        n in 0u64..80,
    ) {
        let vals: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        let batch = kv_batch(&keys, &vals);
        let ops = vec![Op::Limit { n }];
        let (out, _) = execute_ops(&ops, &[vec![batch]], &UdfRegistry::new()).unwrap();
        let out = Batch::concat(&out);
        let take = (n as usize).min(keys.len());
        prop_assert_eq!(out.num_rows(), take);
        prop_assert_eq!(out.column("k").as_i64(), &keys[..take]);
    }
}

/// Deterministic (non-proptest) regression: group columns survive a full
/// partial -> shuffle-partition -> final round trip.
#[test]
fn distributed_agg_through_partitioning() {
    let keys: Vec<i64> = (0..200).map(|i| i % 7).collect();
    let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let batch = kv_batch(&keys, &vals);
    let udfs = UdfRegistry::new();
    let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col("v"), "s")];
    let partial = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs.clone(),
        mode: AggMode::Partial,
    };
    // Two "workers" aggregate halves, partition by key into 3 buckets.
    let (w1, _) = execute_ops(
        std::slice::from_ref(&partial),
        &[vec![batch.slice(0, 100)]],
        &udfs,
    )
    .unwrap();
    let (w2, _) = execute_ops(
        std::slice::from_ref(&partial),
        &[vec![batch.slice(100, 200)]],
        &udfs,
    )
    .unwrap();
    let mut buckets: Vec<Vec<Batch>> = vec![Vec::new(); 3];
    for out in [w1, w2] {
        for b in out {
            for (i, p) in partition_batch(&b, &["k".to_string()], 3)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                buckets[i].push(p);
            }
        }
    }
    // Three "reducers" finalise their buckets; union must equal single-phase.
    let final_op = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs.clone(),
        mode: AggMode::Final,
    };
    let mut got: Vec<(i64, f64)> = Vec::new();
    for bucket in buckets {
        let (fin, _) = execute_ops(std::slice::from_ref(&final_op), &[bucket], &udfs).unwrap();
        for i in 0..fin[0].num_rows() {
            got.push((
                fin[0].column("k").as_i64()[i],
                fin[0].column("s").as_f64()[i],
            ));
        }
    }
    got.sort_by_key(|a| a.0);
    let single = Op::HashAggregate {
        group_by: vec!["k".into()],
        aggregates: aggs,
        mode: AggMode::Single,
    };
    let (want, _) = execute_ops(std::slice::from_ref(&single), &[vec![batch]], &udfs).unwrap();
    let want_rows: Vec<(i64, f64)> = (0..want[0].num_rows())
        .map(|i| {
            (
                want[0].column("k").as_i64()[i],
                want[0].column("s").as_f64()[i],
            )
        })
        .collect();
    assert_eq!(got, want_rows);
    let _ = Rc::new(());
}
