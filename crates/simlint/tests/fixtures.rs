//! Fixture tests: seeded violations of every simlint rule, asserting the
//! linter reports them, classifies them correctly, honors suppressions,
//! and rejects suppressions without justifications.

use simlint::rules::LintOptions;
use simlint::{lint_source, Diagnostic};

fn lint(src: &str) -> Vec<Diagnostic> {
    lint_source("fixture.rs", src, &LintOptions::default())
}

fn rules_of(diags: &[Diagnostic], suppressed: bool) -> Vec<&'static str> {
    diags
        .iter()
        .filter(|d| d.suppressed == suppressed)
        .map(|d| d.rule)
        .collect()
}

#[test]
fn det001_for_loop_over_hashmap() {
    let diags = lint(
        r#"
        use std::collections::HashMap;
        fn f() {
            let mut m: HashMap<u32, u32> = HashMap::new();
            m.insert(1, 2);
            for (k, v) in &m {
                println!("{k} {v}");
            }
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET001"), "{diags:?}");
}

#[test]
fn det001_iter_methods() {
    for method in ["iter", "keys", "values", "drain", "into_iter", "retain"] {
        let src = format!(
            r#"
            fn f(m: std::collections::HashMap<u32, u32>) -> Vec<u32> {{
                let mut m = m;
                m.{method}().map(|x| x.0).collect()
            }}
            "#
        );
        let diags = lint(&src);
        assert!(
            rules_of(&diags, false).contains(&"DET001"),
            "{method}: {diags:?}"
        );
    }
}

#[test]
fn det001_not_fired_when_sorted() {
    let diags = lint(
        r#"
        fn f(m: std::collections::HashMap<u32, u32>) -> Vec<u32> {
            let mut ks: Vec<u32> = m.keys().copied().collect::<std::collections::BTreeSet<_>>()
                .into_iter().collect();
            ks
        }
        "#,
    );
    assert!(
        !rules_of(&diags, false).contains(&"DET001"),
        "sorted collection launders hash order: {diags:?}"
    );
}

#[test]
fn det001_not_fired_for_btreemap() {
    let diags = lint(
        r#"
        fn f(m: &std::collections::BTreeMap<u32, u32>) -> u32 {
            let mut acc = 0;
            for (_, v) in m.iter() { acc += v; }
            acc
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn det002_wall_clock_and_entropy() {
    let cases = [
        "fn f() { let t = std::time::Instant::now(); }",
        "fn f() { let t = std::time::SystemTime::now(); }",
        "use std::time::{Duration, Instant};",
        "fn f() { let mut r = rand::thread_rng(); }",
        "fn f() -> u8 { rand::random() }",
        "fn f() -> String { std::env::var(\"X\").unwrap() }",
        "fn f() { let r = rand::rngs::OsRng; }",
    ];
    for src in cases {
        let diags = lint(src);
        assert!(
            rules_of(&diags, false).contains(&"DET002"),
            "{src}: {diags:?}"
        );
    }
}

#[test]
fn det002_off_for_cli_shell() {
    let opts = LintOptions {
        wall_clock: false,
        ..LintOptions::default()
    };
    let diags = lint_source(
        "fixture.rs",
        "fn f() { let t = std::time::Instant::now(); }",
        &opts,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn det002_ignores_unrelated_idents() {
    // An enum variant named `Instant` (as in skyrise_sim::trace::EventKind)
    // is not a wall-clock read.
    let diags = lint(
        r#"
        enum EventKind { Span, Instant }
        fn f(k: &EventKind) -> bool { matches!(k, EventKind::Instant) }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn det003_borrow_guard_across_await() {
    let diags = lint(
        r#"
        async fn f(cell: &std::cell::RefCell<u32>, ctx: &SimCtx) {
            let guard = cell.borrow_mut();
            ctx.sleep(SimDuration::from_secs(1)).await;
            drop(guard);
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET003"), "{diags:?}");
}

#[test]
fn det003_temporary_across_await() {
    let diags = lint(
        r#"
        async fn f(cell: &std::cell::RefCell<Inner>, ctx: &SimCtx) {
            let x = run(cell.borrow().config).await;
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET003"), "{diags:?}");
}

#[test]
fn det003_scoped_borrow_is_clean() {
    let diags = lint(
        r#"
        async fn f(cell: &std::cell::RefCell<u32>, ctx: &SimCtx) {
            let v = {
                let g = cell.borrow();
                *g
            };
            ctx.sleep(SimDuration::from_secs(v as u64)).await;
            let w = cell.borrow_mut().take();
            ctx.sleep(SimDuration::from_secs(w)).await;
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn det003_dropped_borrow_is_clean() {
    let diags = lint(
        r#"
        async fn f(cell: &std::cell::RefCell<u32>, ctx: &SimCtx) {
            let guard = cell.borrow_mut();
            drop(guard);
            ctx.sleep(SimDuration::from_secs(1)).await;
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn det003_match_scrutinee_across_await() {
    let diags = lint(
        r#"
        async fn f(cell: &std::cell::RefCell<State>, ctx: &SimCtx) {
            match cell.borrow().mode {
                Mode::A => ctx.sleep(SimDuration::from_secs(1)).await,
                Mode::B => {}
            }
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET003"), "{diags:?}");
}

#[test]
fn det004_float_accumulation_from_hash() {
    let diags = lint(
        r#"
        fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {
            m.values().sum()
        }
        "#,
    );
    let unsup = rules_of(&diags, false);
    assert!(unsup.contains(&"DET004"), "{diags:?}");
    assert!(
        !unsup.contains(&"DET001"),
        "accumulation reported as DET004, not DET001: {diags:?}"
    );
}

#[test]
fn det004_count_is_order_insensitive() {
    let diags = lint(
        r#"
        fn f(m: &std::collections::HashMap<u32, f64>) -> usize {
            m.values().count()
        }
        "#,
    );
    let unsup = rules_of(&diags, false);
    assert!(!unsup.contains(&"DET001"), "{diags:?}");
    assert!(!unsup.contains(&"DET004"), "{diags:?}");
}

#[test]
fn det005_construction() {
    let diags = lint(
        r#"
        fn f() {
            let m = std::collections::HashMap::<String, u32>::new();
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET005"), "{diags:?}");
}

#[test]
fn det005_import_alone_is_clean() {
    let diags = lint("use std::collections::HashMap;");
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn cfg_test_module_is_exempt() {
    let diags = lint(
        r#"
        fn sim_facing() {}

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let t0 = std::time::Instant::now();
                let mut m = std::collections::HashMap::new();
                m.insert(1, 2);
                for (k, v) in &m { let _ = (k, v); }
            }
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn cfg_not_test_is_not_exempt() {
    let diags = lint(
        r#"
        #[cfg(not(test))]
        fn f() { let t = std::time::Instant::now(); }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET002"), "{diags:?}");
}

#[test]
fn suppression_same_line_and_line_above() {
    let diags = lint(
        r#"
        fn f() {
            let m = std::collections::HashMap::<u32, u32>::new(); // simlint: allow(DET005): fixture.
            // simlint: allow(DET005): also a fixture.
            let n = std::collections::HashSet::<u32>::new();
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
    assert_eq!(
        rules_of(&diags, true),
        vec!["DET005", "DET005"],
        "{diags:?}"
    );
    assert!(diags.iter().all(|d| d.justification.is_some()));
}

#[test]
fn suppression_multiline_comment_block() {
    let diags = lint(
        r#"
        fn f() {
            // simlint: allow(DET005): this justification is long enough to
            // wrap onto a second comment line before the statement.
            let m = std::collections::HashMap::<u32, u32>::new();
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
}

#[test]
fn suppression_does_not_leak_to_other_lines() {
    let diags = lint(
        r#"
        fn f() {
            // simlint: allow(DET005): covers only the next line.
            let a = std::collections::HashMap::<u32, u32>::new();
            let b = std::collections::HashMap::<u32, u32>::new();
        }
        "#,
    );
    assert_eq!(rules_of(&diags, false), vec!["DET005"], "{diags:?}");
}

#[test]
fn suppression_wrong_rule_does_not_apply() {
    let diags = lint(
        r#"
        fn f() {
            // simlint: allow(DET001): wrong rule id for this finding.
            let m = std::collections::HashMap::<u32, u32>::new();
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET005"), "{diags:?}");
}

#[test]
fn file_scope_suppression() {
    let diags = lint(
        r#"
        // simlint: allow-file(DET005): fixture-wide waiver.
        fn f() {
            let a = std::collections::HashMap::<u32, u32>::new();
        }
        fn g() {
            let b = std::collections::HashSet::<u32>::new();
        }
        "#,
    );
    assert!(rules_of(&diags, false).is_empty(), "{diags:?}");
    assert_eq!(rules_of(&diags, true).len(), 2, "{diags:?}");
}

#[test]
fn suppression_without_justification_is_sl000() {
    for bad in [
        "// simlint: allow(DET005)",
        "// simlint: allow(DET005):",
        "// simlint: allow(DET005):   ",
        "// simlint: allow(): empty rules",
        "// simlint: deny(DET005): no such verb",
    ] {
        let src =
            format!("{bad}\nfn f() {{ let m = std::collections::HashMap::<u32, u32>::new(); }}");
        let diags = lint(&src);
        assert!(
            rules_of(&diags, false).contains(&"SL000"),
            "{bad}: {diags:?}"
        );
        // And the malformed directive must NOT suppress the finding.
        assert!(
            rules_of(&diags, false).contains(&"DET005"),
            "{bad}: {diags:?}"
        );
    }
}

#[test]
fn prose_mentioning_simlint_is_not_a_directive() {
    let diags = lint(
        r#"
        //! Suppress findings with `// simlint: allow(<rule>)` comments.
        fn f() {}
        "#,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn json_output_shape() {
    let diags = lint("fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }");
    let json = simlint::render_json(&diags);
    assert!(json.contains("\"rule\": \"DET005\""), "{json}");
    assert!(json.contains("\"unsuppressed\": 1"), "{json}");
    assert!(json.contains("\"file\": \"fixture.rs\""), "{json}");
}

#[test]
fn diagnostics_carry_position() {
    let diags = lint("\n\nfn f() { let m = std::collections::HashMap::<u32, u32>::new(); }");
    let d = diags.iter().find(|d| d.rule == "DET005").unwrap();
    assert_eq!(d.line, 3);
    assert_eq!(d.file, "fixture.rs");
}

#[test]
fn det006_thread_apis() {
    for src in [
        "fn f() { std::thread::spawn(|| {}); }",
        "fn f() { let n = std::thread::available_parallelism(); }",
        "fn f() { thread::scope(|s| { s.spawn(|| {}); }); }",
        "use std::thread;\nfn f() {}",
        "use std::thread::spawn;\nfn f() {}",
    ] {
        let diags = lint(src);
        assert!(
            rules_of(&diags, false).contains(&"DET006"),
            "{src}: {diags:?}"
        );
    }
}

#[test]
fn det006_off_for_harness_crates() {
    let opts = LintOptions {
        threads: false,
        ..LintOptions::default()
    };
    let diags = lint_source("fixture.rs", "fn f() { std::thread::spawn(|| {}); }", &opts);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn det006_ignores_unrelated_thread_idents() {
    // A local named `thread` or a non-std `thread` module must not fire.
    let diags = lint(
        r#"
        fn f(pool: &WorkerPool) { let thread = pool.current(); thread.run(); }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"DET006"), "{diags:?}");
}

#[test]
fn det006_suppressible_with_justification() {
    let diags = lint(
        "// simlint: allow(DET006): host-side worker fan-out, not sim code.\n\
         fn f() { std::thread::spawn(|| {}); }",
    );
    assert!(rules_of(&diags, true).contains(&"DET006"), "{diags:?}");
    assert!(!rules_of(&diags, false).contains(&"DET006"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// DET007: taint chains from nondeterministic sources to sinks.

#[test]
fn det007_source_directly_in_sink_args() {
    let diags = lint(
        r#"
        fn f(h: &Histogram) {
            h.observe(std::time::Instant::now().elapsed().as_secs_f64());
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

#[test]
fn det007_taint_through_let_binding() {
    let diags = lint(
        r#"
        use std::time::Instant;
        fn f(h: &Histogram) {
            let started = Instant::now();
            let elapsed = started.elapsed().as_secs_f64();
            h.record(elapsed);
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

#[test]
fn det007_taint_through_helper_return() {
    // `stamp()` returns a wall-clock-derived value; the crate summary must
    // mark it so the sink call in `g` is flagged.
    let diags = lint(
        r#"
        fn stamp() -> u128 {
            std::time::Instant::now().elapsed().as_nanos()
        }
        fn g(s: &Sanitizer) {
            s.checkpoint(stamp());
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

#[test]
fn det007_sort_key_from_environment() {
    let diags = lint(
        r#"
        fn f(v: &mut Vec<String>) {
            v.sort_by_key(|_| std::env::var("SALT").unwrap_or_default());
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

#[test]
fn det007_virtual_time_is_clean() {
    // ctx.now() is virtual time — no taint source involved.
    let diags = lint(
        r#"
        fn f(ctx: &SimCtx, h: &Histogram) {
            let started = ctx.now();
            h.record(ctx.now().duration_since(started).as_secs_f64());
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

#[test]
fn det007_suppressible_with_justification() {
    let diags = lint(
        r#"
        fn f(h: &Histogram) {
            // simlint: allow(DET007, DET002): host-profiling probe, never in the sim digest.
            h.observe(std::time::Instant::now().elapsed().as_secs_f64());
        }
        "#,
    );
    assert!(rules_of(&diags, true).contains(&"DET007"), "{diags:?}");
    assert!(!rules_of(&diags, false).contains(&"DET007"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// DET008: hash containers hidden behind aliases / re-exports.

#[test]
fn det008_use_alias_construction() {
    let diags = lint(
        r#"
        use std::collections::HashMap as Map;
        fn f() {
            let m: Map<u32, u32> = Map::new();
            for (k, v) in &m {
                let _ = (k, v);
            }
        }
        "#,
    );
    let unsup = rules_of(&diags, false);
    assert!(unsup.contains(&"DET008"), "{diags:?}");
    // The alias also feeds the order-sensitivity rule on the `for` loop.
    assert!(unsup.contains(&"DET001"), "{diags:?}");
}

#[test]
fn det008_cross_file_reexport() {
    let files = vec![
        (
            "crates/demo/src/lib.rs".to_string(),
            "pub mod util;\npub use util::FastMap;\n".to_string(),
        ),
        (
            "crates/demo/src/util.rs".to_string(),
            "pub use std::collections::HashMap as FastMap;\n".to_string(),
        ),
        (
            "crates/demo/src/work.rs".to_string(),
            "use crate::FastMap;\nfn f() { let m: FastMap<u32, u32> = FastMap::new(); }\n"
                .to_string(),
        ),
    ];
    let diags = simlint::lint_files(&files);
    let hit = diags
        .iter()
        .any(|d| d.rule == "DET008" && d.file == "crates/demo/src/work.rs" && !d.suppressed);
    assert!(hit, "{diags:?}");
}

#[test]
fn det008_suppressible_with_justification() {
    let diags = lint(
        r#"
        use std::collections::HashMap as Map;
        fn f() {
            // simlint: allow(DET008, DET005): interning table, keyed access only.
            let m: Map<u32, u32> = Map::new();
            let _ = m;
        }
        "#,
    );
    assert!(rules_of(&diags, true).contains(&"DET008"), "{diags:?}");
    assert!(!rules_of(&diags, false).contains(&"DET008"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// CONS001/CONS002: conservation contracts.

fn lint_net(src: &str) -> Vec<Diagnostic> {
    let opts = LintOptions {
        conservation: Some(simlint::rules::ConsScope::Net),
        ..LintOptions::default()
    };
    lint_source("crates/net/src/fixture.rs", src, &opts)
}

fn lint_metered(src: &str) -> Vec<Diagnostic> {
    let opts = LintOptions {
        conservation: Some(simlint::rules::ConsScope::Metered),
        ..LintOptions::default()
    };
    lint_source("crates/storage/src/fixture.rs", src, &opts)
}

#[test]
fn cons001_transfer_bypasses_ledger() {
    let diags = lint_net(
        r#"
        pub async fn push(peer: &Peer, bytes: u64) {
            peer.send(bytes).await;
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"CONS001"), "{diags:?}");
}

#[test]
fn cons001_ledger_routed_is_clean() {
    let diags = lint_net(
        r#"
        pub async fn push(limiter: &RateLimiter, peer: &Peer, bytes: u64) {
            limiter.consume(bytes).await;
            peer.send(bytes).await;
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"CONS001"), "{diags:?}");
}

#[test]
fn cons001_field_access_does_not_count_as_routing() {
    // `self.consume` as a bare field read must not satisfy the contract;
    // only a call does.
    let diags = lint_net(
        r#"
        pub async fn push(peer: &Peer, bytes: u64) {
            let budget = peer.consume;
            peer.send(bytes + budget).await;
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"CONS001"), "{diags:?}");
}

#[test]
fn cons001_suppressible_with_justification() {
    let diags = lint_net(
        r#"
        // simlint: allow(CONS001): loopback copy, no fabric bandwidth consumed.
        pub async fn push(peer: &Peer, bytes: u64) {
            peer.send(bytes).await;
        }
        "#,
    );
    assert!(rules_of(&diags, true).contains(&"CONS001"), "{diags:?}");
    assert!(!rules_of(&diags, false).contains(&"CONS001"), "{diags:?}");
}

#[test]
fn cons002_unmetered_billable_op() {
    let diags = lint_metered(
        r#"
        pub async fn get(&self, key: &str) -> Blob {
            let logical_bytes = self.size_of(key);
            self.wire(logical_bytes).await
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"CONS002"), "{diags:?}");
}

#[test]
fn cons002_metered_op_is_clean() {
    let diags = lint_metered(
        r#"
        pub async fn get(&self, key: &str) -> Blob {
            let logical_bytes = self.size_of(key);
            self.core.meter_request(false, logical_bytes, false);
            self.wire(logical_bytes).await
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"CONS002"), "{diags:?}");
}

#[test]
fn cons002_private_helper_is_exempt() {
    // The metering contract binds the public surface; private helpers are
    // metered by their callers.
    let diags = lint_metered(
        r#"
        async fn wire(&self, logical_bytes: u64) {
            self.nic.push(logical_bytes).await;
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"CONS002"), "{diags:?}");
}

#[test]
fn cons002_metered_through_same_crate_helper() {
    // `billed()` transitively calls the meter, so `get` routing through it
    // satisfies the contract.
    let diags = lint_metered(
        r#"
        fn billed(&self, logical_bytes: u64) {
            self.core.meter_request(false, logical_bytes, false);
        }
        pub async fn get(&self, key: &str) -> Blob {
            let logical_bytes = self.size_of(key);
            self.billed(logical_bytes);
            self.wire(logical_bytes).await
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"CONS002"), "{diags:?}");
}

#[test]
fn cons002_suppressible_with_justification() {
    let diags = lint_metered(
        r#"
        // simlint: allow(CONS002): metered by every caller before streaming.
        pub async fn stream(&self, logical_bytes: u64) {
            self.wire(logical_bytes).await;
        }
        "#,
    );
    assert!(rules_of(&diags, true).contains(&"CONS002"), "{diags:?}");
    assert!(!rules_of(&diags, false).contains(&"CONS002"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// SL001: stale suppressions.

#[test]
fn sl001_stale_suppression_is_an_error() {
    let diags = lint(
        r#"
        // simlint: allow(DET005): once masked a HashMap that is long gone.
        fn f() {
            let m = std::collections::BTreeMap::<u32, u32>::new();
            let _ = m;
        }
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"SL001"), "{diags:?}");
}

#[test]
fn sl001_live_suppression_is_quiet() {
    let diags = lint(
        r#"
        fn f() {
            // simlint: allow(DET005): keyed probe table, order never observed.
            let m = std::collections::HashMap::<u32, u32>::new();
            let _ = m;
        }
        "#,
    );
    assert!(!rules_of(&diags, false).contains(&"SL001"), "{diags:?}");
    assert!(rules_of(&diags, true).contains(&"DET005"), "{diags:?}");
}

#[test]
fn sl001_cannot_be_suppressed() {
    let diags = lint(
        r#"
        // simlint: allow(SL001): trying to hide the audit.
        // simlint: allow(DET005): stale directive below the shield.
        fn f() {}
        "#,
    );
    let sl001s = diags
        .iter()
        .filter(|d| d.rule == "SL001" && !d.suppressed)
        .count();
    assert!(sl001s >= 1, "{diags:?}");
}

#[test]
fn sl001_file_scope_stale_suppression() {
    let diags = lint(
        r#"
        // simlint: allow-file(DET006): fixture once spawned threads.
        fn f() {}
        "#,
    );
    assert!(rules_of(&diags, false).contains(&"SL001"), "{diags:?}");
}
