//! Property-based hardening of the simlint lexer: whatever bytes come in,
//! tokenization terminates, positions stay inside the source, and the
//! easily-confused literal forms (lifetimes vs char literals, raw strings,
//! inner attributes) never swallow trailing code.

use proptest::prelude::*;
use simlint::lexer::{lex, TokKind};

proptest! {
    /// Lexing arbitrary text never panics, and every token's `[pos, end)`
    /// span lies inside the source (measured in chars, like the lexer).
    #[test]
    fn lex_any_input_stays_in_bounds(src in ".{0,200}") {
        let n = src.chars().count();
        for t in lex(&src) {
            prop_assert!(t.pos <= t.end, "{t:?}");
            prop_assert!(t.end <= n, "{t:?} vs len {n}");
            prop_assert!(t.line >= 1, "{t:?}");
        }
    }

    /// Tokens come out in source order and never overlap.
    #[test]
    fn tokens_are_ordered_and_disjoint(src in ".{0,200}") {
        let toks = lex(&src);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].pos, "{:?} then {:?}", w[0], w[1]);
        }
    }

    /// A char literal consumes exactly itself: the statement after it is
    /// still visible to the rules.
    #[test]
    fn char_literal_does_not_swallow_the_tail(c in "[a-zA-Z0-9]") {
        let src = format!("let a = '{c}'; let marker = 1;");
        let toks = lex(&src);
        prop_assert!(toks.iter().any(|t| t.kind == TokKind::CharLit), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident("marker")), "{toks:?}");
    }

    /// A lifetime lexes as a lifetime, not as an unterminated char literal
    /// that would eat the rest of the signature.
    #[test]
    fn lifetimes_are_not_char_literals(name in "[a-z][a-z0-9_]{0,8}") {
        let src = format!("fn f<'{name}>(x: &'{name} u32) -> &'{name} u32 {{ marker(x) }}");
        let toks = lex(&src);
        prop_assert!(
            toks.iter().any(|t| t.kind == TokKind::Lifetime),
            "{toks:?}"
        );
        prop_assert!(!toks.iter().any(|t| t.kind == TokKind::CharLit), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident("marker")), "{toks:?}");
    }

    /// Byte raw strings terminate at their own closing quote; code after
    /// them still lexes.
    #[test]
    fn byte_raw_strings_are_contained(inner in "[a-zA-Z0-9 ]{0,40}") {
        let src = format!("let s = br#\"{inner}\"#;\nlet marker = 1;");
        let toks = lex(&src);
        prop_assert!(toks.iter().any(|t| t.kind == TokKind::Str), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident("marker")), "{toks:?}");
    }

    /// Inner attributes (`#![...]`) and `cfg_attr` forms lex cleanly and
    /// leave following items intact.
    #[test]
    fn inner_attributes_do_not_derail(ident in "[a-z][a-z0-9_]{0,8}") {
        let src = format!(
            "#![allow(dead_code)]\n#[cfg_attr(test, derive(Debug))]\nstruct {ident};\nfn marker() {{}}"
        );
        let toks = lex(&src);
        prop_assert!(toks.iter().any(|t| t.is_ident(&ident)), "{toks:?}");
        prop_assert!(toks.iter().any(|t| t.is_ident("marker")), "{toks:?}");
    }
}
