//! CLI for the simlint determinism auditor.
//!
//! ```text
//! cargo run -p simlint                    # human-readable report
//! cargo run -p simlint -- --json          # machine-readable, for CI
//! cargo run -p simlint -- --sarif         # SARIF 2.1.0 to stdout
//! cargo run -p simlint -- --fix           # apply machine-applicable fixes
//! cargo run -p simlint -- --fix --check   # exit 1 if --fix would change files
//! cargo run -p simlint -- --root /path/to/workspace
//! ```
//!
//! Exit status is non-zero iff any non-suppressed diagnostic was found
//! (lint modes), or iff `--fix --check` found pending fixes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut sarif = false;
    let mut fix = false;
    let mut check = false;
    let mut show_suppressed = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--fix" => fix = true,
            "--check" => check = true,
            "--suppressed" => show_suppressed = true,
            "--root" => {
                let Some(r) = args.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(r);
            }
            "--help" | "-h" => {
                eprintln!(
                    "simlint: determinism auditor\n\
                     usage: simlint [--json | --sarif] [--suppressed] [--root <workspace>]\n\
                     \x20      simlint --fix [--check] [--root <workspace>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if check && !fix {
        eprintln!("--check only applies to --fix");
        return ExitCode::from(2);
    }

    // If invoked from a crate directory (cargo run -p simlint runs at the
    // workspace root, but be forgiving), look upward for `crates/`.
    if !root.join("crates").is_dir() {
        if let Ok(cwd) = std::env::current_dir() {
            let mut cur = cwd.as_path();
            loop {
                if cur.join("crates").is_dir() {
                    root = cur.to_path_buf();
                    break;
                }
                match cur.parent() {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
    }

    if fix {
        let changed = match simlint::fix::fix_workspace(&root, check) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simlint: cannot fix workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        for f in &changed {
            println!("{}: {f}", if check { "would fix" } else { "fixed" });
        }
        if check && !changed.is_empty() {
            eprintln!(
                "simlint --fix --check: {} file(s) need fixes",
                changed.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "simlint --fix: {} file(s) {}",
            changed.len(),
            if check { "pending" } else { "rewritten" }
        );
        return ExitCode::SUCCESS;
    }

    let diags = match simlint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let unsuppressed: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    if sarif {
        print!("{}", simlint::sarif::render_sarif(&diags));
    } else if json {
        print!("{}", simlint::render_json(&diags));
    } else {
        for d in &diags {
            if d.suppressed && !show_suppressed {
                continue;
            }
            println!("{d}");
        }
        let n_sup = diags.len() - unsuppressed.len();
        println!(
            "simlint: {} unsuppressed finding(s), {} suppressed",
            unsuppressed.len(),
            n_sup
        );
    }
    if unsuppressed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
