//! CLI for the simlint determinism auditor.
//!
//! ```text
//! cargo run -p simlint              # human-readable report
//! cargo run -p simlint -- --json    # machine-readable, for CI
//! cargo run -p simlint -- --root /path/to/workspace
//! ```
//!
//! Exit status is non-zero iff any non-suppressed diagnostic was found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut show_suppressed = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--suppressed" => show_suppressed = true,
            "--root" => {
                let Some(r) = args.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(r);
            }
            "--help" | "-h" => {
                eprintln!(
                    "simlint: determinism auditor\n\
                     usage: simlint [--json] [--suppressed] [--root <workspace>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    // If invoked from a crate directory (cargo run -p simlint runs at the
    // workspace root, but be forgiving), look upward for `crates/`.
    if !root.join("crates").is_dir() {
        if let Ok(cwd) = std::env::current_dir() {
            let mut cur = cwd.as_path();
            loop {
                if cur.join("crates").is_dir() {
                    root = cur.to_path_buf();
                    break;
                }
                match cur.parent() {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
    }

    let diags = match simlint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let unsuppressed: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    if json {
        print!("{}", simlint::render_json(&diags));
    } else {
        for d in &diags {
            if d.suppressed && !show_suppressed {
                continue;
            }
            println!("{d}");
        }
        let n_sup = diags.len() - unsuppressed.len();
        println!(
            "simlint: {} unsuppressed finding(s), {} suppressed",
            unsuppressed.len(),
            n_sup
        );
    }
    if unsuppressed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
