//! A minimal Rust tokenizer sufficient for determinism linting.
//!
//! This is deliberately *not* a full Rust lexer: it only needs to
//! distinguish identifiers, punctuation, literals, and comments, and to
//! attribute each token to a source line. Comments are retained as tokens
//! because suppression directives (`// simlint: allow(...)`) live in them.
//!
//! The tricky cases that matter for not mis-tokenizing real code:
//! * nested block comments (`/* /* */ */`)
//! * string escapes (`"\""`) and raw strings (`r#"..."#`, any `#` depth)
//! * byte strings (`b"..."`, `br#"..."#`)
//! * lifetimes vs char literals (`'a` vs `'x'`, `'\n'`)

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; text carried in [`Token::text`].
    Ident,
    /// Single punctuation character; the char carried in [`Token::text`].
    Punct,
    /// `// ...` comment (including doc comments); text is the full comment.
    LineComment,
    /// `/* ... */` comment; text is the full comment.
    BlockComment,
    /// String / byte-string / raw-string literal (content discarded).
    Str,
    /// Char or byte-char literal.
    CharLit,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text, punctuation char, or comment body; empty for
    /// literals whose content the linter never inspects.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Char offset of the token's first character in the source (the
    /// source viewed as a `Vec<char>`); used by `--fix` to splice edits.
    pub pos: usize,
    /// Char offset one past the token's last character.
    pub end: usize,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// True for line or block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// If the cursor sits on a raw/byte string opener (`r"`, `r#"`, `b"`,
    /// `br#"` ...), return `(hash_count, is_raw)`.
    fn raw_string_open(&self) -> Option<(usize, bool)> {
        let mut off = 0;
        match self.peek() {
            Some('b') => {
                off += 1;
                if self.peek_at(off) == Some('r') {
                    off += 1;
                } else if self.peek_at(off) == Some('"') {
                    return Some((0, false)); // b"..."
                } else {
                    return None;
                }
            }
            Some('r') => off += 1,
            _ => return None,
        }
        let mut hashes = 0;
        while self.peek_at(off) == Some('#') {
            hashes += 1;
            off += 1;
        }
        if self.peek_at(off) == Some('"') {
            Some((hashes, true))
        } else {
            None
        }
    }

    fn eat_plain_string(&mut self) {
        // Opening quote already consumed.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    fn eat_raw_string(&mut self, hashes: usize) {
        // Cursor is on the prefix; consume up to and including the opening quote.
        while let Some(c) = self.bump() {
            if c == '"' {
                break;
            }
        }
        // Consume until `"` followed by `hashes` '#'s.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    fn eat_line_comment(&mut self) -> String {
        let mut text = String::from("//");
        self.bump();
        self.bump();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    fn eat_block_comment(&mut self) -> String {
        let mut text = String::new();
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            if c == '/' && self.peek() == Some('*') {
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek() == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
            }
        }
        text
    }

    fn eat_number(&mut self) {
        let eat_body = |lx: &mut Lexer| {
            while let Some(c) = lx.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    lx.bump();
                } else {
                    break;
                }
            }
        };
        eat_body(self);
        // Fractional part — but not range syntax `1..5` or method call `1.max(..)`.
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            eat_body(self);
        }
    }

    /// Char literal vs lifetime disambiguation; cursor on the `'`.
    fn eat_quote(&mut self) -> TokKind {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: consume the escape, then everything
                // up to the closing quote. Multi-char escapes (`'\u{1F600}'`,
                // `'\x7f'`) must not leak their tail into the token stream —
                // a leaked `'` would start a phantom literal and mis-lex the
                // rest of the file.
                self.bump(); // the backslash
                self.bump(); // the escape head (n, u, x, ', \, ...)
                let mut steps = 0;
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    if c == '\n' || steps > 10 {
                        break; // malformed; don't run away
                    }
                    self.bump();
                    steps += 1;
                }
                TokKind::CharLit
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek_at(1) != Some('\'') => {
                // Lifetime: `'a`, `'static`.
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokKind::Lifetime
            }
            _ => {
                // `'x'` (or malformed input — consume defensively).
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokKind::CharLit
            }
        }
    }
}

/// Tokenize Rust source. Never fails: unrecognized bytes become punctuation.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out: Vec<Token> = Vec::new();
    let mut push = |lx: &Lexer, kind: TokKind, text: String, line: u32, pos: usize| {
        out.push(Token {
            kind,
            text,
            line,
            pos,
            end: lx.pos,
        });
    };
    while let Some(c) = lx.peek() {
        let line = lx.line;
        let pos = lx.pos;
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        if c == '/' && lx.peek_at(1) == Some('/') {
            let text = lx.eat_line_comment();
            push(&lx, TokKind::LineComment, text, line, pos);
            continue;
        }
        if c == '/' && lx.peek_at(1) == Some('*') {
            let text = lx.eat_block_comment();
            push(&lx, TokKind::BlockComment, text, line, pos);
            continue;
        }
        if let Some((hashes, raw)) = lx.raw_string_open() {
            if raw {
                lx.eat_raw_string(hashes);
            } else {
                lx.bump(); // b
                lx.bump(); // "
                lx.eat_plain_string();
            }
            push(&lx, TokKind::Str, String::new(), line, pos);
            continue;
        }
        if c == '"' {
            lx.bump();
            lx.eat_plain_string();
            push(&lx, TokKind::Str, String::new(), line, pos);
            continue;
        }
        if c == '\'' {
            let kind = lx.eat_quote();
            push(&lx, kind, String::new(), line, pos);
            continue;
        }
        if c == 'b' && lx.peek_at(1) == Some('\'') {
            lx.bump(); // b
            lx.eat_quote();
            push(&lx, TokKind::CharLit, String::new(), line, pos);
            continue;
        }
        if c.is_ascii_digit() {
            lx.eat_number();
            push(&lx, TokKind::Num, String::new(), line, pos);
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while let Some(c) = lx.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
            push(&lx, TokKind::Ident, text, line, pos);
            continue;
        }
        lx.bump();
        push(&lx, TokKind::Punct, c.to_string(), line, pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("let x = a.b;");
        assert!(toks[0].is_ident("let"));
        assert!(toks[1].is_ident("x"));
        assert!(toks[2].is_punct('='));
        assert!(toks[4].is_punct('.'));
        assert!(toks[6].is_punct(';'));
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("'a 'x' '\\n' 'static"),
            vec![
                TokKind::Lifetime,
                TokKind::CharLit,
                TokKind::CharLit,
                TokKind::Lifetime
            ]
        );
    }

    #[test]
    fn raw_strings_do_not_leak() {
        let toks = lex(r###"let s = r#"HashMap "quoted""#; x"###);
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("code"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("0..10 1.5 0xff_u64 x.0");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Num).count(),
            5 // 0, 10, 1.5, 0xff_u64, 0 (tuple index)
        );
    }

    #[test]
    fn multi_char_escapes_do_not_leak() {
        // `'\u{1F600}'` once leaked `{1F600}'` back into the stream, turning
        // the closing quote into a phantom literal that swallowed real code.
        for src in [
            "let c = '\\u{1F600}'; HashMap",
            "let c = '\\x7f'; HashMap",
            "let c = '\\''; HashMap",
            "let c = '\\\\'; HashMap",
        ] {
            let toks = lex(src);
            assert!(
                toks.iter().any(|t| t.is_ident("HashMap")),
                "{src}: {toks:?}"
            );
            assert_eq!(
                toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
                1,
                "{src}: {toks:?}"
            );
        }
    }

    #[test]
    fn inner_attributes_and_cfg_attr_lex_cleanly() {
        let toks = lex("#![warn(missing_docs)]\n#[cfg_attr(test, allow(dead_code))]\nfn f() {}");
        assert!(toks.iter().any(|t| t.is_ident("cfg_attr")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
        // `#!` must stay two separate puncts on line 1.
        assert!(toks[0].is_punct('#') && toks[1].is_punct('!'));
    }

    #[test]
    fn byte_raw_strings_do_not_leak() {
        for src in [
            r####"let s = br#"HashMap "inner""#; x"####,
            r####"let s = br"HashMap"; x"####,
            r####"let s = br##"nested "# quote"##; x"####,
        ] {
            let toks = lex(src);
            assert!(toks.iter().any(|t| t.is_ident("x")), "{src}: {toks:?}");
            assert!(
                !toks.iter().any(|t| t.is_ident("HashMap")),
                "{src}: {toks:?}"
            );
        }
    }

    #[test]
    fn token_positions_slice_the_source() {
        let src = "let x = foo(1);";
        let chars: Vec<char> = src.chars().collect();
        for t in lex(src) {
            let slice: String = chars[t.pos..t.end].iter().collect();
            if t.kind == TokKind::Ident {
                assert_eq!(slice, t.text, "{t:?}");
            }
            assert!(t.end > t.pos);
        }
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex(r#"("a\"b", 'q', b"bytes")"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            1
        );
    }
}
