//! SARIF 2.1.0 export, so CI can surface findings as GitHub code-scanning
//! annotations. Hand-rolled JSON (the crate is dependency-free by design);
//! the shape sticks to the minimal schema subset the code-scanning ingester
//! requires: one run, tool.driver with rule metadata, results with physical
//! locations, and `suppressions` entries for in-source allows.

use crate::{json_escape, Diagnostic, Severity};

/// Rule metadata for `tool.driver.rules`. Keep in sync with [`crate::rules`].
const RULES: &[(&str, &str)] = &[
    (
        "DET001",
        "Hash container iterated without an intervening sort",
    ),
    (
        "DET002",
        "Wall-clock, entropy, or environment API in sim-facing code",
    ),
    ("DET003", "RefCell borrow held across an await point"),
    (
        "DET004",
        "Order-sensitive float accumulation from a hash container",
    ),
    ("DET005", "Hash container construction in sim-facing code"),
    ("DET006", "Host thread API in sim-facing code"),
    (
        "DET007",
        "Nondeterministic value reaches a determinism-critical sink",
    ),
    (
        "DET008",
        "Hash container hidden behind an alias or re-export",
    ),
    ("CONS001", "Byte transfer bypasses the token-bucket ledger"),
    ("CONS002", "Billable operation bypasses the usage meter"),
    ("SL000", "Malformed simlint suppression directive"),
    ("SL001", "Stale simlint suppression masks no diagnostic"),
];

fn rule_index(rule: &str) -> Option<usize> {
    RULES.iter().position(|(id, _)| *id == rule)
}

/// Render diagnostics as a SARIF 2.1.0 document.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(concat!(
        "{\n",
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/",
        "master/Schemata/sarif-schema-2.1.0.json\",\n",
        "  \"version\": \"2.1.0\",\n",
        "  \"runs\": [\n",
        "    {\n",
        "      \"tool\": {\n",
        "        \"driver\": {\n",
        "          \"name\": \"simlint\",\n",
        "          \"informationUri\": \"https://example.invalid/simlint\",\n",
        "          \"version\": \"0.2.0\",\n",
        "          \"rules\": ["
    ));
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            json_escape(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n",
            d.rule
        ));
        if let Some(ri) = rule_index(d.rule) {
            out.push_str(&format!("          \"ruleIndex\": {ri},\n"));
        }
        out.push_str(&format!(
            "          \"level\": \"{level}\",\n          \"message\": {{\"text\": \"{}\"}},\n",
            json_escape(&d.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \"region\": \
             {{\"startLine\": {}}}}}}}],\n",
            json_escape(&d.file),
            d.line.max(1)
        ));
        if d.suppressed {
            let just = d.justification.as_deref().unwrap_or("");
            out.push_str(&format!(
                "          \"suppressions\": [{{\"kind\": \"inSource\", \
                 \"justification\": \"{}\"}}]\n",
                json_escape(just)
            ));
        } else {
            out.push_str("          \"suppressions\": []\n");
        }
        out.push_str("        }");
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    #[test]
    fn sarif_has_required_shape() {
        let mut d = Diagnostic::new(
            "crates/sim/src/lib.rs",
            12,
            "DET001",
            Severity::Error,
            "iteration over \"hash\" container".to_string(),
        );
        d.suppressed = true;
        d.justification = Some("keyed only".to_string());
        let doc = render_sarif(&[d]);
        for needle in [
            "\"version\": \"2.1.0\"",
            "\"name\": \"simlint\"",
            "\"ruleId\": \"DET001\"",
            "\"startLine\": 12",
            "\"kind\": \"inSource\"",
            "\\\"hash\\\"", // message is escaped
            "sarif-schema-2.1.0.json",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        // Every rule id appears in driver metadata.
        for (id, _) in RULES {
            assert!(doc.contains(&format!("\"id\": \"{id}\"")));
        }
    }

    #[test]
    fn empty_diags_render_empty_results() {
        let doc = render_sarif(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
    }
}
