//! Intra-function dataflow: def-use taint chains from nondeterministic
//! sources to determinism-critical sinks (DET007), and conservation lints
//! that demand byte transfers and billable operations route through the
//! token-bucket ledger / usage meter (CONS001/CONS002).
//!
//! The analysis is linear-scan over the token stream, guided by the parse
//! layer's function extents and the module graph's alias maps:
//!
//! * a **source** is a wall-clock, entropy, or environment read — including
//!   one hidden behind a `use ... as` alias, or behind a *same-crate helper*
//!   whose return value derives from a source (computed as a bounded
//!   fixpoint over function summaries);
//! * taint propagates through `let` bindings and plain assignments;
//! * a **sink** is a call that folds its arguments into reproducibility
//!   state: sanitizer checkpoints, telemetry digests/records, trace
//!   attributes, and sort keys.

use crate::graph::FileCtx;
use crate::lexer::{TokKind, Token};
use crate::parse::{matching_close, FnItem, ParsedFile};
use crate::rules::ConsScope;
use crate::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Calls that fold their arguments into reproducibility-critical state.
pub const TAINT_SINKS: &[&str] = &[
    "checkpoint",
    "digest",
    "fold_digest",
    "record",
    "record_duration",
    "record_span",
    "observe",
    "attr",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "sort_by",
];

/// Token-bucket ledger APIs (the net conservation contract).
pub const NET_LEDGER: &[&str] = &["consume", "grant", "try_admit", "assert_conserved"];

/// Usage-meter / CoreMetrics APIs (the storage/compute billing contract).
pub const METER_APIS: &[&str] = &[
    "meter_request",
    "record_storage_request",
    "record_op",
    "record_lambda",
    "record_invocation",
    "meter",
];

/// Idents whose presence marks a function as moving a byte payload.
fn is_bytes_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident && (t.text == "bytes" || t.text.ends_with("_bytes"))
}

/// Scan `[lo, hi)` for a taint source or an already-tainted name. Returns
/// the line and a short description of the first hit.
fn region_taint(
    code: &[&Token],
    lo: usize,
    hi: usize,
    tainted: &BTreeSet<String>,
    ctx: &FileCtx,
) -> Option<(u32, String)> {
    let hi = hi.min(code.len());
    let mut i = lo;
    while i < hi {
        let t = code[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let next_is = |off: usize, c: char| code.get(i + off).map(|t| t.is_punct(c)) == Some(true);
        let path_then = |target: &[&str]| -> bool {
            next_is(1, ':')
                && next_is(2, ':')
                && code
                    .get(i + 3)
                    .map(|t| t.kind == TokKind::Ident && target.contains(&t.text.as_str()))
                    == Some(true)
        };
        if tainted.contains(name) {
            return Some((t.line, format!("`{name}` (tainted binding)")));
        }
        if (name == "Instant" || name == "SystemTime") && path_then(&["now"]) {
            return Some((t.line, format!("`{name}::now()` wall-clock read")));
        }
        if let Some(canon) = ctx.time_aliases.get(name) {
            if path_then(&["now"]) {
                return Some((t.line, format!("`{name}::now()` (alias of `{canon}`)")));
            }
        }
        if crate::graph::ENTROPY_APIS.contains(&name) {
            return Some((t.line, format!("`{name}` entropy draw")));
        }
        if let Some(canon) = ctx.entropy_aliases.get(name) {
            return Some((
                t.line,
                format!("`{name}` (alias of `{canon}`) entropy draw"),
            ));
        }
        if name == "random"
            && i >= 3
            && code[i - 1].is_punct(':')
            && code[i - 2].is_punct(':')
            && code[i - 3].is_ident("rand")
        {
            return Some((t.line, "`rand::random` entropy draw".to_string()));
        }
        if name == "env"
            && path_then(&["var", "var_os", "vars", "vars_os", "args", "args_os"])
            && !next_is(1, '!')
        {
            return Some((t.line, "`std::env` host-environment read".to_string()));
        }
        if ctx.taint_fns.contains(name) && next_is(1, '(') {
            return Some((
                t.line,
                format!("helper `{name}()` returns a wall-clock/entropy-derived value"),
            ));
        }
        i += 1;
    }
    None
}

/// Analyze one function body: emit DET007 for tainted values reaching
/// sinks, and report whether the function's return value is tainted.
fn analyze_fn(
    file: &str,
    code: &[&Token],
    item: &FnItem,
    ctx: &FileCtx,
    diags: Option<&mut Vec<Diagnostic>>,
) -> bool {
    let Some((body_open, body_close)) = item.body else {
        return false;
    };
    let has_ret = (item.params.1..body_open)
        .any(|i| code[i].is_punct('-') && code.get(i + 1).map(|t| t.is_punct('>')) == Some(true));
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut returns_taint = false;
    let mut local_diags: Vec<Diagnostic> = Vec::new();

    // End of the statement starting at `i`: the first `;` with all brackets
    // opened since `i` closed again (capped at the body end).
    let stmt_end = |mut i: usize| -> usize {
        let mut depth = 0i32;
        while i < body_close {
            let t = code[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return i;
            }
            i += 1;
        }
        body_close
    };

    let mut i = body_open + 1;
    let mut last_stmt_start = i;
    while i < body_close {
        let t = code[i];
        if t.is_punct(';') {
            last_stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `let [mut] NAME ... = <expr>;` — taint NAME if the RHS carries it.
        if t.is_ident("let") {
            let mut j = i + 1;
            if j < body_close && code[j].is_ident("mut") {
                j += 1;
            }
            if j < body_close && code[j].kind == TokKind::Ident {
                let name = code[j].text.clone();
                let end = stmt_end(j + 1);
                if region_taint(code, j + 1, end, &tainted, ctx).is_some() {
                    tainted.insert(name);
                }
                i = j + 1;
                continue;
            }
        }
        // Plain reassignment `NAME = <expr>` at a statement start.
        if i + 1 < body_close
            && code[i + 1].is_punct('=')
            && code.get(i + 2).map(|t| t.is_punct('=')) != Some(true)
            && i > 0
            && (code[i - 1].is_punct(';') || code[i - 1].is_punct('{') || code[i - 1].is_punct('}'))
        {
            let end = stmt_end(i + 2);
            if region_taint(code, i + 2, end, &tainted, ctx).is_some() {
                tainted.insert(t.text.clone());
            }
            i += 2;
            continue;
        }
        // Sink call: `sink(<args>)` / `.sink(<args>)`.
        if TAINT_SINKS.contains(&t.text.as_str()) && i + 1 < body_close && code[i + 1].is_punct('(')
        {
            let close = matching_close(code, i + 1);
            if let Some((line, what)) = region_taint(code, i + 2, close, &tainted, ctx) {
                local_diags.push(Diagnostic::new(
                    file,
                    t.line,
                    "DET007",
                    Severity::Error,
                    format!(
                        "nondeterministic value reaches `{}` — {} (line {line}) taints this \
                         determinism-critical sink; derive it from virtual time or seeded \
                         randomness instead",
                        t.text, what
                    ),
                ));
            }
            i = close.max(i + 1);
            continue;
        }
        // `return <expr>;`
        if t.is_ident("return") && has_ret {
            let end = stmt_end(i + 1);
            if region_taint(code, i + 1, end, &tainted, ctx).is_some() {
                returns_taint = true;
            }
        }
        i += 1;
    }
    // Tail expression: tokens from the last top-level `;` to the close brace.
    if has_ret && region_taint(code, last_stmt_start, body_close, &tainted, ctx).is_some() {
        returns_taint = true;
    }
    if let Some(d) = diags {
        d.append(&mut local_diags);
    }
    returns_taint
}

/// DET007 over every non-test function in a file.
pub fn check_taint(
    file: &str,
    code: &[&Token],
    parsed: &ParsedFile,
    ctx: &FileCtx,
    exempt: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for item in &parsed.fns {
        if exempt.get(item.kw).copied().unwrap_or(false) {
            continue;
        }
        analyze_fn(file, code, item, ctx, Some(diags));
    }
}

/// One file's inputs to the crate-level summary fixpoint.
pub struct FlowInput<'a> {
    /// Comment-filtered tokens.
    pub code: &'a [&'a Token],
    /// Parse-layer extraction.
    pub parsed: &'a ParsedFile,
    /// Alias maps (already resolved via the graph).
    pub ctx: &'a FileCtx,
}

/// Summaries for one crate's functions, keyed by bare function name
/// (collisions are accepted — the analysis stays conservative).
#[derive(Debug, Default, Clone)]
pub struct CrateSummaries {
    /// Functions whose return value derives from a nondet source.
    pub taint_fns: BTreeSet<String>,
    /// Functions that (transitively) hit the token-bucket ledger.
    pub ledger_fns: BTreeSet<String>,
    /// Functions that (transitively) hit the usage meter / CoreMetrics.
    pub meter_fns: BTreeSet<String>,
}

/// Compute function summaries for a group of same-crate files, as a bounded
/// fixpoint (taint through helper returns; ledger/meter through calls).
pub fn summarize(files: &[FlowInput<'_>]) -> CrateSummaries {
    let mut out = CrateSummaries::default();
    // Direct ledger/meter touches + call graphs.
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        for item in &f.parsed.fns {
            let Some((lo, hi)) = item.body else { continue };
            let entry = calls.entry(item.name.clone()).or_default();
            for i in lo + 1..hi.min(f.code.len()) {
                let t = f.code[i];
                if t.kind == TokKind::Ident
                    && f.code.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                {
                    entry.insert(t.text.clone());
                }
                if t.kind == TokKind::Ident
                    && f.code.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                {
                    if NET_LEDGER.contains(&t.text.as_str()) {
                        out.ledger_fns.insert(item.name.clone());
                    }
                    if METER_APIS.contains(&t.text.as_str()) {
                        out.meter_fns.insert(item.name.clone());
                    }
                }
            }
        }
    }
    // Transitive closure over calls for ledger/meter.
    for set in [&mut out.ledger_fns, &mut out.meter_fns] {
        loop {
            let mut grew = false;
            for (f, callees) in &calls {
                if !set.contains(f) && callees.iter().any(|c| set.contains(c)) {
                    set.insert(f.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
    }
    // Taint-returning helpers: bounded fixpoint re-running the body scan
    // with the growing set plugged into each file's ctx.
    for _round in 0..4 {
        let mut next: BTreeSet<String> = BTreeSet::new();
        for f in files {
            let mut ctx = f.ctx.clone();
            ctx.taint_fns = out.taint_fns.clone();
            for item in &f.parsed.fns {
                if analyze_fn("", f.code, item, &ctx, None) {
                    next.insert(item.name.clone());
                }
            }
        }
        if next == out.taint_fns {
            break;
        }
        out.taint_fns = next;
    }
    out
}

/// CONS001/CONS002: byte-moving async operations must route through the
/// ledger (net) or the meter (storage/compute).
pub fn check_conservation(
    file: &str,
    code: &[&Token],
    parsed: &ParsedFile,
    ctx: &FileCtx,
    scope: ConsScope,
    exempt: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for item in &parsed.fns {
        if exempt.get(item.kw).copied().unwrap_or(false) {
            continue;
        }
        let Some((lo, hi)) = item.body else { continue };
        if !item.is_async {
            continue;
        }
        let hi = hi.min(code.len());
        let body = &code[lo..hi];
        let awaits = body.iter().any(|t| t.is_ident("await"));
        if !awaits {
            continue;
        }
        let moves_bytes = code[item.params.0..item.params.1.min(code.len())]
            .iter()
            .any(|t| is_bytes_ident(t))
            || body.iter().any(|t| is_bytes_ident(t));
        // A body ident only counts as routing/metering when it is a *call*
        // (`name(`): bare field accesses like `self.read` must not satisfy
        // the contract just because a fn of the same name is summarized.
        let calls = |names: &[&str], set: &BTreeSet<String>| -> bool {
            body.iter().enumerate().any(|(i, t)| {
                t.kind == TokKind::Ident
                    && body.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                    && (names.contains(&t.text.as_str()) || set.contains(&t.text))
            })
        };
        match scope {
            ConsScope::Net => {
                if !moves_bytes {
                    continue;
                }
                let routed = calls(NET_LEDGER, &ctx.ledger_fns);
                if !routed {
                    diags.push(Diagnostic::new(
                        file,
                        item.line,
                        "CONS001",
                        Severity::Error,
                        format!(
                            "async fn `{}` moves a byte payload without consuming from the \
                             token-bucket ledger; every transfer must route through \
                             `RateLimiter::consume`/`grant` so conservation stays checkable",
                            item.name
                        ),
                    ));
                }
            }
            ConsScope::Metered => {
                if !item.is_pub || !(moves_bytes || item.name.contains("invoke")) {
                    continue;
                }
                let metered = calls(METER_APIS, &ctx.meter_fns);
                if !metered {
                    diags.push(Diagnostic::new(
                        file,
                        item.line,
                        "CONS002",
                        Severity::Error,
                        format!(
                            "pub async fn `{}` performs a billable operation without touching \
                             `CoreMetrics`/the pricing meter; route it through \
                             `meter_request`/`record_op`/`record_lambda` (or suppress with the \
                             call-site that meters it)",
                            item.name
                        ),
                    ));
                }
            }
        }
    }
}
