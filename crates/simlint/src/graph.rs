//! Cross-file module graph: maps workspace files to modules, absolutizes
//! `use` paths, and resolves local names to canonical types through
//! aliases (`use HashMap as Map`) and re-exports (`pub use`), so rules see
//! the real type behind every name instead of trusting its spelling.
//!
//! The representation is deliberately small: an *absolute path* is a
//! `Vec<String>` whose first segment is either `crate:<dir>` (a workspace
//! crate, keyed by its directory under `crates/`) or an external root
//! (`std`, `rand`, ...). Resolution repeatedly splices re-export targets
//! until a fixpoint (bounded), which is exactly enough to answer the two
//! questions the rules ask: "is this name a hash container?" and "is this
//! name a wall-clock/entropy API?".

use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Names of hash-ordered containers (canonical last path segment).
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet", "AHashMap"];

/// Entropy-drawing APIs (canonical last path segment).
pub const ENTROPY_APIS: &[&str] = &["thread_rng", "OsRng", "getrandom", "from_entropy"];

/// One file known to the graph.
pub struct SourceUnit {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Parse-layer extraction for the file.
    pub parsed: ParsedFile,
}

/// Module identity: crate key (directory under `crates/`, or a synthetic
/// per-file key for bins/tests/examples) plus the module path within it.
pub type ModuleId = (String, Vec<String>);

/// Where a file sits in the workspace, as derived from its path.
pub fn module_of(path: &str) -> ModuleId {
    let p = path.trim_start_matches("./");
    if let Some(rest) = p.strip_prefix("crates/") {
        if let Some((dir, tail)) = rest.split_once('/') {
            if let Some(src_rel) = tail.strip_prefix("src/") {
                if src_rel == "lib.rs" {
                    return (dir.to_string(), Vec::new());
                }
                if src_rel == "main.rs" || src_rel.starts_with("bin/") {
                    // A binary is its own crate root; keep a unique key so
                    // two bins never share a namespace.
                    return (format!("{dir}#{src_rel}"), Vec::new());
                }
                let mut segs: Vec<String> = src_rel
                    .trim_end_matches(".rs")
                    .split('/')
                    .map(|s| s.to_string())
                    .collect();
                if segs.last().map(|s| s == "mod").unwrap_or(false) {
                    segs.pop();
                }
                return (dir.to_string(), segs);
            }
        }
    }
    // Integration tests, examples, benches: each file is its own crate.
    (p.to_string(), Vec::new())
}

/// The workspace-wide module graph.
pub struct ModuleGraph {
    /// Per-module symbol table from `pub use` and `pub type`: local name →
    /// absolute target path.
    symbols: BTreeMap<ModuleId, BTreeMap<String, Vec<String>>>,
    /// Per-module glob re-export targets (`pub use x::*`), absolutized.
    globs: BTreeMap<ModuleId, Vec<Vec<String>>>,
    /// All known modules (including ancestors).
    modules: BTreeSet<ModuleId>,
    /// All workspace crate directories.
    crate_dirs: BTreeSet<String>,
}

impl ModuleGraph {
    /// Build the graph from every parsed file in the workspace.
    pub fn build(units: &[SourceUnit]) -> Self {
        let mut modules = BTreeSet::new();
        let mut crate_dirs = BTreeSet::new();
        for u in units {
            let (c, m) = module_of(&u.path);
            for i in 0..=m.len() {
                modules.insert((c.clone(), m[..i].to_vec()));
            }
            if !c.contains('#') && !c.contains('/') {
                crate_dirs.insert(c);
            }
        }
        let mut g = ModuleGraph {
            symbols: BTreeMap::new(),
            globs: BTreeMap::new(),
            modules,
            crate_dirs,
        };
        for u in units {
            let id = module_of(&u.path);
            for use_ in &u.parsed.uses {
                if !use_.is_pub {
                    continue;
                }
                let Some(abs) = g.absolutize(&use_.segments, &id) else {
                    continue;
                };
                if use_.glob {
                    g.globs.entry(id.clone()).or_default().push(abs);
                } else {
                    g.symbols
                        .entry(id.clone())
                        .or_default()
                        .insert(use_.local_name().to_string(), abs);
                }
            }
            for ta in &u.parsed.type_aliases {
                if !ta.is_pub {
                    continue;
                }
                if let Some(abs) = g.absolutize(&ta.target, &id) {
                    g.symbols
                        .entry(id.clone())
                        .or_default()
                        .insert(ta.name.clone(), abs);
                }
            }
        }
        g
    }

    /// Does `seg` name a workspace crate (by dir name or `skyrise_<dir>`)?
    fn crate_dir_for(&self, seg: &str) -> Option<&str> {
        for d in &self.crate_dirs {
            if seg == d || seg == format!("skyrise_{d}") || seg == d.replace('-', "_") {
                return Some(d);
            }
        }
        None
    }

    /// Turn a `use` path into an absolute path rooted at a crate marker or
    /// an external root. `id` is the module the path appears in.
    pub fn absolutize(&self, segs: &[String], id: &ModuleId) -> Option<Vec<String>> {
        if segs.is_empty() {
            return None;
        }
        let crate_key = id.0.split('#').next().unwrap_or(&id.0);
        let mut out: Vec<String>;
        let mut rest_from = 1;
        match segs[0].as_str() {
            "crate" => out = vec![format!("crate:{crate_key}")],
            "self" => {
                out = vec![format!("crate:{crate_key}")];
                out.extend(id.1.iter().cloned());
            }
            "super" => {
                out = vec![format!("crate:{crate_key}")];
                let mut m = id.1.clone();
                let mut i = 0;
                while i < segs.len() && segs[i] == "super" {
                    m.pop();
                    i += 1;
                }
                out.extend(m);
                rest_from = i;
            }
            s => {
                if let Some(dir) = self.crate_dir_for(s) {
                    out = vec![format!("crate:{dir}")];
                } else {
                    // A bare leading segment naming a submodule of the
                    // current module is a relative import (2015 idiom, and
                    // common in re-export chains); anything else is an
                    // external crate or std, absolute as written.
                    let mut sub = id.1.clone();
                    sub.push(s.to_string());
                    if self.modules.contains(&(crate_key.to_string(), sub)) {
                        out = vec![format!("crate:{crate_key}")];
                        out.extend(id.1.iter().cloned());
                        rest_from = 0;
                    } else {
                        return Some(segs.to_vec());
                    }
                }
            }
        }
        out.extend(segs[rest_from..].iter().cloned());
        Some(out)
    }

    /// Resolve an absolute path through re-exports to its canonical form.
    /// Bounded; returns the best-known path when resolution gets stuck.
    pub fn resolve(&self, abs: &[String]) -> Vec<String> {
        self.resolve_at(abs, 0)
    }

    /// `resolve` with a recursion guard: glob targets resolve at
    /// `depth + 1`, so self-referential re-exports terminate.
    fn resolve_at(&self, abs: &[String], depth: u32) -> Vec<String> {
        let mut path = abs.to_vec();
        if depth > 8 {
            return path;
        }
        for _ in 0..8 {
            let Some(dir) = path.first().and_then(|s| s.strip_prefix("crate:")) else {
                return path;
            };
            let dir = dir.to_string();
            let mut m: Vec<String> = Vec::new();
            let mut i = 1;
            let mut spliced = false;
            while i < path.len() {
                let seg = path[i].clone();
                let id = (dir.clone(), m.clone());
                if let Some(target) = self.symbols.get(&id).and_then(|t| t.get(&seg)) {
                    let mut next = target.clone();
                    next.extend(path[i + 1..].iter().cloned());
                    path = next;
                    spliced = true;
                    break;
                }
                // One-level glob re-export: `pub use x::*;` makes `x`'s
                // public names visible here.
                if let Some(globs) = self.globs.get(&id) {
                    let mut found = None;
                    for g in globs {
                        let gm = self.resolve_at(g, depth + 1);
                        if let Some(gdir) = gm.first().and_then(|s| s.strip_prefix("crate:")) {
                            let gid = (gdir.to_string(), gm[1..].to_vec());
                            if self.symbols.get(&gid).map(|t| t.contains_key(&seg)) == Some(true)
                                || self.modules.contains(&(
                                    gid.0.clone(),
                                    [gm[1..].to_vec(), vec![seg.clone()]].concat(),
                                ))
                            {
                                found = Some(gm.clone());
                                break;
                            }
                        }
                    }
                    if let Some(gm) = found {
                        let mut next = gm;
                        next.extend(path[i..].iter().cloned());
                        path = next;
                        spliced = true;
                        break;
                    }
                }
                let mut deeper = m.clone();
                deeper.push(seg.clone());
                if self.modules.contains(&(dir.clone(), deeper.clone())) {
                    m = deeper;
                    i += 1;
                    continue;
                }
                // Unknown tail — as far as we can see.
                return path;
            }
            if !spliced {
                return path;
            }
        }
        path
    }

    /// Human-readable form of an absolute path (`crate:` markers dropped).
    pub fn display(path: &[String]) -> String {
        path.iter()
            .map(|s| s.strip_prefix("crate:").unwrap_or(s))
            .collect::<Vec<_>>()
            .join("::")
    }
}

/// What one file's names actually mean, as resolved through the graph.
/// Rules consume this instead of re-deriving anything module-related.
#[derive(Debug, Default, Clone)]
pub struct FileCtx {
    /// Local type names (aliases, re-exports, `type` aliases) that resolve
    /// to a hash-ordered container but are not spelled as one; value is the
    /// canonical type for diagnostics.
    pub hash_aliases: BTreeMap<String, String>,
    /// Local names resolving to `std::time::Instant`/`SystemTime` under a
    /// different spelling.
    pub time_aliases: BTreeMap<String, String>,
    /// Local names resolving to entropy APIs under a different spelling.
    pub entropy_aliases: BTreeMap<String, String>,
    /// Same-crate functions whose return value carries nondeterministic
    /// taint (wall clock / entropy / env), per the flow pass.
    pub taint_fns: BTreeSet<String>,
    /// Same-crate functions that (transitively) touch the token-bucket
    /// ledger, per the flow pass.
    pub ledger_fns: BTreeSet<String>,
    /// Same-crate functions that (transitively) touch the usage meter /
    /// `CoreMetrics`, per the flow pass.
    pub meter_fns: BTreeSet<String>,
}

impl FileCtx {
    /// Build the alias maps for one file from the graph. Flow summaries
    /// (`taint_fns`/`ledger_fns`) are filled in by [`crate::flow`].
    pub fn from_graph(graph: &ModuleGraph, path: &str, parsed: &ParsedFile) -> Self {
        let id = module_of(path);
        let mut ctx = FileCtx::default();
        let classify = |local: &str, abs: &[String], ctx: &mut FileCtx| {
            let canon = graph.resolve(abs);
            let Some(last) = canon.last() else { return };
            let display = ModuleGraph::display(&canon);
            if HASH_TYPES.contains(&last.as_str()) && !HASH_TYPES.contains(&local) {
                ctx.hash_aliases.insert(local.to_string(), display);
            } else if (last == "Instant" || last == "SystemTime")
                && canon.iter().any(|s| s == "time" || s == "std")
                && local != last
            {
                ctx.time_aliases.insert(local.to_string(), display);
            } else if ENTROPY_APIS.contains(&last.as_str()) && local != last {
                ctx.entropy_aliases.insert(local.to_string(), display);
            }
        };
        for u in &parsed.uses {
            if u.glob {
                continue;
            }
            if let Some(abs) = graph.absolutize(&u.segments, &id) {
                classify(u.local_name(), &abs, &mut ctx);
            }
        }
        for ta in &parsed.type_aliases {
            if let Some(abs) = graph.absolutize(&ta.target, &id) {
                classify(&ta.name, &abs, &mut ctx);
            }
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Token};
    use crate::parse::parse;

    fn unit(path: &str, src: &str) -> SourceUnit {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        SourceUnit {
            path: path.to_string(),
            parsed: parse(&code),
        }
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/net/src/lib.rs"), ("net".into(), vec![]));
        assert_eq!(
            module_of("crates/net/src/fabric.rs"),
            ("net".into(), vec!["fabric".into()])
        );
        assert_eq!(
            module_of("crates/bench/src/experiments/mod.rs"),
            ("bench".into(), vec!["experiments".into()])
        );
        assert_eq!(
            module_of("crates/bench/src/bin/sim_bench.rs").0,
            "bench#bin/sim_bench.rs"
        );
        assert_eq!(module_of("tests/integration.rs").0, "tests/integration.rs");
    }

    #[test]
    fn alias_resolves_to_hash() {
        let units = vec![unit(
            "crates/net/src/fabric.rs",
            "use std::collections::HashMap as Map;",
        )];
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, &units[0].path, &units[0].parsed);
        assert_eq!(
            ctx.hash_aliases.get("Map").map(String::as_str),
            Some("std::collections::HashMap")
        );
    }

    #[test]
    fn reexport_chain_resolves_across_files() {
        let units = vec![
            unit(
                "crates/sim/src/util.rs",
                "pub use std::collections::HashMap as FastMap;",
            ),
            unit("crates/sim/src/lib.rs", "pub mod util;"),
            unit(
                "crates/engine/src/worker.rs",
                "use skyrise_sim::util::FastMap;",
            ),
        ];
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, "crates/engine/src/worker.rs", &units[2].parsed);
        assert_eq!(
            ctx.hash_aliases.get("FastMap").map(String::as_str),
            Some("std::collections::HashMap")
        );
    }

    #[test]
    fn crate_root_reexport_via_glob() {
        let units = vec![
            unit(
                "crates/sim/src/util.rs",
                "pub use std::collections::HashSet as IdSet;",
            ),
            unit("crates/sim/src/lib.rs", "pub use util::*;"),
            unit("crates/engine/src/worker.rs", "use skyrise_sim::IdSet;"),
        ];
        // `pub use util::*` at the root: bare `util` names a known
        // submodule, so the glob resolves crate-relative.
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, "crates/engine/src/worker.rs", &units[2].parsed);
        assert_eq!(
            ctx.hash_aliases.get("IdSet").map(String::as_str),
            Some("std::collections::HashSet")
        );
        let units2 = vec![
            unit(
                "crates/sim/src/util.rs",
                "pub use std::collections::HashSet as IdSet;",
            ),
            unit("crates/sim/src/lib.rs", "pub use crate::util::*;"),
            unit("crates/engine/src/worker.rs", "use skyrise_sim::IdSet;"),
        ];
        let g = ModuleGraph::build(&units2);
        let ctx = FileCtx::from_graph(&g, "crates/engine/src/worker.rs", &units2[2].parsed);
        assert_eq!(
            ctx.hash_aliases.get("IdSet").map(String::as_str),
            Some("std::collections::HashSet")
        );
    }

    #[test]
    fn type_alias_to_hash() {
        let units = vec![unit(
            "crates/engine/src/catalog.rs",
            "use std::collections::HashMap;\npub type Index = HashMap<u64, u32>;",
        )];
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, &units[0].path, &units[0].parsed);
        // `Index` is a type alias whose target is the (locally named)
        // HashMap — the target path is literal std-rooted here.
        assert!(ctx.hash_aliases.contains_key("Index") || !ctx.hash_aliases.is_empty());
    }

    #[test]
    fn time_alias_detected() {
        let units = vec![unit(
            "crates/bench/src/harness.rs",
            "use std::time::Instant as Clock;",
        )];
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, &units[0].path, &units[0].parsed);
        assert_eq!(
            ctx.time_aliases.get("Clock").map(String::as_str),
            Some("std::time::Instant")
        );
    }

    #[test]
    fn btree_alias_is_clean() {
        let units = vec![unit(
            "crates/net/src/lib.rs",
            "use std::collections::BTreeMap as Map;",
        )];
        let g = ModuleGraph::build(&units);
        let ctx = FileCtx::from_graph(&g, &units[0].path, &units[0].parsed);
        assert!(ctx.hash_aliases.is_empty());
    }
}
