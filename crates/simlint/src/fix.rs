//! `--fix`: machine-applicable rewrites for the container rules.
//!
//! Two strategies, tried in order per file:
//!
//! 1. **Whole-file container swap** — when a file has unsuppressed hash
//!    findings (DET001/DET004/DET005/DET008) and uses no hash-only API
//!    (`with_capacity`, `with_hasher`, `raw_entry`, ..., or the `hash_map`
//!    submodule), every `HashMap`/`HashSet` token — imports included — is
//!    rewritten to `BTreeMap`/`BTreeSet`. This fixes alias targets too
//!    (`use std::collections::HashMap as Map` keeps the alias, now ordered).
//! 2. **Per-diagnostic edits** — otherwise, apply the point fixes attached
//!    to diagnostics (e.g. an ordered collect after `.keys()`).
//!
//! Both strategies are idempotent: after a swap no hash tokens remain, and
//! an inserted ordered collect satisfies the rules on the next run, so a
//! second `--fix` pass is always a no-op.

use crate::graph::FileCtx;
use crate::lexer::{self, TokKind};
use crate::rules::LintOptions;
use crate::{Diagnostic, Edit};
use std::path::Path;

/// Hash-container APIs with no `BTreeMap`/`BTreeSet` equivalent; their
/// presence (or the `hash_map`/`hash_set` submodules') gates off the
/// whole-file swap.
const SWAP_BLOCKERS: &[&str] = &[
    "with_capacity",
    "with_hasher",
    "with_capacity_and_hasher",
    "reserve",
    "capacity",
    "shrink_to_fit",
    "raw_entry",
    "hash_map",
    "hash_set",
];

/// Apply edits to a source string. Edits are applied back-to-front;
/// overlapping edits are dropped (first-sorted wins).
pub fn apply_edits(src: &str, edits: &[Edit]) -> String {
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    sorted.sort_by_key(|e| (e.start, e.end));
    sorted.dedup_by(|a, b| a.start < b.end && b.start < a.end && !(a == b));
    sorted.dedup();
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for e in &sorted {
        if e.start < cursor || e.end > chars.len() {
            continue; // overlap or out of range: skip defensively
        }
        out.extend(&chars[cursor..e.start]);
        out.push_str(&e.text);
        cursor = e.end;
    }
    out.extend(&chars[cursor..]);
    out
}

/// Compute the fixed contents for one file, or `None` when nothing
/// machine-applicable remains. `ctx` must come from the same workspace
/// pipeline the diagnostics did.
pub fn rewrite(file: &str, src: &str, opts: &LintOptions, ctx: &FileCtx) -> Option<String> {
    let toks = lexer::lex(src);
    let diags = crate::rules::check_tokens(file, &toks, opts, ctx);
    let live: Vec<&Diagnostic> = diags.iter().filter(|d| !d.suppressed).collect();
    let has_hash_finding = live
        .iter()
        .any(|d| matches!(d.rule, "DET001" | "DET004" | "DET005" | "DET008"));
    let blocked = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && SWAP_BLOCKERS.contains(&t.text.as_str()));
    if has_hash_finding {
        if !blocked {
            let edits: Vec<Edit> = toks
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .filter_map(|t| {
                    let to = match t.text.as_str() {
                        "HashMap" => "BTreeMap",
                        "HashSet" => "BTreeSet",
                        _ => return None,
                    };
                    Some(Edit {
                        start: t.pos,
                        end: t.end,
                        text: to.to_string(),
                    })
                })
                .collect();
            if !edits.is_empty() {
                return Some(apply_edits(src, &edits));
            }
        }
    }
    // Point-fix fallback. In a swap-blocked file, replacement edits are
    // container swaps that would orphan hash-only APIs — keep insertions
    // (ordered collects) only.
    let edits: Vec<Edit> = live
        .iter()
        .filter_map(|d| d.fix.clone())
        .filter(|e| !blocked || e.start == e.end)
        .collect();
    if edits.is_empty() {
        None
    } else {
        Some(apply_edits(src, &edits))
    }
}

/// Apply (or, with `check`, only report) fixes across the workspace.
/// Returns the relative paths of files that changed / would change.
pub fn fix_workspace(root: &Path, check: bool) -> std::io::Result<Vec<String>> {
    let files = crate::read_workspace(root)?;
    let ctxs = crate::contexts_for(&files);
    let mut changed = Vec::new();
    for ((rel, src), ctx) in files.iter().zip(&ctxs) {
        let opts = crate::options_for(Path::new(rel));
        if let Some(new_src) = rewrite(rel, src, &opts, ctx) {
            if new_src != *src {
                if !check {
                    std::fs::write(root.join(rel), new_src)?;
                }
                changed.push(rel.clone());
            }
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LintOptions;

    fn fix_one(src: &str) -> Option<String> {
        let files = vec![("crates/sim/src/x.rs".to_string(), src.to_string())];
        let ctxs = crate::contexts_for(&files);
        rewrite(
            "crates/sim/src/x.rs",
            src,
            &LintOptions::default(),
            &ctxs[0],
        )
    }

    #[test]
    fn swaps_containers_and_imports() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in &m {} }";
        let fixed = fix_one(src).expect("fixable");
        assert!(!fixed.contains("HashMap"));
        assert!(fixed.contains("use std::collections::BTreeMap;"));
        assert!(fixed.contains("BTreeMap::new()"));
    }

    #[test]
    fn fix_is_idempotent() {
        let src = "use std::collections::HashSet;\n\
                   fn f() { let s = HashSet::new(); for x in &s {} }";
        let fixed = fix_one(src).expect("fixable");
        assert!(fix_one(&fixed).is_none(), "second pass must be a no-op");
    }

    #[test]
    fn capacity_api_blocks_the_swap() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let mut m: HashMap<u32, u32> = HashMap::with_capacity(8); m.reserve(4); }";
        // Nothing machine-applicable: swap gated off, no point fixes.
        assert!(fix_one(src).is_none());
    }

    #[test]
    fn keys_chain_gets_ordered_collect() {
        // `with_capacity` gates the swap, so the point fix applies instead.
        let src = "use std::collections::HashMap;\n\
                   fn g(m: &HashMap<u32, u32>) -> Vec<u32> { let mut c = HashMap::with_capacity(1); \
                   c.extend(m.iter()); m.keys().copied().collect() }";
        let fixed = fix_one(src).expect("point fix expected");
        assert!(fixed.contains(".keys().collect::<std::collections::BTreeSet<_>>().into_iter()"));
    }

    #[test]
    fn suppressed_findings_produce_no_edits() {
        let src = "use std::collections::HashMap;\n\
                   // simlint: allow(DET005, DET001): keyed probe table; order never observed.\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in &m {} }";
        assert!(fix_one(src).is_none());
    }

    #[test]
    fn apply_edits_back_to_front() {
        let src = "abcdef";
        let edits = vec![
            Edit {
                start: 4,
                end: 5,
                text: "X".into(),
            },
            Edit {
                start: 0,
                end: 1,
                text: "YY".into(),
            },
        ];
        assert_eq!(apply_edits(src, &edits), "YYbcdXf");
    }
}
