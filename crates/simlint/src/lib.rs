//! # simlint — determinism auditor for the Skyrise workspace
//!
//! Every number this repository reproduces from the paper is only as
//! trustworthy as the determinism of the discrete-event substrate. This
//! crate is the static half of the two-layer determinism auditor (the
//! runtime half is `skyrise_sim::sanitizer`): a dependency-free lint pass
//! that tokenizes every crate's sources and reports determinism hazards as
//! structured diagnostics.
//!
//! Rules (see [`rules`] for the full contract): DET001 hash-container
//! iteration, DET002 wall-clock/entropy/env APIs, DET003 RefCell borrows
//! across `.await`, DET004 order-sensitive float accumulation, DET005 hash
//! container construction, DET006 host thread APIs, SL000 malformed
//! suppressions.
//!
//! Suppress a finding with a justified comment on (or directly above) the
//! offending line:
//!
//! ```text
//! // simlint: allow(DET005): keyed access only; never iterated.
//! ```
//!
//! or for a whole file: `// simlint: allow-file(DET002): <why>`.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use rules::LintOptions;
use std::fmt;
use std::path::{Path, PathBuf};

/// Diagnostic severity. Both levels fail CI when not suppressed; the split
/// exists so output consumers can prioritize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Definite determinism hazard.
    Error,
    /// Likely hazard that may be a false positive of the heuristics.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier, e.g. `DET001`.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// True when a `// simlint: allow(...)` directive covers this finding.
    pub suppressed: bool,
    /// The suppression's justification string, when suppressed.
    pub justification: Option<String>,
}

impl Diagnostic {
    /// Construct an unsuppressed diagnostic.
    pub fn new(
        file: &str,
        line: u32,
        rule: &'static str,
        severity: Severity,
        message: String,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            severity,
            message,
            suppressed: false,
            justification: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )?;
        if self.suppressed {
            write!(
                f,
                " (suppressed: {})",
                self.justification.as_deref().unwrap_or("")
            )?;
        }
        Ok(())
    }
}

/// Lint a single source string. `file` is used only for diagnostics.
pub fn lint_source(file: &str, src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    rules::check_tokens(file, &toks, opts)
}

/// Crates whose nature requires touching the host clock/env/threads: the
/// bench harness shell (argument parsing, wall-clock progress, the parallel
/// experiment runner) and this linter itself. DET002 and DET006 are scoped
/// off for them as a crate-level allowance — everything sim-facing keeps
/// both rules on.
const HOST_SIDE_CRATES: &[&str] = &["bench", "simlint"];

/// Derive per-file options from its path within the workspace.
pub fn options_for(path: &Path) -> LintOptions {
    let mut opts = LintOptions::default();
    let p = path.to_string_lossy().replace('\\', "/");
    for c in HOST_SIDE_CRATES {
        if p.contains(&format!("crates/{c}/")) {
            opts.wall_clock = false;
            opts.threads = false;
        }
    }
    opts
}

/// Should this path be linted at all? Test trees never feed simulation
/// results, so only `crates/*/src/**` is in scope.
fn in_scope(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    if !p.ends_with(".rs") {
        return false;
    }
    for skip in ["/tests/", "/benches/", "/examples/", "/target/"] {
        if p.contains(skip) {
            return false;
        }
    }
    true
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Deterministic traversal order — the auditor practices what it preaches.
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if in_scope(&path) {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every in-scope source file under `<root>/crates`. Paths in the
/// returned diagnostics are relative to `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    let mut diags = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let opts = options_for(path);
        diags.extend(lint_source(&rel, &src, &opts));
    }
    Ok(diags)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON document for CI:
/// `{"diagnostics": [...], "unsuppressed": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"suppressed\": {}, \"message\": \"{}\"",
            json_escape(&d.file),
            d.line,
            d.rule,
            d.severity,
            d.suppressed,
            json_escape(&d.message)
        ));
        if let Some(j) = &d.justification {
            out.push_str(&format!(", \"justification\": \"{}\"", json_escape(j)));
        }
        out.push_str("}");
    }
    let unsuppressed = diags.iter().filter(|d| !d.suppressed).count();
    out.push_str(&format!("\n  ],\n  \"unsuppressed\": {unsuppressed}\n}}\n"));
    out
}
