//! # simlint — determinism auditor for the Skyrise workspace
//!
//! Every number this repository reproduces from the paper is only as
//! trustworthy as the determinism of the discrete-event substrate. This
//! crate is the static half of the two-layer determinism auditor (the
//! runtime half is `skyrise_sim::sanitizer`): a dependency-free lint pass
//! that tokenizes every crate's sources and reports determinism hazards as
//! structured diagnostics.
//!
//! The analyzer runs in two passes: a parse layer ([`parse`]) extracts
//! items from every file's token stream, a module graph ([`graph`])
//! resolves `use` aliases and re-exports to canonical types, and rules then
//! check each file against that resolved context — including an
//! intra-function dataflow pass ([`flow`]) for taint and conservation.
//!
//! Rules (see [`rules`] for the full contract): DET001 hash-container
//! iteration, DET002 wall-clock/entropy/env APIs, DET003 RefCell borrows
//! across `.await`, DET004 order-sensitive float accumulation, DET005 hash
//! container construction, DET006 host thread APIs, DET007 source-to-sink
//! taint, DET008 alias-evading hash containers, CONS001/CONS002
//! conservation (ledger/meter bypass), SL000 malformed suppressions, SL001
//! stale suppressions.
//!
//! Suppress a finding with a justified comment on (or directly above) the
//! offending line:
//!
//! ```text
//! (directive) simlint: allow(DET005): keyed access only; never iterated.
//! ```
//!
//! written as a regular `//` comment (spelled out here it would register as
//! a live directive); or for a whole file: `allow-file(DET002): <why>`.

#![warn(missing_docs)]

pub mod fix;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;

use graph::{FileCtx, ModuleGraph, SourceUnit};
use rules::{ConsScope, LintOptions};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Diagnostic severity. Both levels fail CI when not suppressed; the split
/// exists so output consumers can prioritize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Definite determinism hazard.
    Error,
    /// Likely hazard that may be a false positive of the heuristics.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A machine-applicable source rewrite: replace the char range
/// `[start, end)` (source viewed as a `Vec<char>`) with `text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Char offset of the first character to replace.
    pub start: usize,
    /// Char offset one past the last character to replace (`start` for a
    /// pure insertion).
    pub end: usize,
    /// Replacement text.
    pub text: String,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier, e.g. `DET001`.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// True when a `// simlint: allow(...)` directive covers this finding.
    pub suppressed: bool,
    /// The suppression's justification string, when suppressed.
    pub justification: Option<String>,
    /// Machine-applicable rewrite for `--fix`, when one exists.
    pub fix: Option<Edit>,
}

impl Diagnostic {
    /// Construct an unsuppressed diagnostic.
    pub fn new(
        file: &str,
        line: u32,
        rule: &'static str,
        severity: Severity,
        message: String,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            severity,
            message,
            suppressed: false,
            justification: None,
            fix: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )?;
        if self.suppressed {
            write!(
                f,
                " (suppressed: {})",
                self.justification.as_deref().unwrap_or("")
            )?;
        }
        Ok(())
    }
}

/// Build the resolved module context for a set of files: parse everything,
/// build the graph, classify each file's aliases, then run the flow pass's
/// per-crate summary fixpoint so helper-return taint and transitive
/// ledger/meter routing are visible to the rules.
fn contexts_for(files: &[(String, String)]) -> Vec<FileCtx> {
    let lexed: Vec<Vec<lexer::Token>> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let codes: Vec<Vec<&lexer::Token>> = lexed
        .iter()
        .map(|toks| toks.iter().filter(|t| !t.is_comment()).collect())
        .collect();
    let units: Vec<SourceUnit> = files
        .iter()
        .zip(&codes)
        .map(|((path, _), code)| SourceUnit {
            path: path.clone(),
            parsed: parse::parse(code),
        })
        .collect();
    let graph = ModuleGraph::build(&units);
    let mut ctxs: Vec<FileCtx> = units
        .iter()
        .map(|u| FileCtx::from_graph(&graph, &u.path, &u.parsed))
        .collect();
    // Group files by crate (bins share their dir's helpers only notionally;
    // each `#`-keyed bin is summarized with its crate so same-name helpers
    // resolve — conservative, and bins mostly call into the lib anyway).
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, u) in units.iter().enumerate() {
        let key = graph::module_of(&u.path).0;
        let key = key.split('#').next().unwrap_or(&key).to_string();
        groups.entry(key).or_default().push(i);
    }
    for idxs in groups.values() {
        let summaries = {
            let inputs: Vec<flow::FlowInput<'_>> = idxs
                .iter()
                .map(|&i| flow::FlowInput {
                    code: &codes[i],
                    parsed: &units[i].parsed,
                    ctx: &ctxs[i],
                })
                .collect();
            flow::summarize(&inputs)
        };
        for &i in idxs {
            ctxs[i].taint_fns = summaries.taint_fns.clone();
            ctxs[i].ledger_fns = summaries.ledger_fns.clone();
            ctxs[i].meter_fns = summaries.meter_fns.clone();
        }
    }
    ctxs
}

/// Lint a single source string. `file` is used only for diagnostics and
/// module-graph placement; cross-file re-exports are (by construction)
/// unresolvable here, but aliases, `type` aliases, and same-file helper
/// summaries all work.
pub fn lint_source(file: &str, src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let files = vec![(file.to_string(), src.to_string())];
    let ctxs = contexts_for(&files);
    let toks = lexer::lex(src);
    rules::check_tokens(file, &toks, opts, &ctxs[0])
}

/// Lint a set of in-memory files as one workspace (cross-file resolution
/// active). Paths should be workspace-relative, `/`-separated.
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let ctxs = contexts_for(files);
    let mut diags = Vec::new();
    for ((path, src), ctx) in files.iter().zip(&ctxs) {
        let opts = options_for(Path::new(path));
        let toks = lexer::lex(src);
        diags.extend(rules::check_tokens(path, &toks, &opts, ctx));
    }
    diags
}

/// Crates whose nature requires touching the host clock/env/threads: the
/// bench harness shell (argument parsing, wall-clock progress, the parallel
/// experiment runner) and this linter itself. DET002/DET006/DET007 are
/// scoped off for them as a crate-level allowance — everything sim-facing
/// keeps all rules on.
const HOST_SIDE_CRATES: &[&str] = &["bench", "simlint"];

/// Derive per-file options from its path within the workspace.
pub fn options_for(path: &Path) -> LintOptions {
    let mut opts = LintOptions::default();
    let p = path.to_string_lossy().replace('\\', "/");
    for c in HOST_SIDE_CRATES {
        if p.contains(&format!("crates/{c}/")) {
            opts.wall_clock = false;
            opts.threads = false;
            opts.taint = false;
        }
    }
    // Test and example trees exercise the host freely (timeouts, temp dirs)
    // but still must not leak hash iteration order into asserted results.
    if p.contains("/tests/") || p.contains("/examples/") || p.starts_with("tests/") {
        opts.wall_clock = false;
        opts.threads = false;
        opts.taint = false;
    }
    if p.contains("crates/net/src/") {
        opts.conservation = Some(ConsScope::Net);
    } else if p.contains("crates/storage/src/") || p.contains("crates/compute/src/") {
        opts.conservation = Some(ConsScope::Metered);
    }
    opts
}

/// Should this path be linted at all? Everything `.rs` under the workspace
/// is in scope — sources, integration tests, and examples — except build
/// output. (`benches/` trees are host-side by nature and none exist today.)
fn in_scope(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    if !p.ends_with(".rs") {
        return false;
    }
    for skip in ["/benches/", "/target/"] {
        if p.contains(skip) {
            return false;
        }
    }
    true
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Deterministic traversal order — the auditor practices what it preaches.
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if in_scope(&path) {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every in-scope file under `<root>/crates` (plus root-level `tests/`
/// and `examples/`, when present) as `(relative path, contents)` pairs.
pub fn read_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    Ok(out)
}

/// Lint every in-scope source file under `root`. Paths in the returned
/// diagnostics are relative to `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(lint_files(&read_workspace(root)?))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON document for CI:
/// `{"diagnostics": [...], "unsuppressed": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"suppressed\": {}, \"message\": \"{}\"",
            json_escape(&d.file),
            d.line,
            d.rule,
            d.severity,
            d.suppressed,
            json_escape(&d.message)
        ));
        if let Some(j) = &d.justification {
            out.push_str(&format!(", \"justification\": \"{}\"", json_escape(j)));
        }
        out.push_str("}");
    }
    let unsuppressed = diags.iter().filter(|d| !d.suppressed).count();
    out.push_str(&format!("\n  ],\n  \"unsuppressed\": {unsuppressed}\n}}\n"));
    out
}
