//! A lightweight parse layer over the token stream: `use` declarations,
//! `type` aliases, and function items.
//!
//! This is deliberately *not* a Rust parser. It extracts exactly the three
//! item shapes the module graph ([`crate::graph`]) and the dataflow pass
//! ([`crate::flow`]) need, and tolerates everything it does not understand
//! by skipping it. All indices refer to the *comment-filtered* code token
//! slice that the rules already operate on.

use crate::lexer::{TokKind, Token};

/// One `use` declaration leaf. Grouped imports
/// (`use a::{B, c::D as E};`) are expanded into one `UseDecl` per leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, e.g. `["std", "collections", "HashMap"]`.
    /// `self` leaves inside groups resolve to the group prefix itself.
    pub segments: Vec<String>,
    /// Rebinding from `as NAME`, if present.
    pub alias: Option<String>,
    /// Whether the declaration is `pub` (a re-export other modules see).
    pub is_pub: bool,
    /// True for glob leaves (`use a::*;`).
    pub glob: bool,
    /// 1-based source line of the leaf's last segment.
    pub line: u32,
}

impl UseDecl {
    /// The name this import binds in the local namespace.
    pub fn local_name(&self) -> &str {
        if let Some(a) = &self.alias {
            return a;
        }
        self.segments.last().map(|s| s.as_str()).unwrap_or("")
    }
}

/// A `type NAME = Target<...>;` alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Leading path of the right-hand side (generics stripped).
    pub target: Vec<String>,
    /// Whether the alias is `pub`.
    pub is_pub: bool,
    /// 1-based source line.
    pub line: u32,
}

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Whether the function is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Whether the function is `async`.
    pub is_async: bool,
    /// Code-token index of the `fn` keyword.
    pub kw: usize,
    /// Code-token index range of the parameter list `( ... )`, inclusive
    /// of both parens.
    pub params: (usize, usize),
    /// Code-token index range of the body `{ ... }`, inclusive of both
    /// braces. `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
}

/// Everything the parse layer extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `use` leaves.
    pub uses: Vec<UseDecl>,
    /// All `type` aliases.
    pub type_aliases: Vec<TypeAlias>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
}

/// Find the matching close for the opener at `open` (`(`/`[`/`{`).
/// Returns `code.len()` when unbalanced.
pub fn matching_close(code: &[&Token], open: usize) -> usize {
    let (o, c) = match code.get(open) {
        Some(t) if t.is_punct('(') => ('(', ')'),
        Some(t) if t.is_punct('[') => ('[', ']'),
        Some(t) if t.is_punct('{') => ('{', '}'),
        _ => return code.len(),
    };
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Parse one file's comment-filtered token slice.
pub fn parse(code: &[&Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.is_ident("use") {
            let is_pub = i > 0 && is_vis_end(code, i - 1);
            let end = parse_use(code, i + 1, &mut Vec::new(), is_pub, &mut out.uses);
            i = end + 1;
            continue;
        }
        if t.is_ident("type") && i + 2 < code.len() && code[i + 2].is_punct('=') {
            // `type NAME = path<...>;` (skip associated-type bounds etc.)
            if code[i + 1].kind == TokKind::Ident {
                let is_pub = i > 0 && is_vis_end(code, i - 1);
                let mut target = Vec::new();
                let mut j = i + 3;
                while j < code.len() && code[j].kind == TokKind::Ident {
                    target.push(code[j].text.clone());
                    if j + 2 < code.len() && code[j + 1].is_punct(':') && code[j + 2].is_punct(':')
                    {
                        j += 3;
                    } else {
                        break;
                    }
                }
                if !target.is_empty() {
                    out.type_aliases.push(TypeAlias {
                        name: code[i + 1].text.clone(),
                        target,
                        is_pub,
                        line: code[i + 1].line,
                    });
                }
            }
            // Skip to the end of the item.
            while i < code.len() && !code[i].is_punct(';') {
                i += 1;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") && i + 1 < code.len() && code[i + 1].kind == TokKind::Ident {
            if let Some((item, next)) = parse_fn(code, i) {
                out.fns.push(item);
                // Continue *inside* the signature so nested fns are found;
                // the body is scanned too (cheap, and nested fns are rare).
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Is the token at `i` the tail of a visibility modifier (`pub`,
/// `pub(crate)`, `pub(in path)`)?
fn is_vis_end(code: &[&Token], i: usize) -> bool {
    if code[i].is_ident("pub") {
        return true;
    }
    // `pub ( crate )` — walk back over the paren group.
    if code[i].is_punct(')') {
        let mut j = i;
        let mut depth = 0i32;
        while j > 0 {
            if code[j].is_punct(')') {
                depth += 1;
            } else if code[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    return j > 0 && code[j - 1].is_ident("pub");
                }
            }
            j -= 1;
        }
    }
    false
}

/// Parse the use tree starting at `i` (just past `use` or past a group
/// `{`/`,`). Appends leaves to `out`; returns the index of the terminating
/// `;` (or the group's own end for recursive calls).
fn parse_use(
    code: &[&Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    is_pub: bool,
    out: &mut Vec<UseDecl>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut segs: Vec<String> = Vec::new();
    while i < code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            segs.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct(':') {
            i += 1; // path separator (two tokens)
            continue;
        }
        if t.is_punct('*') {
            let mut full = prefix.clone();
            full.append(&mut segs.clone());
            out.push(UseDecl {
                segments: full,
                alias: None,
                is_pub,
                glob: true,
                line: t.line,
            });
            segs.clear();
            i += 1;
            continue;
        }
        if t.is_ident("as") || (t.kind == TokKind::Ident && t.text == "as") {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            // Group: recurse with the accumulated prefix.
            let mut inner_prefix = prefix.clone();
            inner_prefix.append(&mut segs);
            let close = matching_close(code, i);
            let mut j = i + 1;
            while j < close {
                j = parse_use_leaf(code, j, close, &inner_prefix, is_pub, out);
            }
            segs = Vec::new();
            prefix.truncate(depth_at_entry);
            i = close + 1;
            continue;
        }
        if t.is_punct(';') || t.is_punct(',') || t.is_punct('}') {
            break;
        }
        i += 1;
    }
    // Simple (non-group) declaration tail.
    if !segs.is_empty() {
        emit_leaf(code, i, prefix, segs, is_pub, out);
    }
    i
}

/// Parse one leaf inside a group, starting at `j`; returns index just past
/// the leaf's trailing `,` (or `close`).
fn parse_use_leaf(
    code: &[&Token],
    mut j: usize,
    close: usize,
    prefix: &[String],
    is_pub: bool,
    out: &mut Vec<UseDecl>,
) -> usize {
    let mut segs: Vec<String> = Vec::new();
    while j < close {
        let t = code[j];
        if t.is_ident("as") {
            // handled by emit_leaf's lookahead below
        }
        if t.is_punct('{') {
            let mut inner = prefix.to_vec();
            inner.extend(segs.iter().cloned());
            let gclose = matching_close(code, j);
            let mut k = j + 1;
            while k < gclose.min(close) {
                k = parse_use_leaf(code, k, gclose.min(close), &inner, is_pub, out);
            }
            segs.clear();
            j = gclose + 1;
            // Expect `,` next.
            if j < close && code[j].is_punct(',') {
                j += 1;
            }
            return j;
        }
        if t.is_punct(',') {
            if !segs.is_empty() {
                emit_leaf(code, j, prefix, std::mem::take(&mut segs), is_pub, out);
            }
            return j + 1;
        }
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            segs.push(t.text.clone());
        }
        if t.is_punct('*') {
            segs.push("*".to_string());
        }
        j += 1;
    }
    if !segs.is_empty() {
        emit_leaf(code, j, prefix, segs, is_pub, out);
    }
    close
}

/// Turn an accumulated segment list (last element may be an `as`-alias,
/// detected by scanning back from `end`) into a `UseDecl`.
fn emit_leaf(
    code: &[&Token],
    end: usize,
    prefix: &[String],
    mut segs: Vec<String>,
    is_pub: bool,
    out: &mut Vec<UseDecl>,
) {
    // `a::B as C` accumulates ["a", "B", "C"]; detect the `as` by checking
    // the raw token stream just before `end` for the keyword.
    let mut alias = None;
    let mut k = end;
    while k > 0 {
        k -= 1;
        let t = code[k];
        if t.is_punct(';') || t.is_punct(',') || t.is_punct('}') {
            continue;
        }
        if t.kind == TokKind::Ident {
            // `... as ALIAS` — the ident before this one is `as`.
            if k > 0 && code[k - 1].is_ident("as") {
                alias = Some(t.text.clone());
                segs.pop(); // the alias was accumulated as a segment
            }
        }
        break;
    }
    let glob = segs.last().map(|s| s == "*").unwrap_or(false);
    if glob {
        segs.pop();
    }
    // Group leaf `self` refers to the prefix module itself.
    if segs.last().map(|s| s == "self").unwrap_or(false) && !prefix.is_empty() {
        segs.pop();
    }
    let mut full = prefix.to_vec();
    full.append(&mut segs);
    if full.is_empty() {
        return;
    }
    let line = code.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(1);
    out.push(UseDecl {
        segments: full,
        alias,
        is_pub,
        glob,
        line,
    });
}

/// Parse a fn item whose `fn` keyword sits at `i`. Returns the item and the
/// index to resume scanning from (just past the signature).
fn parse_fn(code: &[&Token], i: usize) -> Option<(FnItem, usize)> {
    let name = code[i + 1].text.clone();
    // Look back for modifiers, stopping at item/stmt boundaries.
    let mut is_pub = false;
    let mut is_async = false;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        let t = code[j];
        if t.is_ident("pub") {
            is_pub = true;
        } else if t.is_ident("async") {
            is_async = true;
        } else if t.is_ident("unsafe") || t.is_ident("const") || t.is_ident("extern") {
            continue;
        } else if t.is_punct(')') && is_vis_end(code, j) {
            is_pub = true;
        } else if t.kind == TokKind::Str && j > 0 && code[j - 1].is_ident("extern") {
            continue;
        } else {
            break;
        }
    }
    // Find the parameter list: first `(` after the name (skipping generics).
    let mut p = i + 2;
    let mut angle = 0i32;
    while p < code.len() {
        let t = code[p];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // malformed / not a real fn item
        }
        p += 1;
    }
    if p >= code.len() {
        return None;
    }
    let p_close = matching_close(code, p);
    if p_close >= code.len() {
        return None;
    }
    // Find the body `{` (or `;` for a bodyless decl) after the return type
    // and where clauses. Angle depth guards `-> Foo<Bar>`.
    let mut b = p_close + 1;
    let mut angle = 0i32;
    while b < code.len() {
        let t = code[b];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('{') && angle == 0 {
            break;
        } else if t.is_punct(';') && angle == 0 {
            let item = FnItem {
                name,
                is_pub,
                is_async,
                kw: i,
                params: (p, p_close),
                body: None,
                line: code[i].line,
            };
            return Some((item, b + 1));
        } else if t.is_punct('(') || t.is_punct('[') {
            b = matching_close(code, b);
            continue;
        }
        b += 1;
    }
    if b >= code.len() {
        return None;
    }
    let b_close = matching_close(code, b);
    let item = FnItem {
        name,
        is_pub,
        is_async,
        kw: i,
        params: (p, p_close),
        body: Some((b, b_close)),
        line: code[i].line,
    };
    Some((item, b + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        parse(&code)
    }

    #[test]
    fn simple_use() {
        let p = parse_src("use std::collections::HashMap;");
        assert_eq!(p.uses.len(), 1);
        assert_eq!(p.uses[0].segments, ["std", "collections", "HashMap"]);
        assert_eq!(p.uses[0].local_name(), "HashMap");
        assert!(!p.uses[0].is_pub);
    }

    #[test]
    fn aliased_use() {
        let p = parse_src("use std::collections::HashMap as Map;");
        assert_eq!(p.uses[0].alias.as_deref(), Some("Map"));
        assert_eq!(p.uses[0].local_name(), "Map");
        assert_eq!(p.uses[0].segments, ["std", "collections", "HashMap"]);
    }

    #[test]
    fn grouped_use_with_alias_and_self() {
        let p = parse_src("pub use std::collections::{self, HashMap as Map, hash_map::Entry};");
        assert_eq!(p.uses.len(), 3);
        assert!(p.uses.iter().all(|u| u.is_pub));
        assert_eq!(p.uses[0].segments, ["std", "collections"]);
        assert_eq!(p.uses[1].segments, ["std", "collections", "HashMap"]);
        assert_eq!(p.uses[1].alias.as_deref(), Some("Map"));
        assert_eq!(
            p.uses[2].segments,
            ["std", "collections", "hash_map", "Entry"]
        );
    }

    #[test]
    fn glob_use() {
        let p = parse_src("use skyrise_sim::*;");
        assert!(p.uses[0].glob);
        assert_eq!(p.uses[0].segments, ["skyrise_sim"]);
    }

    #[test]
    fn type_alias() {
        let p = parse_src("pub type Index = std::collections::HashMap<u64, Vec<u32>>;");
        assert_eq!(p.type_aliases.len(), 1);
        assert_eq!(p.type_aliases[0].name, "Index");
        assert_eq!(p.type_aliases[0].target, ["std", "collections", "HashMap"]);
        assert!(p.type_aliases[0].is_pub);
    }

    #[test]
    fn fn_items() {
        let p = parse_src(
            "pub async fn transfer(ctx: &SimCtx, bytes: u64) -> Stats { inner(bytes) }\n\
             fn inner(b: u64) -> Stats { Stats(b) }",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "transfer");
        assert!(p.fns[0].is_pub && p.fns[0].is_async);
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].name, "inner");
        assert!(!p.fns[1].is_pub && !p.fns[1].is_async);
    }

    #[test]
    fn generic_fn_with_where_clause() {
        let p = parse_src(
            "pub fn fold<T: Ord, F>(items: Vec<T>, f: F) -> Option<T>\n\
             where F: Fn(T, T) -> T { items.into_iter().reduce(f) }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "fold");
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn trait_method_without_body() {
        let p = parse_src("trait T { fn decl(&self) -> u32; fn given(&self) -> u32 { 1 } }");
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }
}
