//! Determinism rules over the token stream.
//!
//! Heuristic, token-level analyses — deliberately simple enough to audit by
//! eye, strict enough to catch the hazards that matter in a deterministic
//! discrete-event simulation:
//!
//! * **DET001** — iteration over `HashMap`/`HashSet` without an intervening
//!   sort. Hash iteration order varies run-to-run (`RandomState`), so any
//!   result shaped by it is nondeterministic.
//! * **DET002** — wall-clock / entropy / environment APIs (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `std::env`, `OsRng`, ...) outside the bench
//!   CLI shell. All time must be virtual, all randomness seeded.
//! * **DET003** — `RefCell` borrow live across an `.await` point inside an
//!   async body: the executor re-enters other tasks at awaits, so a held
//!   borrow panics at runtime depending on interleaving.
//! * **DET004** — f64 accumulation (`sum`/`product`/`fold`) fed from an
//!   unordered container: float addition is not associative, so hash order
//!   leaks into the aggregate value. Reported instead of DET001 when an
//!   iteration chain ends in an accumulator.
//! * **DET005** — `HashMap`/`HashSet` construction or type annotation in
//!   sim-facing code. Even keyed-only maps are one `for` loop away from a
//!   DET001; prefer `BTreeMap`/`BTreeSet`, or suppress with a justification.
//! * **DET006** — host thread APIs (`std::thread::spawn`/`scope`/...) in
//!   sim-facing code. Every simulation is single-threaded by construction;
//!   only the bench harness shell may fan work out across OS threads.
//! * **DET007** — dataflow taint: a wall-clock / entropy / environment value
//!   reaching a determinism-critical sink (sanitizer checkpoint, telemetry
//!   digest/record, trace attr, sort key) — even through `let` bindings or
//!   same-crate helper returns. See [`crate::flow`].
//! * **DET008** — hash container hiding behind a `use ... as` alias,
//!   re-export chain, or `type` alias that DET001/DET005's lexical checks
//!   cannot see. Resolved through the module graph ([`crate::graph`]).
//! * **CONS001** — byte transfer in `crates/net` not routed through the
//!   token-bucket ledger (`consume`/`grant`), so runtime conservation
//!   checks would never see it.
//! * **CONS002** — billable storage/compute operation bypassing
//!   `CoreMetrics`/the pricing meter.
//! * **SL000** — malformed suppression: `// simlint: allow(...)` without the
//!   mandatory `: <justification>` tail (or unparseable rule list).
//! * **SL001** — stale suppression: a well-formed `allow(...)` that masks no
//!   diagnostic any more. Reported as an error so the allowlist only shrinks.

use crate::graph::FileCtx;
use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, Edit, Severity};

/// Which conservation contract applies to a file's crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsScope {
    /// `crates/net`: byte movement must hit the token-bucket ledger (CONS001).
    Net,
    /// `crates/storage` / `crates/compute`: billable ops must hit the
    /// usage meter / `CoreMetrics` (CONS002).
    Metered,
}

/// Per-file rule toggles, derived from the crate a file belongs to.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Enable DET002 (wall-clock / entropy / env). Off for the bench CLI
    /// shell and for simlint itself, which legitimately touch the host.
    pub wall_clock: bool,
    /// Enable DET006 (host thread APIs). Off for the same host-side crates:
    /// the parallel harness runs whole experiments on worker threads, but
    /// each simulation inside stays single-threaded.
    pub threads: bool,
    /// Enable DET007 (source-to-sink taint). Follows `wall_clock`: where a
    /// crate may read the host clock at all, feeding it onward is its
    /// business (the bench shell reports wall time by design).
    pub taint: bool,
    /// Conservation contract for this file's crate, if any.
    pub conservation: Option<ConsScope>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            wall_clock: true,
            threads: true,
            taint: true,
            conservation: None,
        }
    }
}

/// A parsed `// simlint: allow(...)` directive.
#[derive(Debug, Clone)]
struct Suppression {
    rules: Vec<String>,
    line: u32,
    /// Line of the first code token after the directive's comment block —
    /// what "the line below the comment" resolves to.
    covers_line: u32,
    file_scope: bool,
    justification: String,
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet", "AHashMap"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];
const ACCUMULATORS: &[&str] = &["sum", "product", "fold"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "OsRng", "getrandom", "from_entropy"];

fn is_hash_type(t: &Token) -> bool {
    t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str())
}

/// Does this identifier indicate the statement imposes an order (so hash
/// iteration is laundered through a sort or ordered collection)?
fn is_ordering_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident
        && (t.text.contains("sort") || t.text.starts_with("BTree") || t.text == "BinaryHeap")
}

/// Lint one file's token stream against its resolved module context.
/// Returns all diagnostics, with suppressed ones marked rather than
/// dropped, so `--json` can show the full picture.
pub fn check_tokens(
    file: &str,
    toks: &[Token],
    opts: &LintOptions,
    ctx: &FileCtx,
) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    let (sups, mut sup_diags) = parse_suppressions(file, toks);
    diags.append(&mut sup_diags);

    // Comments out of the way: rules see adjacent code tokens only.
    let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
    let exempt = test_exempt_mask(&code);
    let in_use = use_stmt_mask(&code);

    if opts.wall_clock {
        rule_det002(file, &code, &exempt, &in_use, ctx, &mut diags);
    }
    if opts.threads {
        rule_det006(file, &code, &exempt, &in_use, &mut diags);
    }
    rule_hash(file, &code, &exempt, &in_use, ctx, &mut diags);
    rule_det003(file, &code, &exempt, &mut diags);

    let parsed = crate::parse::parse(&code);
    if opts.taint {
        crate::flow::check_taint(file, &code, &parsed, ctx, &exempt, &mut diags);
    }
    if let Some(scope) = opts.conservation {
        crate::flow::check_conservation(file, &code, &parsed, ctx, scope, &exempt, &mut diags);
    }

    dedupe(&mut diags);
    let hits = apply_suppressions(&mut diags, &sups);

    // SL001: every suppression must still pay its way.
    for (s, n) in sups.iter().zip(hits) {
        if n == 0 {
            diags.push(Diagnostic::new(
                file,
                s.line,
                "SL001",
                Severity::Error,
                format!(
                    "stale suppression `allow{}({})`: it masks no diagnostic; delete it",
                    if s.file_scope { "-file" } else { "" },
                    s.rules.join(", ")
                ),
            ));
        }
    }
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

fn dedupe(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags.dedup_by(|a, b| {
        if a.line == b.line && a.rule == b.rule {
            // Keep the machine-applicable fix if only the dropped twin has it.
            if b.fix.is_none() {
                b.fix = a.fix.take();
            }
            true
        } else {
            false
        }
    });
}

/// Mark suppressed diagnostics; returns per-suppression hit counts (for
/// SL001 staleness). SL000/SL001 findings can never be suppressed.
fn apply_suppressions(diags: &mut [Diagnostic], sups: &[Suppression]) -> Vec<u32> {
    let mut hits = vec![0u32; sups.len()];
    for d in diags.iter_mut() {
        if d.rule.starts_with("SL") {
            continue; // suppression-audit reports cannot themselves be suppressed
        }
        for (si, s) in sups.iter().enumerate() {
            let rule_match = s.rules.iter().any(|r| r == d.rule || r == "all");
            if !rule_match {
                continue;
            }
            if s.file_scope || s.line == d.line || s.covers_line == d.line {
                hits[si] += 1;
                if !d.suppressed {
                    d.suppressed = true;
                    d.justification = Some(s.justification.clone());
                }
            }
        }
    }
    hits
}

fn parse_suppressions(file: &str, toks: &[Token]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        // A directive must *start* the comment (after `//`/`//!`/`/**`
        // markers) — prose that merely mentions `simlint:` is not one.
        let stripped = t
            .text
            .trim_start_matches(|c: char| c == '/' || c == '!' || c == '*' || c.is_whitespace());
        let Some(rest) = stripped.strip_prefix("simlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            diags.push(Diagnostic::new(
                file,
                t.line,
                "SL000",
                Severity::Error,
                format!("unrecognized simlint directive: `{}`", t.text.trim()),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let ok = rest.strip_prefix('(').and_then(|r| {
            let close = r.find(')')?;
            let rules: Vec<String> = r[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if rules.is_empty() {
                return None;
            }
            let tail = r[close + 1..].trim_start();
            let just = tail.strip_prefix(':')?.trim();
            if just.is_empty() {
                return None;
            }
            Some((rules, just.to_string()))
        });
        // The directive covers its own line (trailing comment) and the
        // first code line after its comment block (comment-above style,
        // including multi-line comment blocks).
        let covers_line = toks[ti + 1..]
            .iter()
            .find(|n| !n.is_comment())
            .map(|n| n.line)
            .unwrap_or(t.line);
        match ok {
            Some((rules, justification)) => sups.push(Suppression {
                rules,
                line: t.line,
                covers_line,
                file_scope,
                justification,
            }),
            None => diags.push(Diagnostic::new(
                file,
                t.line,
                "SL000",
                Severity::Error,
                "simlint suppression requires `allow(<rules>): <justification>` \
                 with a non-empty justification"
                    .to_string(),
            )),
        }
    }
    (sups, diags)
}

/// Mark code-token indices that fall inside a `#[cfg(test)]` item (attribute
/// through the end of the following brace block or `;`). Test code may use
/// wall clocks and hash maps freely — it never feeds simulation results.
fn test_exempt_mask(code: &[&Token]) -> Vec<bool> {
    let mut exempt = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Attribute group: find the matching `]`.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut has_cfg = false;
        let mut has_test = false;
        let mut has_not = false;
        while j < code.len() {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if code[j].is_ident("cfg") || code[j].is_ident("cfg_attr") {
                has_cfg = true;
            } else if code[j].is_ident("test") {
                has_test = true;
            } else if code[j].is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        if !(has_cfg && has_test && !has_not) {
            i = j + 1;
            continue;
        }
        // Exempt the attribute, any stacked attributes, and the item body.
        let start = i;
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            let mut d = 0i32;
            while k < code.len() {
                if code[k].is_punct('[') {
                    d += 1;
                } else if code[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // Scan to the end of the item: first `;` at depth 0, or the matching
        // `}` of the first `{` at depth 0.
        let mut pb = 0i32; // parens + brackets
        let mut braces = 0i32;
        let mut entered = false;
        while k < code.len() {
            let t = code[k];
            if t.is_punct('(') || t.is_punct('[') {
                pb += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pb -= 1;
            } else if t.is_punct('{') {
                braces += 1;
                entered = true;
            } else if t.is_punct('}') {
                braces -= 1;
                if entered && braces == 0 {
                    break;
                }
            } else if t.is_punct(';') && pb == 0 && braces == 0 {
                break;
            }
            k += 1;
        }
        for slot in exempt.iter_mut().take((k + 1).min(code.len())).skip(start) {
            *slot = true;
        }
        i = k + 1;
    }
    exempt
}

/// Mark code-token indices inside `use ...;` declarations.
fn use_stmt_mask(code: &[&Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("use") {
            let start = i;
            while i < code.len() && !code[i].is_punct(';') {
                i += 1;
            }
            for slot in mask.iter_mut().take((i + 1).min(code.len())).skip(start) {
                *slot = true;
            }
        }
        i += 1;
    }
    mask
}

fn diag(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: &'static str, msg: String) {
    diags.push(Diagnostic::new(file, line, rule, Severity::Error, msg));
}

/// DET002: wall-clock, entropy, and environment APIs.
fn rule_det002(
    file: &str,
    code: &[&Token],
    exempt: &[bool],
    in_use: &[bool],
    ctx: &FileCtx,
    diags: &mut Vec<Diagnostic>,
) {
    let path_sep = |i: usize| -> bool {
        i + 1 < code.len() && code[i].is_punct(':') && code[i + 1].is_punct(':')
    };
    for i in 0..code.len() {
        if exempt[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if ENTROPY_IDENTS.contains(&name) {
            diag(
                diags,
                file,
                t.line,
                "DET002",
                format!("`{name}` draws OS entropy; use the seeded SimRng via `SimCtx::with_rng`"),
            );
            continue;
        }
        // Aliased sources the lexical checks above can't see: resolved
        // through the module graph (`use std::time::Instant as Clock`).
        if !in_use[i] {
            if let Some(canon) = ctx.time_aliases.get(name) {
                diag(
                    diags,
                    file,
                    t.line,
                    "DET002",
                    format!("`{name}` is `{canon}` under an alias; use virtual `SimTime` instead"),
                );
                continue;
            }
            if let Some(canon) = ctx.entropy_aliases.get(name) {
                diag(
                    diags,
                    file,
                    t.line,
                    "DET002",
                    format!(
                        "`{name}` is `{canon}` under an alias; use the seeded SimRng via \
                         `SimCtx::with_rng`"
                    ),
                );
                continue;
            }
        }
        if (name == "Instant" || name == "SystemTime") && path_sep(i + 1) && !in_use[i] {
            diag(
                diags,
                file,
                t.line,
                "DET002",
                format!("`{name}` reads the wall clock; use virtual `SimTime`/`SimCtx::now`"),
            );
            continue;
        }
        if name == "rand" && path_sep(i + 1) && i + 3 < code.len() && code[i + 3].is_ident("random")
        {
            diag(
                diags,
                file,
                t.line,
                "DET002",
                "`rand::random` draws from the thread RNG; use `SimCtx::with_rng`".to_string(),
            );
            continue;
        }
        if name == "std"
            && path_sep(i + 1)
            && i + 3 < code.len()
            && code[i + 3].is_ident("env")
            && !(i + 4 < code.len() && code[i + 4].is_punct('!'))
        {
            diag(
                diags,
                file,
                t.line,
                "DET002",
                "`std::env` makes results depend on the host environment; \
                 plumb configuration through experiment parameters"
                    .to_string(),
            );
            continue;
        }
        // Imports of the forbidden time types (brace groups defeat the
        // adjacency checks above): `use std::time::{Instant, ...};`
        if in_use[i] && (name == "Instant" || name == "SystemTime") {
            // Scan the contiguous `use ...;` region this token sits in.
            let mut lo = i;
            while lo > 0 && in_use[lo - 1] {
                lo -= 1;
            }
            let mut hi = i;
            while hi + 1 < code.len() && in_use[hi + 1] {
                hi += 1;
            }
            let stmt_has_time = (lo..=hi).any(|j| code[j].is_ident("time"));
            if stmt_has_time {
                diag(
                    diags,
                    file,
                    t.line,
                    "DET002",
                    format!("importing `std::time::{name}`; use virtual `SimTime` instead"),
                );
            }
        }
    }
}

/// Thread APIs whose *call* makes execution multi-threaded or scheduler
/// dependent. `JoinHandle` alone is not flagged: it only exists downstream
/// of one of these.
const THREAD_FNS: &[&str] = &[
    "spawn",
    "scope",
    "Builder",
    "sleep",
    "park",
    "yield_now",
    "available_parallelism",
];

/// DET006: host thread APIs in sim-facing code.
fn rule_det006(
    file: &str,
    code: &[&Token],
    exempt: &[bool],
    in_use: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let path_sep = |i: usize| -> bool {
        i + 1 < code.len() && code[i].is_punct(':') && code[i + 1].is_punct(':')
    };
    for i in 0..code.len() {
        if exempt[i] {
            continue;
        }
        let t = code[i];
        if !(t.kind == TokKind::Ident && t.text == "thread") {
            continue;
        }
        // Imports: any `use` statement reaching into `std::thread`.
        if in_use[i] {
            let mut lo = i;
            while lo > 0 && in_use[lo - 1] {
                lo -= 1;
            }
            let stmt_has_std = (lo..i).any(|j| code[j].is_ident("std"));
            if stmt_has_std {
                diag(
                    diags,
                    file,
                    t.line,
                    "DET006",
                    "importing `std::thread` in sim-facing code; simulations are \
                     single-threaded — only the bench harness may use host threads"
                        .to_string(),
                );
            }
            continue;
        }
        // Calls: `thread::spawn(..)`, `std::thread::scope(..)`, ...
        if path_sep(i + 1)
            && i + 3 < code.len()
            && code[i + 3].kind == TokKind::Ident
            && THREAD_FNS.contains(&code[i + 3].text.as_str())
        {
            diag(
                diags,
                file,
                t.line,
                "DET006",
                format!(
                    "`thread::{}` makes execution depend on the host scheduler; \
                     keep simulations single-threaded (harness-level fan-out \
                     belongs in `crates/bench`)",
                    code[i + 3].text
                ),
            );
        }
    }
}

/// Shared scaffolding for DET001/DET004/DET005/DET008: find hash-typed
/// bindings (including alias-typed ones resolved through the module graph),
/// then flag constructions and order-leaking iteration.
fn rule_hash(
    file: &str,
    code: &[&Token],
    exempt: &[bool],
    in_use: &[bool],
    ctx: &FileCtx,
    diags: &mut Vec<Diagnostic>,
) {
    let is_hash_alias =
        |t: &Token| t.kind == TokKind::Ident && ctx.hash_aliases.contains_key(&t.text);
    // --- collect hash-typed `let` bindings, fields, and fn params --------
    let mut names: Vec<String> = Vec::new();
    for i in 0..code.len() {
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if j < code.len() && code[j].is_ident("mut") {
                j += 1;
            }
            if j >= code.len() || code[j].kind != TokKind::Ident {
                continue;
            }
            let name = code[j].text.clone();
            if stmt_contains(code, j + 1, |t| is_hash_type(t) || is_hash_alias(t)) {
                names.push(name);
            }
        } else if code[i].kind == TokKind::Ident
            && i + 1 < code.len()
            && code[i + 1].is_punct(':')
            && !(i + 2 < code.len() && code[i + 2].is_punct(':'))
        {
            // `name: ... HashMap ...` up to a depth-0 `,`/`;`/`{`/`}` — a
            // struct field, fn param, or annotated binding of hash type.
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut steps = 0;
            while j < code.len() && steps < 40 {
                let t = code[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0
                    && (t.is_punct(',') || t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                {
                    break;
                } else if is_hash_type(t) || is_hash_alias(t) {
                    names.push(code[i].text.clone());
                    break;
                }
                j += 1;
                steps += 1;
            }
        }
    }
    names.sort();
    names.dedup();
    let is_hash_name = |t: &Token| t.kind == TokKind::Ident && names.binary_search(&t.text).is_ok();

    // --- DET005/DET008: construction / type use outside imports ----------
    for i in 0..code.len() {
        if exempt[i] || in_use[i] {
            continue;
        }
        let t = code[i];
        if is_hash_type(t) {
            let mut d = Diagnostic::new(
                file,
                t.line,
                "DET005",
                Severity::Error,
                format!(
                    "`{}` in sim-facing code: iteration order is seeded per-process; \
                     use `BTreeMap`/`BTreeSet` or suppress with a justification",
                    t.text
                ),
            );
            // Machine-applicable only for the std types (Fx/AHash variants
            // need import surgery a token swap can't do).
            if t.text == "HashMap" || t.text == "HashSet" {
                d.fix = Some(Edit {
                    start: t.pos,
                    end: t.end,
                    text: format!("BTree{}", &t.text[4..]),
                });
            }
            diags.push(d);
        } else if is_hash_alias(t) {
            let canon = &ctx.hash_aliases[&t.text];
            diag(
                diags,
                file,
                t.line,
                "DET008",
                format!(
                    "`{}` resolves to `{canon}` through aliases/re-exports: a hash \
                     container in sim-facing code under a different name; use \
                     `BTreeMap`/`BTreeSet` or suppress with a justification",
                    t.text
                ),
            );
        }
    }

    // --- DET001/DET004: order-leaking iteration ---------------------------
    for i in 0..code.len() {
        if exempt[i] {
            continue;
        }
        // `for PAT in <expr containing hash>` { ... }
        if code[i].is_ident("for") {
            let mut depth = 0i32;
            let mut j = i + 1;
            // find the `in` that terminates the pattern
            while j < code.len() && j < i + 50 {
                let t = code[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("in") {
                    break;
                } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                    j = code.len(); // `for` in a type position (e.g. HRTB); bail
                    break;
                }
                j += 1;
            }
            if j >= code.len() || !code[j].is_ident("in") {
                continue;
            }
            // head = (j, first depth-0 `{`)
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut hash_hit: Option<u32> = None;
            let mut ordered = false;
            while k < code.len() {
                let t = code[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    break;
                } else if is_hash_type(t) || is_hash_name(t) || is_hash_alias(t) {
                    hash_hit.get_or_insert(t.line);
                } else if is_ordering_ident(t) {
                    ordered = true;
                }
                k += 1;
            }
            if let (Some(line), false) = (hash_hit, ordered) {
                diag(
                    diags,
                    file,
                    line,
                    "DET001",
                    "`for` over a hash container: iteration order is nondeterministic; \
                     iterate a `BTreeMap`/sorted `Vec` instead"
                        .to_string(),
                );
            }
            continue;
        }
        // `recv.iter()` / `.keys()` / ... method chains
        if !(code[i].is_punct('.')
            && i + 2 < code.len()
            && code[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&code[i + 1].text.as_str())
            && code[i + 2].is_punct('('))
        {
            continue;
        }
        // Receiver: idents walking back to the statement boundary.
        let mut recv_hash = false;
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 40 {
            j -= 1;
            steps += 1;
            let t = code[j];
            if t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct('=')
                || t.is_punct(',')
            {
                break;
            }
            // An ordered intermediate between the hash source and this
            // call (e.g. `.collect::<BTreeSet<_>>().into_iter()`) already
            // laundered the iteration order.
            if is_ordering_ident(t) {
                break;
            }
            if is_hash_name(t) || is_hash_type(t) || is_hash_alias(t) {
                recv_hash = true;
                break;
            }
        }
        if !recv_hash {
            continue;
        }
        // Classify by the rest of the statement: accumulation → DET004,
        // order-insensitive terminators / sorts → clean, else DET001.
        let mut accumulates = false;
        let mut insensitive = false;
        let mut ordered = false;
        let mut k = i + 2;
        let mut depth = 0i32;
        let mut steps = 0;
        while k < code.len() && steps < 80 {
            let t = code[k];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            } else if t.kind == TokKind::Ident && ACCUMULATORS.contains(&t.text.as_str()) {
                accumulates = true;
            } else if t.is_ident("count") || t.is_ident("len") {
                insensitive = true;
            } else if is_ordering_ident(t) {
                ordered = true;
            }
            k += 1;
            steps += 1;
        }
        let line = code[i + 1].line;
        if accumulates {
            diag(
                diags,
                file,
                line,
                "DET004",
                "f64/accumulator fed from a hash container: float reduction is \
                 order-sensitive, so the result depends on hash order"
                    .to_string(),
            );
        } else if !insensitive && !ordered {
            let mut d = Diagnostic::new(
                file,
                line,
                "DET001",
                Severity::Error,
                format!(
                    "`.{}()` on a hash container without an intervening sort",
                    code[i + 1].text
                ),
            );
            // `.keys()`/`.into_keys()` with no arguments: an ordered collect
            // inserted right after the call restores determinism in place.
            if (code[i + 1].is_ident("keys") || code[i + 1].is_ident("into_keys"))
                && code.get(i + 3).map(|t| t.is_punct(')')) == Some(true)
            {
                d.fix = Some(Edit {
                    start: code[i + 3].end,
                    end: code[i + 3].end,
                    text: ".collect::<std::collections::BTreeSet<_>>().into_iter()".to_string(),
                });
            }
            diags.push(d);
        }
    }
}

/// DET003: `RefCell` borrows live across `.await` inside async bodies.
fn rule_det003(file: &str, code: &[&Token], exempt: &[bool], diags: &mut Vec<Diagnostic>) {
    // Find async body ranges.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("async") || exempt[i] {
            continue;
        }
        // `async fn name(..) -> T {` or `async move {` / `async {`
        let mut j = i + 1;
        let mut steps = 0;
        while j < code.len() && steps < 120 && !code[j].is_punct('{') {
            j += 1;
            steps += 1;
        }
        if j >= code.len() || !code[j].is_punct('{') {
            continue;
        }
        // match braces
        let mut depth = 0i32;
        let mut k = j;
        while k < code.len() {
            if code[k].is_punct('{') {
                depth += 1;
            } else if code[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if k < code.len() {
            ranges.push((j, k));
        }
    }

    for (body_open, body_close) in ranges {
        let mut depth = 0i32;
        // Borrow guard bindings live at (name, block depth).
        let mut live: Vec<(String, i32, u32)> = Vec::new();
        // Scrutinee temporaries (`match x.borrow() {`) live through their block.
        let mut temps: Vec<(i32, u32)> = Vec::new();
        // Current statement segment state.
        let mut seg_first_ident: Option<String> = None;
        let mut seg_let_name: Option<String> = None;
        let mut seg_is_let = false;
        let mut seg_borrow_line: Option<u32> = None;

        let mut idx = body_open + 1;
        while idx < body_close {
            let t = code[idx];
            if t.is_punct('{') {
                // `match`/`for` heads keep their scrutinee temporaries alive
                // through the block; `if`/`while` drop them at the brace.
                let keeps_temp = matches!(seg_first_ident.as_deref(), Some("match") | Some("for"));
                depth += 1;
                if keeps_temp {
                    if let Some(line) = seg_borrow_line {
                        temps.push((depth, line));
                    }
                }
                seg_first_ident = None;
                seg_let_name = None;
                seg_is_let = false;
                seg_borrow_line = None;
            } else if t.is_punct('}') {
                live.retain(|&(_, d, _)| d < depth);
                temps.retain(|&(d, _)| d < depth);
                depth -= 1;
                seg_first_ident = None;
                seg_let_name = None;
                seg_is_let = false;
                seg_borrow_line = None;
            } else if t.is_punct(';') {
                // `let g = x.borrow_mut();` creates a live guard — but only
                // when the borrow is the *last* call: a longer chain
                // (`.borrow().get(k).cloned()`) extracts an owned value and
                // the guard temporary dies right here at the `;`.
                let ends_with_borrow = idx >= 3
                    && code[idx - 1].is_punct(')')
                    && code[idx - 2].is_punct('(')
                    && (code[idx - 3].is_ident("borrow") || code[idx - 3].is_ident("borrow_mut"));
                if seg_is_let && ends_with_borrow {
                    if let (Some(name), Some(bline)) = (seg_let_name.take(), seg_borrow_line) {
                        live.push((name, depth, bline));
                    }
                }
                seg_first_ident = None;
                seg_let_name = None;
                seg_is_let = false;
                seg_borrow_line = None;
            } else if t.kind == TokKind::Ident {
                if seg_first_ident.is_none() {
                    seg_first_ident = Some(t.text.clone());
                }
                if t.is_ident("let") {
                    seg_is_let = true;
                    let mut j = idx + 1;
                    if j < body_close && code[j].is_ident("mut") {
                        j += 1;
                    }
                    if j < body_close && code[j].kind == TokKind::Ident {
                        seg_let_name = Some(code[j].text.clone());
                    }
                } else if (t.is_ident("borrow") || t.is_ident("borrow_mut"))
                    && idx + 1 < body_close
                    && code[idx + 1].is_punct('(')
                {
                    seg_borrow_line = Some(t.line);
                } else if t.is_ident("drop")
                    && idx + 2 < body_close
                    && code[idx + 1].is_punct('(')
                    && code[idx + 2].kind == TokKind::Ident
                {
                    let name = &code[idx + 2].text;
                    live.retain(|(n, _, _)| n != name);
                } else if t.is_ident("await") && idx > 0 && code[idx - 1].is_punct('.') {
                    if !exempt[idx] {
                        if let Some(bline) = seg_borrow_line {
                            diag(
                                diags,
                                file,
                                t.line,
                                "DET003",
                                format!(
                                    "RefCell borrow (line {bline}) is a temporary still live \
                                     at this `.await`; bind and drop it before awaiting"
                                ),
                            );
                        } else if let Some((name, _, bline)) = live.first() {
                            diag(
                                diags,
                                file,
                                t.line,
                                "DET003",
                                format!(
                                    "RefCell borrow guard `{name}` (line {bline}) is held \
                                     across this `.await`; scope it to a block that ends \
                                     before the await"
                                ),
                            );
                        } else if let Some((_, bline)) = temps.first() {
                            diag(
                                diags,
                                file,
                                t.line,
                                "DET003",
                                format!(
                                    "RefCell borrow (line {bline}) in an enclosing match/for \
                                     head is held across this `.await`"
                                ),
                            );
                        }
                    }
                }
            }
            idx += 1;
        }
    }
}

/// True when any token from `start` to the end of the statement (depth-0
/// `;`, capped) satisfies the predicate.
fn stmt_contains(code: &[&Token], start: usize, pred: impl Fn(&Token) -> bool) -> bool {
    let mut depth = 0i32;
    let mut i = start;
    let mut steps = 0;
    while i < code.len() && steps < 200 {
        let t = code[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return false;
        } else if pred(t) {
            return true;
        }
        i += 1;
        steps += 1;
    }
    false
}
