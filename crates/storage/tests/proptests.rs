//! Property-based invariants of the storage simulations.

use proptest::prelude::*;
use skyrise_pricing::{shared_meter, StorageService};
use skyrise_sim::{join_all, Sim, SimDuration, SimTime};
use skyrise_storage::{Blob, DynamoConfig, DynamoTable, RequestOpts, S3Bucket, Storage};
use std::rc::Rc;

proptest! {
    // These tests spin up whole simulations; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every issued request is metered, successes and failures alike
    /// (the paper's accounting hook "counts all requests, including
    /// failures and retries").
    #[test]
    fn all_requests_are_metered(reads in 1usize..300, writes in 0usize..100) {
        let mut sim = Sim::new(7);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter2);
            bucket.backdoor().put("k", Blob::synthetic(512));
            let opts = RequestOpts::default();
            let mut handles = Vec::new();
            for _ in 0..reads {
                let b = Rc::clone(&bucket);
                handles.push(ctx.spawn(async move {
                    let _ = b.get("k", &RequestOpts::default()).await;
                }));
            }
            for i in 0..writes {
                let b = Rc::clone(&bucket);
                handles.push(ctx.spawn(async move {
                    let _ = b
                        .put(&format!("w{i}"), Blob::synthetic(256), &RequestOpts::default())
                        .await;
                }));
            }
            join_all(handles).await;
            let _ = opts;
        });
        sim.run();
        let m = meter.borrow();
        let u = &m.storage[&StorageService::S3Standard];
        prop_assert_eq!(u.read_requests as usize, reads);
        prop_assert_eq!(u.write_requests as usize, writes);
        // Billed exactly per the price list.
        let expect = reads as f64 * 4e-7 + writes as f64 * 5e-6;
        let got = m.report().storage_request_usd;
        prop_assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    /// Admission control: successful ops never exceed the configured
    /// sustained rate plus the burst allowance, for any offered load.
    #[test]
    fn dynamo_successes_bounded_by_capacity(
        rate in 10.0f64..200.0,
        offered in 50u64..600,
        duration_s in 1u64..5,
    ) {
        let mut sim = Sim::new(11);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: rate,
                burst_seconds: 0.5,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::synthetic(256));
            let gap = SimDuration::from_secs_f64(duration_s as f64 / offered as f64);
            let t0 = ctx.now();
            let handles: Vec<_> = (0..offered)
                .map(|i| {
                    let t = Rc::clone(&table);
                    let ctx2 = ctx.clone();
                    let at = t0 + gap * i;
                    ctx.spawn(async move {
                        ctx2.sleep_until(at).await;
                        t.get("k", &RequestOpts::default()).await.is_ok()
                    })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&ok| ok).count() as f64
        });
        sim.run();
        let ok = h.try_take().expect("done");
        let budget = rate * (duration_s as f64 + 1.0) + rate * 0.5 + 1.0;
        prop_assert!(ok <= budget, "ok {ok} > budget {budget}");
    }

    /// Blob logical arithmetic: slices keep the scale, and logical sizes
    /// add up across any split of the payload.
    #[test]
    fn blob_slices_partition_logical_size(
        len in 1u64..10_000,
        cut in 0u64..10_000,
        scale in 1.0f64..5_000.0,
    ) {
        let cut = cut.min(len);
        let blob = Blob::scaled(vec![0u8; len as usize], scale);
        let a = blob.slice(0, cut).unwrap();
        let b = blob.slice(cut, len - cut).unwrap();
        let sum = a.logical_len() + b.logical_len();
        // Rounding may cost at most one byte per part.
        prop_assert!((sum as i64 - blob.logical_len() as i64).abs() <= 2);
    }

    /// S3 responses preserve payload bytes exactly (no corruption through
    /// the admission/latency/transfer pipeline).
    #[test]
    fn payloads_round_trip(data in prop::collection::vec(any::<u8>(), 1..2_000)) {
        let mut sim = Sim::new(13);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let expected = data.clone();
        let h = sim.spawn(async move {
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let opts = RequestOpts::default();
            storage.put("obj", Blob::new(data), &opts).await.unwrap();
            storage.get("obj", &opts).await.unwrap().bytes.to_vec()
        });
        sim.run();
        prop_assert_eq!(h.try_take().expect("done"), expected);
    }

    /// Latency is always positive and bounded by the model cap.
    #[test]
    fn latencies_respect_the_cap(n in 1usize..120) {
        let mut sim = Sim::new(17);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            bucket.backdoor().put("k", Blob::synthetic(64));
            let mut worst: f64 = 0.0;
            for _ in 0..n {
                let t0 = ctx.now();
                bucket.get("k", &RequestOpts::default()).await.unwrap();
                worst = worst.max((ctx.now() - t0).as_secs_f64());
                ctx.sleep(SimDuration::from_millis(2)).await;
            }
            worst
        });
        sim.run();
        let worst = h.try_take().expect("done");
        prop_assert!(worst > 0.0);
        prop_assert!(worst < 11.0, "cap ~10.5 s: {worst}");
        let _ = SimTime::ZERO;
    }
}
