//! # skyrise-storage — simulated serverless storage services
//!
//! Deterministic models of the four AWS storage services the paper
//! evaluates, behind one [`Storage`] handle:
//!
//! * [`s3::S3Bucket`] — S3 Standard (prefix partitions, IOPS scale-up/down,
//!   heavy-tailed latency) and S3 Express One Zone.
//! * [`dynamodb::DynamoTable`] — on-demand key-value store with item-size
//!   and throughput ceilings.
//! * [`efs::EfsFilesystem`] — elastic-throughput shared filesystem.
//!
//! [`client::RetryingClient`] adds the paper's client behaviour: size-based
//! timeouts, retries, exponential backoff with jitter.

#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod dynamodb;
pub mod efs;
pub mod error;
pub mod object;
pub mod s3;

pub use client::{RetryPolicy, RetryStats, RetryingClient, Storage};
pub use core::{OpsLimiter, RequestOpts};
pub use dynamodb::{DynamoAccount, DynamoConfig, DynamoTable};
pub use efs::{EfsAccount, EfsConfig, EfsFilesystem};
pub use error::{Result, StorageError};
pub use object::{Blob, KeyedStore, ObjectMeta, RangedBlob, SuffixRead};
pub use s3::{S3Bucket, S3Class, S3Config};
