//! The DynamoDB key-value store simulation (on-demand capacity,
//! strongly-consistent reads).
//!
//! Modelled behaviour (paper Secs. 2.2, 4.3):
//!
//! * 400 KiB item-size limit — larger puts fail client-side.
//! * On-demand tables admit ~16K read / 9.6K write IOPS (the paper measures
//!   "slightly more IOPS than defined by the quotas" of 12K/4K for new
//!   tables), with a short burst from unused capacity.
//! * Aggregate throughput saturates at ~380 MiB/s reading and ~30 MiB/s
//!   writing per table — a single loaded client VM already reaches it, and
//!   "sharding over multiple new on-demand tables does not yield higher
//!   throughput" (an account-level ceiling, also modelled).
//! * Latencies slightly below S3 Express but more variable (Fig. 10).

use crate::core::{DirectionModel, OpsLimiter, RequestOpts, ServiceCore, REJECT_LATENCY};
use crate::error::{Result, StorageError};
use crate::object::{Blob, KeyedStore, ObjectMeta};
use skyrise_pricing::{SharedMeter, StorageService};
use skyrise_sim::{LatencyDist, SimCtx, SimTime, MIB};
use std::rc::Rc;

/// DynamoDB model parameters.
#[derive(Debug, Clone)]
pub struct DynamoConfig {
    /// Maximum item size (400 KiB).
    pub max_item: u64,
    /// Observed sustained read IOPS per on-demand table.
    pub read_iops: f64,
    /// Observed sustained write IOPS per on-demand table.
    pub write_iops: f64,
    /// Documented new-table read quota (the Fig. 9 quota line).
    pub documented_read_iops: f64,
    /// Documented new-table write quota.
    pub documented_write_iops: f64,
    /// Aggregate read bandwidth per table (bytes/s).
    pub read_bw: f64,
    /// Aggregate write bandwidth per table (bytes/s).
    pub write_bw: f64,
    /// Burst window (the "up to 5 minutes of unused capacity", shortened
    /// so experiments observe sustained rates).
    pub burst_seconds: f64,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            max_item: 400 * 1024,
            read_iops: 16_000.0,
            write_iops: 9_600.0,
            documented_read_iops: 12_000.0,
            documented_write_iops: 4_000.0,
            read_bw: 380.0 * MIB as f64,
            write_bw: 30.0 * MIB as f64,
            burst_seconds: 1.0,
        }
    }
}

/// A simulated DynamoDB table.
pub struct DynamoTable {
    core: ServiceCore,
    cfg: DynamoConfig,
    store: KeyedStore,
    read_admission: OpsLimiter,
    write_admission: OpsLimiter,
    /// Account-level ceilings shared across tables (sharding over multiple
    /// tables does not raise throughput).
    account: Option<Rc<DynamoAccount>>,
}

/// Account-wide throughput ceiling shared by all tables created from it.
pub struct DynamoAccount {
    read_admission: OpsLimiter,
    write_admission: OpsLimiter,
}

impl DynamoAccount {
    /// An account whose aggregate matches a single table's ceilings —
    /// the paper's observation that extra tables do not help.
    pub fn new(cfg: &DynamoConfig) -> Rc<Self> {
        Rc::new(DynamoAccount {
            read_admission: OpsLimiter::new(cfg.read_iops, cfg.burst_seconds),
            write_admission: OpsLimiter::new(cfg.write_iops, cfg.burst_seconds),
        })
    }
}

impl DynamoTable {
    /// Create a table with explicit configuration.
    pub fn new(
        ctx: SimCtx,
        meter: SharedMeter,
        cfg: DynamoConfig,
        account: Option<Rc<DynamoAccount>>,
    ) -> Rc<Self> {
        let core = ServiceCore::new(
            ctx,
            meter,
            StorageService::DynamoDb,
            DirectionModel {
                latency: LatencyDist::from_quantiles(0.004, 0.009, 3e-4, 2.5),
                per_request_bw: cfg.read_bw,
            },
            DirectionModel {
                latency: LatencyDist::from_quantiles(0.005, 0.012, 3e-4, 2.5),
                per_request_bw: cfg.write_bw,
            },
            cfg.read_bw,
            cfg.write_bw,
            None,
        );
        Rc::new(DynamoTable {
            core,
            store: KeyedStore::new(),
            read_admission: OpsLimiter::new(cfg.read_iops, cfg.burst_seconds),
            write_admission: OpsLimiter::new(cfg.write_iops, cfg.burst_seconds),
            cfg,
            account,
        })
    }

    /// A table with default on-demand parameters.
    pub fn on_demand(ctx: &SimCtx, meter: &SharedMeter) -> Rc<Self> {
        DynamoTable::new(ctx.clone(), Rc::clone(meter), DynamoConfig::default(), None)
    }

    /// Model configuration.
    pub fn config(&self) -> &DynamoConfig {
        &self.cfg
    }

    /// Dataset setup without billing.
    pub fn backdoor(&self) -> &KeyedStore {
        &self.store
    }

    fn admit(&self, now: SimTime, write: bool) -> bool {
        let table_ok = if write {
            self.write_admission.try_admit(now)
        } else {
            self.read_admission.try_admit(now)
        };
        if !table_ok {
            return false;
        }
        match &self.account {
            Some(acc) => {
                if write {
                    acc.write_admission.try_admit(now)
                } else {
                    acc.read_admission.try_admit(now)
                }
            }
            None => true,
        }
    }

    async fn reject(&self, write: bool, logical: u64) -> StorageError {
        self.core.meter_request(write, logical, true);
        self.core.ctx.sleep(REJECT_LATENCY).await;
        StorageError::Throttled
    }

    /// GetItem.
    pub async fn get(&self, key: &str, opts: &RequestOpts) -> Result<Blob> {
        let now = self.core.ctx.now();
        let blob = self.store.get(key)?;
        let logical = blob.logical_len();
        if !self.admit(now, false) {
            return Err(self.reject(false, logical).await);
        }
        self.core.meter_request(false, logical, false);
        self.core.first_byte(false).await;
        self.core.stream(false, logical, opts).await;
        self.core.record_op(now);
        Ok(blob)
    }

    /// PutItem. Items above 400 KiB are rejected before any I/O.
    pub async fn put(&self, key: &str, blob: Blob, opts: &RequestOpts) -> Result<()> {
        let now = self.core.ctx.now();
        let logical = blob.logical_len();
        if logical > self.cfg.max_item {
            return Err(StorageError::TooLarge {
                limit: self.cfg.max_item,
                got: logical,
            });
        }
        if !self.admit(now, true) {
            return Err(self.reject(true, logical).await);
        }
        self.core.meter_request(true, logical, false);
        self.core.first_byte(true).await;
        self.core.stream(true, logical, opts).await;
        self.store.put(key, blob);
        self.core.record_op(now);
        Ok(())
    }

    /// DeleteItem.
    pub async fn delete(&self, key: &str) -> Result<()> {
        self.core.meter_request(true, 0, false);
        self.core.first_byte(true).await;
        self.store.delete(key);
        Ok(())
    }

    /// Key-condition query over a prefix (billed as one read request).
    pub async fn query_prefix(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.core.meter_request(false, 0, false);
        self.core.first_byte(false).await;
        Ok(self.store.list(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{join_all, Sim, SimDuration};

    #[test]
    fn item_size_limit_enforced() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let table = DynamoTable::on_demand(&ctx, &meter);
            let opts = RequestOpts::default();
            let err = table
                .put("big", Blob::synthetic(500 * 1024), &opts)
                .await
                .unwrap_err();
            let ok = table.put("ok", Blob::synthetic(400 * 1024), &opts).await;
            (err, ok.is_ok())
        });
        sim.run();
        let (err, ok) = h.try_take().unwrap();
        assert!(matches!(err, StorageError::TooLarge { .. }));
        assert!(ok);
    }

    #[test]
    fn read_iops_cap_at_16k() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                burst_seconds: 0.1,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 1024]));
            // Offer 25K reads over one second.
            let t0 = ctx.now();
            let handles: Vec<_> = (0..25_000u64)
                .map(|i| {
                    let table = Rc::clone(&table);
                    let ctx2 = ctx.clone();
                    let at = t0 + SimDuration::from_nanos(i * 40_000);
                    ctx.spawn(async move {
                        ctx2.sleep_until(at).await;
                        table.get("k", &RequestOpts::default()).await.is_ok()
                    })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&b| b).count()
        });
        sim.run();
        let ok = h.try_take().unwrap();
        assert!((15_000..=19_000).contains(&ok), "ok {ok}");
    }

    #[test]
    fn account_ceiling_defeats_table_sharding() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                burst_seconds: 0.1,
                ..DynamoConfig::default()
            };
            let account = DynamoAccount::new(&cfg);
            let t1 = DynamoTable::new(
                ctx.clone(),
                meter.clone(),
                cfg.clone(),
                Some(account.clone()),
            );
            let t2 = DynamoTable::new(ctx.clone(), meter, cfg, Some(account));
            t1.backdoor().put("k", Blob::new(vec![0u8; 512]));
            t2.backdoor().put("k", Blob::new(vec![0u8; 512]));
            let t0 = ctx.now();
            let handles: Vec<_> = (0..30_000u64)
                .map(|i| {
                    let table = if i % 2 == 0 {
                        Rc::clone(&t1)
                    } else {
                        Rc::clone(&t2)
                    };
                    let ctx2 = ctx.clone();
                    let at = t0 + SimDuration::from_nanos(i * 33_000);
                    ctx.spawn(async move {
                        ctx2.sleep_until(at).await;
                        table.get("k", &RequestOpts::default()).await.is_ok()
                    })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&b| b).count()
        });
        sim.run();
        let ok = h.try_take().unwrap();
        // Two tables, but account-capped at ~16K/s (+burst), not 32K.
        assert!((15_000..=20_000).contains(&ok), "ok {ok}");
    }

    #[test]
    fn throttled_reads_error_and_cost() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let meter2 = meter.clone();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: 10.0,
                burst_seconds: 0.1,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter2, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 512]));
            let handles: Vec<_> = (0..100)
                .map(|_| {
                    let table = Rc::clone(&table);
                    ctx.spawn(async move { table.get("k", &RequestOpts::default()).await.is_ok() })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&b| !b).count()
        });
        sim.run();
        let failed = h.try_take().unwrap();
        assert!(failed >= 90, "failed {failed}");
        let m = meter.borrow();
        assert_eq!(m.storage[&StorageService::DynamoDb].read_requests, 100);
        assert!(m.storage[&StorageService::DynamoDb].failed_requests >= 90);
    }

    #[test]
    fn query_prefix_lists_items() {
        let mut sim = Sim::new(5);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let table = DynamoTable::on_demand(&ctx, &meter);
            let opts = RequestOpts::default();
            for i in 0..3 {
                table
                    .put(&format!("u#42#o{i}"), Blob::new(vec![1u8]), &opts)
                    .await
                    .unwrap();
            }
            table.query_prefix("u#42#").await.unwrap().len()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 3);
    }
}
