//! Blobs and the in-memory keyed object store backing every service.
//!
//! ## Logical-size scaling
//!
//! The paper's application experiments run at TPC scale factor 1,000 —
//! ~320 GiB of Parquet. Materialising that in a unit test is pointless, so
//! a [`Blob`] separates the *real* payload (small, actually processed by
//! the query engine) from its *logical* size (what the simulated network,
//! storage, and cost models see). `logical_scale == 1.0` makes them
//! identical; the data generators set larger factors to emulate SF1000
//! partition sizes while carrying SF0.1 payloads. DESIGN.md §1 documents
//! why this preserves the paper's observable behaviour.

use crate::error::{Result, StorageError};
use bytes::Bytes;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Result of a suffix (tail) read: the sliced blob plus the metadata a
/// footer-driven reader needs to plan follow-up range requests.
#[derive(Debug, Clone)]
pub struct SuffixRead {
    /// The trailing bytes (at most the requested length).
    pub blob: Blob,
    /// Real payload length of the whole object — offsets for follow-up
    /// `get_range` calls are relative to this.
    pub object_len: u64,
    /// Logical bytes actually moved over the wire for this request. Equals
    /// `blob.logical_len()` on services with native ranged reads; equals
    /// the *full object's* logical length on services that fall back to a
    /// whole-object read (DynamoDB, EFS).
    pub transferred: u64,
}

/// Result of a metered range read: the sliced blob plus the logical bytes
/// the request actually transferred (which exceed the slice on services
/// without native ranged reads — see [`SuffixRead::transferred`]).
#[derive(Debug, Clone)]
pub struct RangedBlob {
    /// The requested byte range.
    pub blob: Blob,
    /// Logical bytes moved over the wire for this request.
    pub transferred: u64,
}

/// An immutable stored value with a logical size multiplier.
#[derive(Debug, Clone)]
pub struct Blob {
    /// The real payload.
    pub bytes: Bytes,
    /// Multiplier applied to `bytes.len()` for timing and billing.
    pub logical_scale: f64,
}

impl Blob {
    /// A blob whose logical size equals its payload size.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Blob {
            bytes: bytes.into(),
            logical_scale: 1.0,
        }
    }

    /// A blob with an explicit logical scale (≥ 1 in practice).
    pub fn scaled(bytes: impl Into<Bytes>, logical_scale: f64) -> Self {
        assert!(logical_scale.is_finite() && logical_scale > 0.0);
        Blob {
            bytes: bytes.into(),
            logical_scale,
        }
    }

    /// A synthetic blob of `logical` bytes carrying no real payload beyond
    /// a single page — what the microbenchmarks use ("randomly generated
    /// files of fixed size").
    pub fn synthetic(logical: u64) -> Self {
        let carried = logical.clamp(1, 4096) as usize;
        Blob {
            bytes: Bytes::from(vec![0xA5u8; carried]),
            logical_scale: logical as f64 / carried as f64,
        }
    }

    /// Real payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Logical length in bytes (what transfers and invoices see).
    pub fn logical_len(&self) -> u64 {
        (self.bytes.len() as f64 * self.logical_scale).round() as u64
    }

    /// Zero-copy sub-range of the payload, keeping the scale.
    pub fn slice(&self, offset: u64, len: u64) -> Result<Blob> {
        let total = self.bytes.len() as u64;
        if offset.saturating_add(len) > total {
            return Err(StorageError::InvalidRange {
                len: total,
                offset,
                requested: len,
            });
        }
        Ok(Blob {
            bytes: self.bytes.slice(offset as usize..(offset + len) as usize),
            logical_scale: self.logical_scale,
        })
    }
}

/// Metadata returned by `head`/`list`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// Object key.
    pub key: String,
    /// Real payload size.
    pub len: u64,
    /// Logical (billed/timed) size.
    pub logical_len: u64,
}

/// The shared in-memory key space behind a bucket / table / filesystem.
#[derive(Debug, Clone, Default)]
pub struct KeyedStore {
    map: Rc<RefCell<BTreeMap<String, Blob>>>,
}

impl KeyedStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace.
    pub fn put(&self, key: &str, blob: Blob) {
        self.map.borrow_mut().insert(key.to_string(), blob);
    }

    /// Fetch a clone (cheap: `Bytes` is refcounted).
    pub fn get(&self, key: &str) -> Result<Blob> {
        self.map
            .borrow()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound { key: key.into() })
    }

    /// Remove; returns whether the key existed.
    pub fn delete(&self, key: &str) -> bool {
        self.map.borrow_mut().remove(key).is_some()
    }

    /// True if present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.borrow().contains_key(key)
    }

    /// Metadata for one key.
    pub fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.map
            .borrow()
            .get(key)
            .map(|b| ObjectMeta {
                key: key.to_string(),
                len: b.len() as u64,
                logical_len: b.logical_len(),
            })
            .ok_or_else(|| StorageError::NotFound { key: key.into() })
    }

    /// All keys with the given prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<ObjectMeta> {
        self.map
            .borrow()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, b)| ObjectMeta {
                key: k.clone(),
                len: b.len() as u64,
                logical_len: b.logical_len(),
            })
            .collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// Sum of logical sizes (for capacity billing).
    pub fn total_logical_bytes(&self) -> u64 {
        self.map.borrow().values().map(|b| b.logical_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_logical_scaling() {
        let b = Blob::scaled(vec![0u8; 1000], 1000.0);
        assert_eq!(b.len(), 1000);
        assert_eq!(b.logical_len(), 1_000_000);
    }

    #[test]
    fn synthetic_blob_carries_tiny_payload() {
        let b = Blob::synthetic(64 << 20);
        assert!(b.len() <= 4096);
        assert_eq!(b.logical_len(), 64 << 20);
        let small = Blob::synthetic(100);
        assert_eq!(small.logical_len(), 100);
        assert_eq!(small.len(), 100);
    }

    #[test]
    fn blob_slice_zero_copy_and_bounds() {
        let b = Blob::new(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1, 3).unwrap();
        assert_eq!(&s.bytes[..], &[2, 3, 4]);
        assert!(matches!(
            b.slice(3, 3),
            Err(StorageError::InvalidRange { .. })
        ));
    }

    #[test]
    fn store_crud_roundtrip() {
        let s = KeyedStore::new();
        assert!(s.is_empty());
        s.put("a/1", Blob::new(vec![0u8; 10]));
        s.put("a/2", Blob::new(vec![0u8; 20]));
        s.put("b/1", Blob::new(vec![0u8; 30]));
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("a/2").unwrap().len(), 20);
        assert!(matches!(s.get("zz"), Err(StorageError::NotFound { .. })));
        assert_eq!(s.head("b/1").unwrap().len, 30);
        assert!(s.delete("a/1"));
        assert!(!s.delete("a/1"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn list_by_prefix_ordered() {
        let s = KeyedStore::new();
        for k in ["p/3", "p/1", "q/1", "p/2"] {
            s.put(k, Blob::new(vec![0u8]));
        }
        let keys: Vec<_> = s.list("p/").into_iter().map(|m| m.key).collect();
        assert_eq!(keys, vec!["p/1", "p/2", "p/3"]);
        assert_eq!(s.list("nope").len(), 0);
    }

    #[test]
    fn total_logical_bytes_uses_scaling() {
        let s = KeyedStore::new();
        s.put("x", Blob::scaled(vec![0u8; 100], 10.0));
        s.put("y", Blob::new(vec![0u8; 50]));
        assert_eq!(s.total_logical_bytes(), 1050);
    }
}
