//! The EFS shared-filesystem simulation (elastic throughput).
//!
//! Modelled behaviour (paper Secs. 2.2, 4.3):
//!
//! * Per-filesystem elastic-throughput quotas of 20 GiB/s reading and
//!   5 GiB/s writing — aggregate throughput converges to them (Fig. 8).
//! * Observed IOPS miss the documented per-filesystem quotas "by more than
//!   an order of magnitude": ~4.5K read / ~1.9K write sustained.
//! * Sharding over two filesystems doubles read IOPS but an account-level
//!   ceiling prevents further scaling (Fig. 9's EFS-1 vs EFS-2).
//! * Read latencies are as low as S3 Express; writes are 2–3× higher
//!   (Fig. 10) because of synchronous replication.
//! * A bounded number of concurrent NFS connections: under heavy
//!   contention (the paper: beyond 64 client VMs) new requests are
//!   rejected.

use crate::core::{DirectionModel, OpsLimiter, RequestOpts, ServiceCore, REJECT_LATENCY};
use crate::error::{Result, StorageError};
use crate::object::{Blob, KeyedStore, ObjectMeta};
use skyrise_pricing::{SharedMeter, StorageService};
use skyrise_sim::{LatencyDist, SimCtx, SimTime, GIB};
use std::rc::Rc;

/// EFS model parameters.
#[derive(Debug, Clone)]
pub struct EfsConfig {
    /// Observed sustained read IOPS per filesystem.
    pub read_iops: f64,
    /// Observed sustained write IOPS per filesystem.
    pub write_iops: f64,
    /// Documented elastic-throughput read quota (the Fig. 9 quota line).
    pub documented_read_iops: f64,
    /// Documented elastic-throughput write quota.
    pub documented_write_iops: f64,
    /// Aggregate read bandwidth per filesystem (bytes/s).
    pub read_bw: f64,
    /// Aggregate write bandwidth per filesystem (bytes/s).
    pub write_bw: f64,
    /// Maximum concurrent in-flight requests before connections are
    /// rejected (64 client VMs x 32 threads in the paper's setup).
    pub max_inflight: u32,
    /// Admission burst window (seconds).
    pub burst_seconds: f64,
}

impl Default for EfsConfig {
    fn default() -> Self {
        EfsConfig {
            read_iops: 4_500.0,
            write_iops: 1_900.0,
            documented_read_iops: 55_000.0,
            documented_write_iops: 25_000.0,
            read_bw: 20.0 * GIB as f64,
            write_bw: 5.0 * GIB as f64,
            max_inflight: 64 * 32,
            burst_seconds: 0.5,
        }
    }
}

/// Account-level IOPS ceiling: read IOPS double with a second filesystem
/// "but do not scale further".
pub struct EfsAccount {
    read_admission: OpsLimiter,
    write_admission: OpsLimiter,
}

impl EfsAccount {
    /// Account ceilings at twice the single-filesystem observation.
    pub fn new(cfg: &EfsConfig) -> Rc<Self> {
        Rc::new(EfsAccount {
            read_admission: OpsLimiter::new(cfg.read_iops * 2.0, cfg.burst_seconds),
            write_admission: OpsLimiter::new(cfg.write_iops * 2.0, cfg.burst_seconds),
        })
    }
}

/// A simulated EFS filesystem.
pub struct EfsFilesystem {
    core: ServiceCore,
    cfg: EfsConfig,
    store: KeyedStore,
    read_admission: OpsLimiter,
    write_admission: OpsLimiter,
    account: Option<Rc<EfsAccount>>,
}

impl EfsFilesystem {
    /// Create a filesystem.
    pub fn new(
        ctx: SimCtx,
        meter: SharedMeter,
        cfg: EfsConfig,
        account: Option<Rc<EfsAccount>>,
    ) -> Rc<Self> {
        let core = ServiceCore::new(
            ctx,
            meter,
            StorageService::Efs,
            DirectionModel {
                latency: LatencyDist::from_quantiles(0.005, 0.009, 1e-4, 1.5),
                per_request_bw: cfg.read_bw,
            },
            DirectionModel {
                // 2-3x higher write latency than the other low-latency services.
                latency: LatencyDist::from_quantiles(0.013, 0.026, 1e-4, 1.5),
                per_request_bw: cfg.write_bw,
            },
            cfg.read_bw,
            cfg.write_bw,
            Some(cfg.max_inflight),
        );
        Rc::new(EfsFilesystem {
            core,
            store: KeyedStore::new(),
            read_admission: OpsLimiter::new(cfg.read_iops, cfg.burst_seconds),
            write_admission: OpsLimiter::new(cfg.write_iops, cfg.burst_seconds),
            cfg,
            account,
        })
    }

    /// A filesystem with default elastic-throughput parameters.
    pub fn elastic(ctx: &SimCtx, meter: &SharedMeter) -> Rc<Self> {
        EfsFilesystem::new(ctx.clone(), Rc::clone(meter), EfsConfig::default(), None)
    }

    /// Model configuration.
    pub fn config(&self) -> &EfsConfig {
        &self.cfg
    }

    /// Dataset setup without billing.
    pub fn backdoor(&self) -> &KeyedStore {
        &self.store
    }

    fn admit(&self, now: SimTime, write: bool) -> bool {
        let fs_ok = if write {
            self.write_admission.try_admit(now)
        } else {
            self.read_admission.try_admit(now)
        };
        if !fs_ok {
            return false;
        }
        match &self.account {
            Some(acc) => {
                if write {
                    acc.write_admission.try_admit(now)
                } else {
                    acc.read_admission.try_admit(now)
                }
            }
            None => true,
        }
    }

    async fn reject(&self, write: bool, logical: u64) -> StorageError {
        self.core.meter_request(write, logical, true);
        self.core.ctx.sleep(REJECT_LATENCY).await;
        StorageError::Throttled
    }

    /// Read a file.
    pub async fn read(&self, path: &str, opts: &RequestOpts) -> Result<Blob> {
        let _conn = match self.core.admit_connection() {
            Ok(g) => g,
            Err(e) => {
                // Rejected connections still take a round trip to fail.
                self.core.ctx.sleep(REJECT_LATENCY).await;
                return Err(e);
            }
        };
        let now = self.core.ctx.now();
        let blob = self.store.get(path)?;
        let logical = blob.logical_len();
        if !self.admit(now, false) {
            return Err(self.reject(false, logical).await);
        }
        self.core.meter_request(false, logical, false);
        self.core.first_byte(false).await;
        self.core.stream(false, logical, opts).await;
        self.core.record_op(now);
        Ok(blob)
    }

    /// Write a file (synchronous, durable on return).
    pub async fn write(&self, path: &str, blob: Blob, opts: &RequestOpts) -> Result<()> {
        let _conn = match self.core.admit_connection() {
            Ok(g) => g,
            Err(e) => {
                self.core.ctx.sleep(REJECT_LATENCY).await;
                return Err(e);
            }
        };
        let now = self.core.ctx.now();
        let logical = blob.logical_len();
        if !self.admit(now, true) {
            return Err(self.reject(true, logical).await);
        }
        self.core.meter_request(true, logical, false);
        self.core.first_byte(true).await;
        self.core.stream(true, logical, opts).await;
        self.store.put(path, blob);
        self.core.record_op(now);
        Ok(())
    }

    /// Remove a file.
    pub async fn remove(&self, path: &str) -> Result<()> {
        self.core.meter_request(true, 0, false);
        self.core.first_byte(true).await;
        self.store.delete(path);
        Ok(())
    }

    /// List a directory prefix.
    pub async fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.core.meter_request(false, 0, false);
        self.core.first_byte(false).await;
        Ok(self.store.list(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{join_all, Sim, SimDuration};

    #[test]
    fn write_then_read_roundtrip() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let fs = EfsFilesystem::elastic(&ctx, &meter);
            let opts = RequestOpts::default();
            fs.write("/data/f1", Blob::new(vec![9u8; 4096]), &opts)
                .await
                .unwrap();
            fs.read("/data/f1", &opts).await.unwrap().len()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 4096);
    }

    #[test]
    fn write_latency_2_to_3x_read_latency() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let fs = EfsFilesystem::elastic(&ctx, &meter);
            let opts = RequestOpts::default();
            fs.write("/f", Blob::new(vec![0u8; 64]), &opts)
                .await
                .unwrap();
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for i in 0..300 {
                let t0 = ctx.now();
                fs.read("/f", &opts).await.unwrap();
                reads.push((ctx.now() - t0).as_secs_f64());
                let t1 = ctx.now();
                fs.write(&format!("/w{i}"), Blob::new(vec![0u8; 64]), &opts)
                    .await
                    .unwrap();
                writes.push((ctx.now() - t1).as_secs_f64());
                ctx.sleep(SimDuration::from_millis(50)).await;
            }
            let med = |mut v: Vec<f64>| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            };
            (med(reads), med(writes))
        });
        sim.run();
        let (r, w) = h.try_take().unwrap();
        let ratio = w / r;
        assert!((1.8..=3.5).contains(&ratio), "write/read ratio {ratio}");
    }

    #[test]
    fn iops_miss_documented_quota_by_an_order_of_magnitude() {
        let cfg = EfsConfig::default();
        assert!(cfg.documented_read_iops / cfg.read_iops > 10.0);
        assert!(cfg.documented_write_iops / cfg.write_iops > 10.0);
    }

    #[test]
    fn read_iops_double_with_second_filesystem_but_account_caps() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = EfsConfig {
                burst_seconds: 0.05,
                ..EfsConfig::default()
            };
            let run = |fss: Vec<Rc<EfsFilesystem>>, ctx: SimCtx| async move {
                for fs in &fss {
                    fs.backdoor().put("/k", Blob::new(vec![0u8; 512]));
                }
                let t0 = ctx.now();
                let handles: Vec<_> = (0..15_000u64)
                    .map(|i| {
                        let fs = Rc::clone(&fss[(i % fss.len() as u64) as usize]);
                        let ctx2 = ctx.clone();
                        let at = t0 + SimDuration::from_nanos(i * 66_000);
                        ctx.spawn(async move {
                            ctx2.sleep_until(at).await;
                            fs.read("/k", &RequestOpts::default()).await.is_ok()
                        })
                    })
                    .collect();
                join_all(handles).await.iter().filter(|&&b| b).count()
            };
            let account = EfsAccount::new(&cfg);
            let one = run(
                vec![EfsFilesystem::new(
                    ctx.clone(),
                    meter.clone(),
                    cfg.clone(),
                    Some(account.clone()),
                )],
                ctx.clone(),
            )
            .await;
            ctx.sleep(SimDuration::from_secs(30)).await;
            let account2 = EfsAccount::new(&cfg);
            let two = run(
                vec![
                    EfsFilesystem::new(
                        ctx.clone(),
                        meter.clone(),
                        cfg.clone(),
                        Some(account2.clone()),
                    ),
                    EfsFilesystem::new(
                        ctx.clone(),
                        meter.clone(),
                        cfg.clone(),
                        Some(account2.clone()),
                    ),
                ],
                ctx.clone(),
            )
            .await;
            ctx.sleep(SimDuration::from_secs(30)).await;
            let account3 = EfsAccount::new(&cfg);
            let three = run(
                (0..3)
                    .map(|_| {
                        EfsFilesystem::new(
                            ctx.clone(),
                            meter.clone(),
                            cfg.clone(),
                            Some(account3.clone()),
                        )
                    })
                    .collect(),
                ctx.clone(),
            )
            .await;
            (one, two, three)
        });
        sim.run();
        let (one, two, three) = h.try_take().unwrap();
        assert!(
            (two as f64) / (one as f64) > 1.7,
            "second fs doubles: {one} -> {two}"
        );
        assert!(
            ((three as f64) - (two as f64)).abs() / (two as f64) < 0.15,
            "third fs does not help: {two} -> {three}"
        );
    }

    #[test]
    fn connection_limit_rejects_excess_clients() {
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = EfsConfig {
                max_inflight: 8,
                ..EfsConfig::default()
            };
            let fs = EfsFilesystem::new(ctx.clone(), meter, cfg, None);
            fs.backdoor().put("/k", Blob::new(vec![0u8; 64]));
            let handles: Vec<_> = (0..32)
                .map(|_| {
                    let fs = Rc::clone(&fs);
                    ctx.spawn(async move {
                        matches!(
                            fs.read("/k", &RequestOpts::default()).await,
                            Err(StorageError::ConnectionRejected)
                        )
                    })
                })
                .collect();
            join_all(handles).await.iter().filter(|&&b| b).count()
        });
        sim.run();
        let rejected = h.try_take().unwrap();
        assert!(rejected >= 20, "rejected {rejected}");
    }
}
