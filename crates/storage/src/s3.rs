//! The S3 object-store simulation: Standard and Express One Zone classes.
//!
//! Mechanisms modelled (paper Secs. 2.2, 4.3, 4.4):
//!
//! * **Prefix partitions** (Standard): the key space is backed by `n`
//!   physical partitions, each serving 5.5K read / 3.5K write IOPS.
//!   Requests beyond capacity are throttled with `503 SlowDown`.
//! * **IOPS scale-up**: sustained overload (≥ ~85% of aggregate read
//!   capacity for ≥ `split_interval`) adds a partition — linear-with-delay
//!   scaling, calibrated to the paper's 1→5 partitions in ~26 minutes.
//! * **Write IOPS do not scale**: the paper could not push writes past a
//!   single partition's 3.5K even with 85M requests of sustained load, so
//!   writes are admitted against a fixed global limiter.
//! * **Scale-down**: after ~1.5 days without sustained overload the bucket
//!   drops to two partitions, after ~4.5 days to one (Fig. 13). Brief
//!   probes do not count as sustained load.
//! * **Latency**: heavy-tailed; Standard reads have a 27 ms median, 75 ms
//!   p95 and multi-second outliers; Express sits around 5 ms (Fig. 10).
//! * **Express**: no prefix-partition quota; 220K read / 42K write IOPS
//!   ceilings; zonal low latency; per-GiB transfer fees are metered by
//!   `skyrise-pricing`.

use crate::core::{DirectionModel, OpsLimiter, RequestOpts, ServiceCore, REJECT_LATENCY};
use crate::error::{Result, StorageError};
use crate::object::{Blob, KeyedStore, ObjectMeta, SuffixRead};
use skyrise_pricing::{SharedMeter, StorageService};
use skyrise_sim::{LatencyDist, SimCtx, SimDuration, SimTime, GIB, MIB};
use std::cell::RefCell;
use std::rc::Rc;

/// Storage class of a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum S3Class {
    /// S3 Standard: cheapest, prefix-partitioned, heavy-tailed latency.
    Standard,
    /// S3 Express One Zone: low latency, high IOPS, transfer fees.
    Express,
}

/// Tunable parameters of the S3 model. Defaults encode the paper's
/// observations; experiments occasionally scale them.
#[derive(Debug, Clone)]
pub struct S3Config {
    /// Which storage class this bucket is.
    pub class: S3Class,
    /// Read IOPS served per prefix partition (Standard).
    pub read_iops_per_partition: f64,
    /// Global write IOPS (Standard; does not scale with partitions).
    pub write_iops: f64,
    /// Express account-level read IOPS ceiling.
    pub express_read_iops: f64,
    /// Express account-level write IOPS ceiling.
    pub express_write_iops: f64,
    /// Sustained overload needed before a partition split.
    pub split_interval: SimDuration,
    /// Fraction of aggregate capacity that counts as overload.
    pub overload_threshold: f64,
    /// Idle time (since last sustained overload) until merge to 2 partitions.
    pub merge_to_two_after: SimDuration,
    /// Idle time until merge to 1 partition.
    pub merge_to_one_after: SimDuration,
    /// Hard ceiling on partitions.
    pub max_partitions: usize,
    /// Load-tracking window.
    pub window: SimDuration,
    /// Per-request streaming bandwidth, reads (bytes/s).
    pub read_bw: f64,
    /// Per-request streaming bandwidth, writes (bytes/s).
    pub write_bw: f64,
    /// Aggregate service bandwidth (bytes/s) per direction.
    pub aggregate_bw: f64,
    /// Maximum object size (bytes).
    pub max_object: u64,
}

impl S3Config {
    /// S3 Standard defaults.
    pub fn standard() -> Self {
        S3Config {
            class: S3Class::Standard,
            read_iops_per_partition: 5_500.0,
            write_iops: 3_500.0,
            express_read_iops: 220_000.0,
            express_write_iops: 42_000.0,
            split_interval: SimDuration::from_secs(315),
            overload_threshold: 0.85,
            merge_to_two_after: SimDuration::from_hours(36),
            merge_to_one_after: SimDuration::from_hours(108),
            max_partitions: 1_024,
            window: SimDuration::from_secs(2),
            read_bw: 90.0 * MIB as f64,
            write_bw: 55.0 * MIB as f64,
            aggregate_bw: 260.0 * GIB as f64,
            max_object: 5 << 40,
        }
    }

    /// S3 Express One Zone defaults.
    pub fn express() -> Self {
        S3Config {
            class: S3Class::Express,
            read_bw: 100.0 * MIB as f64,
            write_bw: 85.0 * MIB as f64,
            ..S3Config::standard()
        }
    }
}

/// Latency model per class (read, write).
fn latency_models(class: S3Class) -> (LatencyDist, LatencyDist) {
    match class {
        // Medians/p95s straight from Fig. 10; tails reach ~10 s (374x the
        // median for the slowest of 1M requests).
        S3Class::Standard => (
            LatencyDist::from_quantiles(0.027, 0.075, 8e-4, 10.5),
            LatencyDist::from_quantiles(0.040, 0.105, 8e-4, 10.5),
        ),
        S3Class::Express => (
            LatencyDist::from_quantiles(0.005, 0.0068, 1e-4, 1.2),
            LatencyDist::from_quantiles(0.006, 0.009, 1e-4, 1.2),
        ),
    }
}

/// Partition-scaling state of a Standard bucket.
#[derive(Debug)]
struct ScalingState {
    partitions: usize,
    window_start: SimTime,
    offered_reads: u64,
    overload_since: Option<SimTime>,
    /// End of the most recent *sustained* overload period (never set for
    /// buckets that only ever saw light traffic).
    last_sustained: Option<SimTime>,
    read_admission: OpsLimiter,
}

/// A simulated S3 bucket (Standard or Express).
pub struct S3Bucket {
    core: ServiceCore,
    cfg: S3Config,
    store: KeyedStore,
    scaling: RefCell<ScalingState>,
    write_admission: OpsLimiter,
    /// Express-only global read limiter.
    express_read: OpsLimiter,
}

impl S3Bucket {
    /// Create a bucket.
    pub fn new(ctx: SimCtx, meter: SharedMeter, cfg: S3Config) -> Rc<Self> {
        let (read_lat, write_lat) = latency_models(cfg.class);
        let service = match cfg.class {
            S3Class::Standard => StorageService::S3Standard,
            S3Class::Express => StorageService::S3Express,
        };
        let core = ServiceCore::new(
            ctx.clone(),
            meter,
            service,
            DirectionModel {
                latency: read_lat,
                per_request_bw: cfg.read_bw,
            },
            DirectionModel {
                latency: write_lat,
                per_request_bw: cfg.write_bw,
            },
            cfg.aggregate_bw,
            cfg.aggregate_bw,
            None,
        );
        let write_admission = match cfg.class {
            S3Class::Standard => OpsLimiter::new(cfg.write_iops, 0.2),
            S3Class::Express => OpsLimiter::new(cfg.express_write_iops, 0.2),
        };
        Rc::new(S3Bucket {
            core,
            store: KeyedStore::new(),
            scaling: RefCell::new(ScalingState {
                partitions: 1,
                window_start: ctx.now(),
                offered_reads: 0,
                overload_since: None,
                last_sustained: None,
                read_admission: OpsLimiter::new(cfg.read_iops_per_partition, 0.2),
            }),
            write_admission,
            express_read: OpsLimiter::new(cfg.express_read_iops, 0.2),
            cfg,
        })
    }

    /// Standard-class bucket with default parameters.
    pub fn standard(ctx: &SimCtx, meter: &SharedMeter) -> Rc<Self> {
        S3Bucket::new(ctx.clone(), Rc::clone(meter), S3Config::standard())
    }

    /// Express-class bucket with default parameters.
    pub fn express(ctx: &SimCtx, meter: &SharedMeter) -> Rc<Self> {
        S3Bucket::new(ctx.clone(), Rc::clone(meter), S3Config::express())
    }

    /// Storage class.
    pub fn class(&self) -> S3Class {
        self.cfg.class
    }

    /// Current prefix-partition count (always 1 for Express).
    pub fn partition_count(&self) -> usize {
        self.scaling.borrow().partitions
    }

    /// Current aggregate read IOPS capacity.
    pub fn read_iops_capacity(&self) -> f64 {
        match self.cfg.class {
            S3Class::Standard => {
                self.scaling.borrow().partitions as f64 * self.cfg.read_iops_per_partition
            }
            S3Class::Express => self.cfg.express_read_iops,
        }
    }

    /// Pretend the bucket has recently sustained enough load to hold `n`
    /// partitions (used to set up "warmed bucket" experiment arms).
    pub fn warm_to(&self, n: usize) {
        let mut s = self.scaling.borrow_mut();
        s.partitions = n.clamp(1, self.cfg.max_partitions);
        s.read_admission
            .set_rate(s.partitions as f64 * self.cfg.read_iops_per_partition);
        s.last_sustained = Some(self.core.ctx.now());
    }

    /// Direct access to the backing object map (dataset setup in tests
    /// and benchmarks; not billed).
    pub fn backdoor(&self) -> &KeyedStore {
        &self.store
    }

    /// Update scaling state for the elapsed windows and count the offered
    /// read. Splits and merges happen here, lazily.
    fn advance_scaling(&self, now: SimTime, is_read: bool) {
        if self.cfg.class == S3Class::Express {
            return;
        }
        let mut s = self.scaling.borrow_mut();
        // Merge check first: long-idle buckets shrink before admitting.
        if let Some(last) = s.last_sustained {
            let idle = now.duration_since(last);
            let target = if idle >= self.cfg.merge_to_one_after {
                1
            } else if idle >= self.cfg.merge_to_two_after {
                2
            } else {
                usize::MAX
            };
            if s.partitions > target {
                let ctx = &self.core.ctx;
                ctx.tracer()
                    .instant(ctx, self.core.service.name(), 0, "partition-merge")
                    .attr("from", s.partitions)
                    .attr("to", target);
                s.partitions = target;
                s.read_admission
                    .set_rate(target as f64 * self.cfg.read_iops_per_partition);
            }
        }
        // Window roll-over.
        let elapsed = now.duration_since(s.window_start);
        if elapsed >= self.cfg.window {
            let rate = s.offered_reads as f64 / elapsed.as_secs_f64();
            let capacity = s.partitions as f64 * self.cfg.read_iops_per_partition;
            let overloaded = rate > self.cfg.overload_threshold * capacity;
            if overloaded {
                let window_start = s.window_start;
                let since = *s.overload_since.get_or_insert(window_start);
                let streak = now.duration_since(since);
                if streak >= self.cfg.split_interval {
                    s.last_sustained = Some(now);
                    if s.partitions < self.cfg.max_partitions {
                        s.partitions += 1;
                        s.read_admission
                            .set_rate(s.partitions as f64 * self.cfg.read_iops_per_partition);
                        let ctx = &self.core.ctx;
                        ctx.tracer()
                            .instant(ctx, self.core.service.name(), 0, "partition-split")
                            .attr("partitions", s.partitions);
                    }
                    // Another full interval of overload earns the next split.
                    s.overload_since = Some(now);
                }
            } else {
                s.overload_since = None;
            }
            s.window_start = now;
            s.offered_reads = 0;
        }
        if is_read {
            s.offered_reads += 1;
        }
    }

    fn admit(&self, now: SimTime, write: bool) -> bool {
        match (self.cfg.class, write) {
            (S3Class::Standard, false) => self.scaling.borrow().read_admission.try_admit(now),
            (S3Class::Standard, true) => self.write_admission.try_admit(now),
            (S3Class::Express, false) => self.express_read.try_admit(now),
            (S3Class::Express, true) => self.write_admission.try_admit(now),
        }
    }

    async fn reject(&self, write: bool, logical: u64) -> StorageError {
        self.core.meter_request(write, logical, true);
        let ctx = &self.core.ctx;
        ctx.tracer()
            .instant(ctx, self.core.service.name(), 0, "throttle-503")
            .attr("write", write)
            .attr("bytes", logical);
        self.core.ctx.sleep(REJECT_LATENCY).await;
        StorageError::Throttled
    }

    /// GET an object.
    pub async fn get(&self, key: &str, opts: &RequestOpts) -> Result<Blob> {
        let tracer = self.core.ctx.tracer();
        let span = tracer.span(
            &self.core.ctx,
            self.core.service.name(),
            tracer.next_lane(),
            "get",
        );
        span.attr("key", key);
        let now = self.core.ctx.now();
        self.advance_scaling(now, true);
        let blob = self.store.get(key)?;
        let logical = blob.logical_len();
        span.attr("bytes", logical);
        if !self.admit(now, false) {
            return Err(self.reject(false, logical).await);
        }
        self.core.meter_request(false, logical, false);
        let fb = self.core.first_byte(false).await;
        span.attr("first_byte_s", fb.as_secs_f64());
        self.core.stream(false, logical, opts).await;
        self.core.record_op(now);
        Ok(blob)
    }

    /// GET a byte range (offsets over the *real* payload; timing and cost
    /// use the range's logical size).
    pub async fn get_range(
        &self,
        key: &str,
        offset: u64,
        len: u64,
        opts: &RequestOpts,
    ) -> Result<Blob> {
        let tracer = self.core.ctx.tracer();
        let span = tracer.span(
            &self.core.ctx,
            self.core.service.name(),
            tracer.next_lane(),
            "get_range",
        );
        span.attr("key", key);
        let now = self.core.ctx.now();
        self.advance_scaling(now, true);
        let blob = self.store.get(key)?;
        let slice = blob.slice(offset, len)?;
        let logical = slice.logical_len();
        span.attr("bytes", logical);
        if !self.admit(now, false) {
            return Err(self.reject(false, logical).await);
        }
        self.core.meter_request(false, logical, false);
        let fb = self.core.first_byte(false).await;
        span.attr("first_byte_s", fb.as_secs_f64());
        self.core.stream(false, logical, opts).await;
        self.core.record_op(now);
        Ok(slice)
    }

    /// GET the last `len` bytes of an object (an HTTP suffix range,
    /// `Range: bytes=-len`). Footer-driven readers use this to fetch the
    /// trailer — and usually the whole footer — in one request without
    /// knowing the object's size up front. Timing and cost use the
    /// returned range's logical size, like [`S3Bucket::get_range`].
    pub async fn get_suffix(&self, key: &str, len: u64, opts: &RequestOpts) -> Result<SuffixRead> {
        let tracer = self.core.ctx.tracer();
        let span = tracer.span(
            &self.core.ctx,
            self.core.service.name(),
            tracer.next_lane(),
            "get_suffix",
        );
        span.attr("key", key);
        let now = self.core.ctx.now();
        self.advance_scaling(now, true);
        let blob = self.store.get(key)?;
        let total = blob.len() as u64;
        let start = total.saturating_sub(len);
        let slice = blob.slice(start, total - start)?;
        let logical = slice.logical_len();
        span.attr("bytes", logical);
        if !self.admit(now, false) {
            return Err(self.reject(false, logical).await);
        }
        self.core.meter_request(false, logical, false);
        let fb = self.core.first_byte(false).await;
        span.attr("first_byte_s", fb.as_secs_f64());
        self.core.stream(false, logical, opts).await;
        self.core.record_op(now);
        Ok(SuffixRead {
            blob: slice,
            object_len: total,
            transferred: logical,
        })
    }

    /// PUT an object.
    pub async fn put(&self, key: &str, blob: Blob, opts: &RequestOpts) -> Result<()> {
        let tracer = self.core.ctx.tracer();
        let span = tracer.span(
            &self.core.ctx,
            self.core.service.name(),
            tracer.next_lane(),
            "put",
        );
        span.attr("key", key);
        let now = self.core.ctx.now();
        self.advance_scaling(now, false);
        let logical = blob.logical_len();
        span.attr("bytes", logical);
        if logical > self.cfg.max_object {
            return Err(StorageError::TooLarge {
                limit: self.cfg.max_object,
                got: logical,
            });
        }
        if !self.admit(now, true) {
            return Err(self.reject(true, logical).await);
        }
        self.core.meter_request(true, logical, false);
        let fb = self.core.first_byte(true).await;
        span.attr("first_byte_s", fb.as_secs_f64());
        self.core.stream(true, logical, opts).await;
        self.store.put(key, blob);
        self.core.record_op(now);
        Ok(())
    }

    /// DELETE an object (billed as a write request; no payload).
    pub async fn delete(&self, key: &str) -> Result<()> {
        self.core.meter_request(true, 0, false);
        self.core.first_byte(true).await;
        self.store.delete(key);
        Ok(())
    }

    /// HEAD an object (billed as a read request).
    pub async fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.core.meter_request(false, 0, false);
        self.core.first_byte(false).await;
        self.store.head(key)
    }

    /// LIST keys under a prefix (billed as one read request).
    pub async fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.core.meter_request(false, 0, false);
        self.core.first_byte(false).await;
        Ok(self.store.list(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::{join_all, Sim};

    fn run_in_sim<T: 'static>(
        seed: u64,
        f: impl FnOnce(SimCtx, SharedMeter) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
            + 'static,
    ) -> T {
        let mut sim = Sim::new(seed);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(f(ctx, meter));
        sim.run();
        h.try_take().expect("task finished")
    }

    #[test]
    fn put_get_roundtrip() {
        let ok = run_in_sim(1, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                let opts = RequestOpts::default();
                bucket
                    .put("data/part-0", Blob::new(vec![7u8; 1024]), &opts)
                    .await
                    .unwrap();
                let got = bucket.get("data/part-0", &opts).await.unwrap();
                got.bytes[..] == [7u8; 1024][..]
            })
        });
        assert!(ok);
    }

    #[test]
    fn get_missing_is_not_found() {
        run_in_sim(1, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                let err = bucket
                    .get("nope", &RequestOpts::default())
                    .await
                    .unwrap_err();
                assert!(matches!(err, StorageError::NotFound { .. }));
            })
        });
    }

    #[test]
    fn read_latency_matches_fig10() {
        let (med, p95) = run_in_sim(2, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 1024]), &opts)
                    .await
                    .unwrap();
                let mut lat = Vec::new();
                for _ in 0..2000 {
                    let t0 = ctx.now();
                    bucket.get("k", &opts).await.unwrap();
                    lat.push((ctx.now() - t0).as_secs_f64());
                    // Pace below the IOPS limit.
                    ctx.sleep(SimDuration::from_millis(1)).await;
                }
                lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (lat[1000], lat[1900])
            })
        });
        assert!((med - 0.027).abs() < 0.006, "median {med}");
        assert!(p95 > 0.05 && p95 < 0.12, "p95 {p95}");
    }

    #[test]
    fn express_is_an_order_of_magnitude_faster() {
        let med = run_in_sim(3, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::express(&ctx, &meter);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 1024]), &opts)
                    .await
                    .unwrap();
                let mut lat = Vec::new();
                for _ in 0..500 {
                    let t0 = ctx.now();
                    bucket.get("k", &opts).await.unwrap();
                    lat.push((ctx.now() - t0).as_secs_f64());
                }
                lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
                lat[250]
            })
        });
        assert!((med - 0.005).abs() < 0.002, "median {med}");
    }

    #[test]
    fn single_partition_throttles_beyond_5500_reads() {
        let (ok, throttled) = run_in_sim(4, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // Offer 8K requests over one second.
                let handles: Vec<_> = (0..8000u32)
                    .map(|i| {
                        let bucket = Rc::clone(&bucket);
                        let ctx2 = ctx.clone();
                        ctx.spawn(async move {
                            ctx2.sleep(SimDuration::from_micros(i as u64 * 125)).await;
                            bucket.get("k", &RequestOpts::default()).await.is_ok()
                        })
                    })
                    .collect();
                let results = join_all(handles).await;
                let ok = results.iter().filter(|&&b| b).count();
                (ok, results.len() - ok)
            })
        });
        // Capacity ~5.5K/s plus the 1s burst allowance.
        assert!((5500..=7200).contains(&ok), "ok {ok}");
        assert!(throttled >= 800, "throttled {throttled}");
    }

    #[test]
    fn sustained_overload_splits_partitions() {
        // Scaled-down parameters (1/100 IOPS, 30 s split interval) keep the
        // mechanism intact while the test spawns only ~17K requests.
        let partitions = run_in_sim(5, |ctx, meter| {
            Box::pin(async move {
                let cfg = S3Config {
                    read_iops_per_partition: 55.0,
                    split_interval: SimDuration::from_secs(30),
                    window: SimDuration::from_secs(1),
                    ..S3Config::standard()
                };
                let bucket = S3Bucket::new(ctx.clone(), Rc::clone(&meter), cfg);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // ~120 offered IOPS for 140 s: expect multiple splits
                // (one per 30 s of sustained overload once a window rolls).
                // All requests are scheduled on a fixed open-loop timetable
                // so latency outliers cannot starve the load.
                let t0 = ctx.now();
                let handles: Vec<_> = (0..140u64 * 120)
                    .map(|i| {
                        let bucket = Rc::clone(&bucket);
                        let ctx2 = ctx.clone();
                        let at = t0 + SimDuration::from_micros(i * 8_333);
                        ctx.spawn(async move {
                            ctx2.sleep_until(at).await;
                            let _ = bucket.get("k", &RequestOpts::default()).await;
                        })
                    })
                    .collect();
                join_all(handles).await;
                bucket.partition_count()
            })
        });
        assert!((2..=5).contains(&partitions), "partitions {partitions}");
    }

    #[test]
    fn express_has_no_partition_quota() {
        let ok = run_in_sim(6, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::express(&ctx, &meter);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // 50K reads over one second sail through (quota 220K).
                let handles: Vec<_> = (0..50_000u32)
                    .map(|i| {
                        let bucket = Rc::clone(&bucket);
                        let ctx2 = ctx.clone();
                        ctx.spawn(async move {
                            ctx2.sleep(SimDuration::from_micros(i as u64 * 20)).await;
                            bucket.get("k", &RequestOpts::default()).await.is_ok()
                        })
                    })
                    .collect();
                join_all(handles).await.iter().filter(|&&b| b).count()
            })
        });
        assert_eq!(ok, 50_000);
    }

    #[test]
    fn warm_bucket_merges_after_idle_days() {
        run_in_sim(7, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                bucket.warm_to(5);
                assert_eq!(bucket.partition_count(), 5);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // After 2 days idle: down to 2 partitions.
                ctx.sleep(SimDuration::from_days(2)).await;
                let _ = bucket.get("k", &opts).await;
                assert_eq!(bucket.partition_count(), 2);
                // After 5 days total: back to 1.
                ctx.sleep(SimDuration::from_days(3)).await;
                let _ = bucket.get("k", &opts).await;
                assert_eq!(bucket.partition_count(), 1);
            })
        });
    }

    #[test]
    fn brief_probes_do_not_prevent_downscale() {
        run_in_sim(8, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                bucket.warm_to(5);
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // Hourly probes (a handful of requests) for 5 days.
                for _hour in 0..(5 * 24) {
                    ctx.sleep(SimDuration::from_hours(1)).await;
                    for _ in 0..5 {
                        let _ = bucket.get("k", &opts).await;
                    }
                }
                assert_eq!(bucket.partition_count(), 1, "probes must not keep it warm");
            })
        });
    }

    #[test]
    fn writes_do_not_scale_with_partitions() {
        let (ok1, ok5) = run_in_sim(9, |ctx, meter| {
            Box::pin(async move {
                let measure = |bucket: Rc<S3Bucket>, ctx: SimCtx| async move {
                    let handles: Vec<_> = (0..6000u32)
                        .map(|i| {
                            let bucket = Rc::clone(&bucket);
                            let ctx2 = ctx.clone();
                            ctx.spawn(async move {
                                ctx2.sleep(SimDuration::from_micros(i as u64 * 160)).await;
                                bucket
                                    .put(
                                        &format!("w{i}"),
                                        Blob::new(vec![0u8; 64]),
                                        &RequestOpts::default(),
                                    )
                                    .await
                                    .is_ok()
                            })
                        })
                        .collect();
                    join_all(handles).await.iter().filter(|&&b| b).count()
                };
                let b1 = S3Bucket::standard(&ctx, &meter);
                let ok1 = measure(Rc::clone(&b1), ctx.clone()).await;
                let b5 = S3Bucket::standard(&ctx, &meter);
                b5.warm_to(5);
                let ok5 = measure(b5, ctx.clone()).await;
                (ok1, ok5)
            })
        });
        let diff = (ok1 as f64 - ok5 as f64).abs() / ok1 as f64;
        assert!(diff < 0.1, "write capacity identical: {ok1} vs {ok5}");
    }

    #[test]
    fn requests_are_billed_including_failures() {
        run_in_sim(10, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter.clone());
                let opts = RequestOpts::default();
                bucket
                    .put("k", Blob::new(vec![0u8; 100]), &opts)
                    .await
                    .unwrap();
                // Fire all 7000 at the same instant: ~1500 must throttle.
                let handles: Vec<_> = (0..7000)
                    .map(|_| {
                        let bucket = Rc::clone(&bucket);
                        ctx.spawn(async move {
                            let _ = bucket.get("k", &RequestOpts::default()).await;
                        })
                    })
                    .collect();
                join_all(handles).await;
                let m = meter.borrow();
                let u = &m.storage[&StorageService::S3Standard];
                assert_eq!(u.read_requests, 7000);
                assert!(u.failed_requests > 0);
                let report = m.report();
                let expect = 7000.0 * 4e-7 + 5e-6;
                assert!((report.storage_request_usd - expect).abs() < 1e-9);
            })
        });
    }

    #[test]
    fn range_get_returns_slice_and_bills_range_size() {
        run_in_sim(11, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter.clone());
                let opts = RequestOpts::default();
                let data: Vec<u8> = (0..=255u8).collect();
                bucket.put("k", Blob::new(data), &opts).await.unwrap();
                let part = bucket.get_range("k", 16, 4, &opts).await.unwrap();
                assert_eq!(&part.bytes[..], &[16, 17, 18, 19]);
                assert!(matches!(
                    bucket.get_range("k", 250, 10, &opts).await.unwrap_err(),
                    StorageError::InvalidRange { .. }
                ));
            })
        });
    }

    #[test]
    fn list_and_head_and_delete() {
        run_in_sim(12, |ctx, meter| {
            Box::pin(async move {
                let bucket = S3Bucket::standard(&ctx, &meter);
                let opts = RequestOpts::default();
                for i in 0..4 {
                    bucket
                        .put(&format!("t/p{i}"), Blob::new(vec![0u8; 10]), &opts)
                        .await
                        .unwrap();
                }
                assert_eq!(bucket.list("t/").await.unwrap().len(), 4);
                assert_eq!(bucket.head("t/p2").await.unwrap().len, 10);
                bucket.delete("t/p2").await.unwrap();
                assert_eq!(bucket.list("t/").await.unwrap().len(), 3);
            })
        });
    }
}
