//! Client-side request handling: the `Storage` service handle and the
//! retrying client.
//!
//! The paper configures its S3 client with "a request timeout of 200 ms
//! for retries and exponential backoff — an eager but not aggressive retry
//! behavior" (Sec. 4.4.1), and its query engine "retrigger[s] straggling
//! requests after a size-based timeout" (Sec. 3.2). [`RetryPolicy`] encodes
//! both. Repeatedly rejected clients back off exponentially and become the
//! stragglers responsible for the IOPS dips of Fig. 11.

use crate::core::{RequestOpts, REJECT_LATENCY};
use crate::dynamodb::DynamoTable;
use crate::efs::EfsFilesystem;
use crate::error::{Result, StorageError};
use crate::object::{Blob, ObjectMeta, RangedBlob, SuffixRead};
use crate::s3::S3Bucket;
use skyrise_sim::faults::StorageFault;
use skyrise_sim::telemetry::Counter;
use skyrise_sim::{race, Either, SimCtx, SimDuration};
use std::future::Future;
use std::rc::Rc;

/// A handle to any of the simulated storage services, exposing one blob
/// API. The engine and the microbenchmarks are written against this.
#[derive(Clone)]
pub enum Storage {
    /// An S3 bucket (Standard or Express).
    S3(Rc<S3Bucket>),
    /// A DynamoDB table.
    Dynamo(Rc<DynamoTable>),
    /// An EFS filesystem.
    Efs(Rc<EfsFilesystem>),
}

impl Storage {
    /// GET/read a whole object.
    pub async fn get(&self, key: &str, opts: &RequestOpts) -> Result<Blob> {
        match self {
            Storage::S3(b) => b.get(key, opts).await,
            Storage::Dynamo(t) => t.get(key, opts).await,
            Storage::Efs(f) => f.read(key, opts).await,
        }
    }

    /// GET a byte range.
    ///
    /// Only S3 supports native ranged reads. DynamoDB and EFS fall back
    /// to a **full** `get` and slice client-side: the service meters,
    /// bills, and streams the *whole object's* logical size — the paper's
    /// reason these backends only suit small exchange objects — and only
    /// the requested slice is returned. Callers that account transferred
    /// bytes must use [`Storage::get_range_metered`], which reports the
    /// full payload on the fallback path rather than the slice length.
    pub async fn get_range(
        &self,
        key: &str,
        offset: u64,
        len: u64,
        opts: &RequestOpts,
    ) -> Result<Blob> {
        self.get_range_metered(key, offset, len, opts)
            .await
            .map(|r| r.blob)
    }

    /// GET a byte range, reporting the logical bytes the request actually
    /// moved (see [`Storage::get_range`] for the fallback semantics).
    pub async fn get_range_metered(
        &self,
        key: &str,
        offset: u64,
        len: u64,
        opts: &RequestOpts,
    ) -> Result<RangedBlob> {
        match self {
            Storage::S3(b) => {
                let blob = b.get_range(key, offset, len, opts).await?;
                let transferred = blob.logical_len();
                Ok(RangedBlob { blob, transferred })
            }
            Storage::Dynamo(t) => ranged_from_full(t.get(key, opts).await?, offset, len),
            Storage::Efs(f) => ranged_from_full(f.read(key, opts).await?, offset, len),
        }
    }

    /// GET the last `len` bytes of an object plus its total payload length
    /// (`Range: bytes=-len`). Same fallback semantics as
    /// [`Storage::get_range`]: DynamoDB and EFS transfer the whole object
    /// and slice client-side, and `transferred` reports the full payload.
    pub async fn get_suffix(&self, key: &str, len: u64, opts: &RequestOpts) -> Result<SuffixRead> {
        match self {
            Storage::S3(b) => b.get_suffix(key, len, opts).await,
            Storage::Dynamo(t) => suffix_from_full(t.get(key, opts).await?, len),
            Storage::Efs(f) => suffix_from_full(f.read(key, opts).await?, len),
        }
    }

    /// PUT/write an object.
    pub async fn put(&self, key: &str, blob: Blob, opts: &RequestOpts) -> Result<()> {
        match self {
            Storage::S3(b) => b.put(key, blob, opts).await,
            Storage::Dynamo(t) => t.put(key, blob, opts).await,
            Storage::Efs(f) => f.write(key, blob, opts).await,
        }
    }

    /// DELETE an object.
    pub async fn delete(&self, key: &str) -> Result<()> {
        match self {
            Storage::S3(b) => b.delete(key).await,
            Storage::Dynamo(t) => t.delete(key).await,
            Storage::Efs(f) => f.remove(key).await,
        }
    }

    /// LIST keys under a prefix.
    pub async fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        match self {
            Storage::S3(b) => b.list(prefix).await,
            Storage::Dynamo(t) => t.query_prefix(prefix).await,
            Storage::Efs(f) => f.list(prefix).await,
        }
    }

    /// Insert data without billing or timing (dataset setup).
    pub fn backdoor_put(&self, key: &str, blob: Blob) {
        match self {
            Storage::S3(b) => b.backdoor().put(key, blob),
            Storage::Dynamo(t) => t.backdoor().put(key, blob),
            Storage::Efs(f) => f.backdoor().put(key, blob),
        }
    }

    /// Service display name.
    pub fn name(&self) -> &'static str {
        match self {
            Storage::S3(b) => match b.class() {
                crate::s3::S3Class::Standard => "S3 Standard",
                crate::s3::S3Class::Express => "S3 Express",
            },
            Storage::Dynamo(_) => "DynamoDB",
            Storage::Efs(_) => "EFS",
        }
    }
}

/// Fallback-path helper: slice a range out of a fully transferred object,
/// accounting the whole logical payload as moved.
fn ranged_from_full(full: Blob, offset: u64, len: u64) -> Result<RangedBlob> {
    let transferred = full.logical_len();
    let blob = full.slice(offset, len)?;
    Ok(RangedBlob { blob, transferred })
}

/// Fallback-path helper: slice the tail out of a fully transferred object.
fn suffix_from_full(full: Blob, len: u64) -> Result<SuffixRead> {
    let transferred = full.logical_len();
    let object_len = full.len() as u64;
    let start = object_len.saturating_sub(len);
    let blob = full.slice(start, object_len - start)?;
    Ok(SuffixRead {
        blob,
        object_len,
        transferred,
    })
}

/// Retry policy: timeout, backoff, attempt cap.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Base timeout for a zero-byte request.
    pub base_timeout: SimDuration,
    /// Expected transfer bandwidth for the size-based timeout:
    /// `timeout = base + bytes / expected_bw * slack`.
    pub expected_bw: f64,
    /// Multiplier on the expected transfer time.
    pub timeout_slack: f64,
    /// First backoff sleep.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Maximum attempts before giving up.
    pub max_attempts: u32,
    /// Apply full jitter (AWS-recommended) to backoff sleeps.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: SimDuration::from_millis(200),
            expected_bw: 40.0 * 1024.0 * 1024.0,
            timeout_slack: 2.0,
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(20),
            max_attempts: 8,
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The paper's eager-but-not-aggressive S3 client.
    pub fn eager() -> Self {
        RetryPolicy::default()
    }

    /// A patient client for bulk transfers (no 200 ms trigger-happiness).
    pub fn bulk() -> Self {
        RetryPolicy {
            base_timeout: SimDuration::from_secs(5),
            ..RetryPolicy::default()
        }
    }

    /// Timeout for a request expected to move `bytes`.
    pub fn timeout_for(&self, bytes: u64) -> SimDuration {
        self.base_timeout
            + SimDuration::from_secs_f64(bytes as f64 / self.expected_bw * self.timeout_slack)
    }

    /// Backoff before retry number `attempt` (1-based).
    pub fn backoff(&self, ctx: &SimCtx, attempt: u32) -> SimDuration {
        let exp = self
            .backoff_base
            .as_secs_f64()
            .mul_add(2f64.powi(attempt.saturating_sub(1) as i32), 0.0);
        let capped = exp.min(self.backoff_cap.as_secs_f64());
        let secs = if self.jitter {
            ctx.with_rng(|r| r.gen_range_f64(0.0, capped))
        } else {
            capped
        };
        SimDuration::from_secs_f64(secs)
    }
}

/// Trace label for a retry-triggering error.
fn retry_reason(err: &StorageError) -> &'static str {
    match err {
        StorageError::Throttled => "throttled",
        StorageError::Timeout => "timeout",
        _ => "error",
    }
}

/// Outcome statistics of a retried operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts rejected by rate limiting.
    pub throttles: u32,
    /// Attempts abandoned at the timeout.
    pub timeouts: u32,
}

/// A storage client applying timeouts, retries and exponential backoff.
///
/// All operations share one retry driver ([`RetryingClient::with_retries`])
/// and therefore one failure classification:
///
/// * success → return the value plus [`RetryStats`] (`attempts == 1` means
///   the first try succeeded);
/// * `NotFound` / `TooLarge` / `InvalidRange` → returned as-is, never
///   retried;
/// * `Throttled` (counted) and any other service error → backoff + retry;
/// * an attempt outliving the size-based timeout is abandoned, counted as
///   a timeout, and retried;
/// * after `max_attempts` the last error is wrapped in
///   [`StorageError::RetriesExhausted`].
#[derive(Clone)]
pub struct RetryingClient {
    /// The wrapped service handle.
    pub storage: Storage,
    /// Simulation context (for timers and jitter).
    pub ctx: SimCtx,
    /// Timeout/backoff policy.
    pub policy: RetryPolicy,
    /// Trace lane allocated to this client (clones share it), so concurrent
    /// clients' retry instants land on distinct Chrome-trace rows.
    lane: u64,
    metrics: ClientMetrics,
}

/// Cached telemetry counters shared by all clones of one client
/// (DESIGN.md §10); all no-ops without a registry.
#[derive(Clone)]
struct ClientMetrics {
    retries: Counter,
    throttles: Counter,
    timeouts: Counter,
    exhausted: Counter,
}

impl RetryingClient {
    /// Wrap a service handle. Allocates this client's trace lane (0 when
    /// tracing is disabled).
    pub fn new(storage: Storage, ctx: SimCtx, policy: RetryPolicy) -> Self {
        let lane = ctx.tracer().next_lane();
        let reg = ctx.metrics();
        let metrics = ClientMetrics {
            retries: reg.counter("storage.client.retries"),
            throttles: reg.counter("storage.client.throttles"),
            timeouts: reg.counter("storage.client.timeouts"),
            exhausted: reg.counter("storage.client.exhausted"),
        };
        RetryingClient {
            storage,
            ctx,
            policy,
            lane,
            metrics,
        }
    }

    /// The generic retry driver. `attempt` produces one request future per
    /// call; injected faults from the simulation's fault plan (if any) are
    /// applied before the real request — an injected throttle rejects after
    /// the service's reject latency, an injected timeout swallows the
    /// attempt until the client gives up on it.
    async fn with_retries<T, F, Fut>(
        &self,
        key: &str,
        expected_bytes: u64,
        mut attempt: F,
    ) -> Result<(T, RetryStats)>
    where
        F: FnMut() -> Fut,
        Fut: Future<Output = Result<T>>,
    {
        let mut stats = RetryStats::default();
        let timeout = self.policy.timeout_for(expected_bytes);
        let faults = self.ctx.faults();
        loop {
            stats.attempts += 1;
            let injected = faults.sample_storage_fault();
            let outcome = match injected {
                Some(StorageFault::Throttle) => {
                    self.ctx
                        .tracer()
                        .instant(&self.ctx, "storage-client", self.lane, "fault-throttle")
                        .attr("key", key);
                    self.ctx.sleep(REJECT_LATENCY).await;
                    Either::Left(Err(StorageError::Throttled))
                }
                Some(StorageFault::Timeout) => {
                    self.ctx
                        .tracer()
                        .instant(&self.ctx, "storage-client", self.lane, "fault-timeout")
                        .attr("key", key);
                    self.ctx.sleep(timeout).await;
                    Either::Right(())
                }
                None => race(attempt(), self.ctx.sleep(timeout)).await,
            };
            let err = match outcome {
                Either::Left(Ok(value)) => return Ok((value, stats)),
                Either::Left(Err(
                    e @ (StorageError::NotFound { .. }
                    | StorageError::TooLarge { .. }
                    | StorageError::InvalidRange { .. }),
                )) => {
                    return Err(e); // not retryable
                }
                Either::Left(Err(e)) => {
                    if e == StorageError::Throttled {
                        stats.throttles += 1;
                        self.metrics.throttles.inc();
                    }
                    e
                }
                Either::Right(()) => {
                    stats.timeouts += 1;
                    self.metrics.timeouts.inc();
                    StorageError::Timeout
                }
            };
            if stats.attempts >= self.policy.max_attempts {
                self.metrics.exhausted.inc();
                return Err(StorageError::RetriesExhausted {
                    attempts: stats.attempts,
                    last: err.to_string(),
                });
            }
            self.metrics.retries.inc();
            self.ctx
                .tracer()
                .instant(&self.ctx, "storage-client", self.lane, "retry")
                .attr("attempt", stats.attempts)
                .attr("reason", retry_reason(&err))
                .attr("key", key);
            self.ctx
                .sleep(self.policy.backoff(&self.ctx, stats.attempts))
                .await;
        }
    }

    /// GET with retries. `expected_bytes` sizes the timeout.
    pub async fn get(
        &self,
        key: &str,
        expected_bytes: u64,
        opts: &RequestOpts,
    ) -> Result<(Blob, RetryStats)> {
        self.with_retries(key, expected_bytes, || self.storage.get(key, opts))
            .await
    }

    /// GET a range with retries. `expected_bytes` sizes the timeout — it
    /// may differ from `len` when the object is logically scaled.
    pub async fn get_range(
        &self,
        key: &str,
        offset: u64,
        len: u64,
        expected_bytes: u64,
        opts: &RequestOpts,
    ) -> Result<(Blob, RetryStats)> {
        self.with_retries(key, expected_bytes, || {
            self.storage.get_range(key, offset, len, opts)
        })
        .await
    }

    /// GET a range with retries, reporting transferred logical bytes
    /// (full-object on the Dynamo/EFS fallback — see
    /// [`Storage::get_range`]).
    pub async fn get_range_metered(
        &self,
        key: &str,
        offset: u64,
        len: u64,
        expected_bytes: u64,
        opts: &RequestOpts,
    ) -> Result<(RangedBlob, RetryStats)> {
        self.with_retries(key, expected_bytes, || {
            self.storage.get_range_metered(key, offset, len, opts)
        })
        .await
    }

    /// GET an object's trailing bytes with retries (see
    /// [`Storage::get_suffix`]).
    pub async fn get_suffix(
        &self,
        key: &str,
        len: u64,
        expected_bytes: u64,
        opts: &RequestOpts,
    ) -> Result<(SuffixRead, RetryStats)> {
        self.with_retries(key, expected_bytes, || {
            self.storage.get_suffix(key, len, opts)
        })
        .await
    }

    /// PUT with retries.
    pub async fn put(&self, key: &str, blob: Blob, opts: &RequestOpts) -> Result<RetryStats> {
        let expected = blob.logical_len();
        let ((), stats) = self
            .with_retries(key, expected, || self.storage.put(key, blob.clone(), opts))
            .await?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamodb::DynamoConfig;
    use skyrise_pricing::shared_meter;
    use skyrise_sim::Sim;

    #[test]
    fn retry_succeeds_after_throttles() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            // A tiny-capacity table: the first burst throttles, backoff
            // waits for token refill, a later attempt succeeds.
            let cfg = DynamoConfig {
                read_iops: 2.0,
                burst_seconds: 0.5,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 64]));
            let client = RetryingClient::new(
                Storage::Dynamo(Rc::clone(&table)),
                ctx.clone(),
                RetryPolicy::default(),
            );
            let opts = RequestOpts::default();
            // Drain the burst first.
            let _ = table.get("k", &opts).await;
            let _ = table.get("k", &opts).await;
            client.get("k", 64, &opts).await
        });
        sim.run();
        let (blob, stats) = h.try_take().unwrap().unwrap();
        assert_eq!(blob.len(), 64);
        assert!(stats.attempts >= 1);
    }

    #[test]
    fn not_found_is_not_retried() {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            let client =
                RetryingClient::new(Storage::S3(bucket), ctx.clone(), RetryPolicy::default());
            let t0 = ctx.now();
            let err = client
                .get("missing", 64, &RequestOpts::default())
                .await
                .unwrap_err();
            ((ctx.now() - t0).as_secs_f64(), err)
        });
        sim.run();
        let (elapsed, err) = h.try_take().unwrap();
        assert!(matches!(err, StorageError::NotFound { .. }));
        assert!(elapsed < 0.05, "no backoff loop: {elapsed}");
    }

    #[test]
    fn retries_exhaust_against_dead_capacity() {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: 1e-9, // effectively zero
                burst_seconds: 0.0,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 64]));
            let policy = RetryPolicy {
                max_attempts: 3,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::Dynamo(table), ctx.clone(), policy);
            client.get("k", 64, &RequestOpts::default()).await
        });
        sim.run();
        let err = h.try_take().unwrap().unwrap_err();
        assert!(matches!(
            err,
            StorageError::RetriesExhausted { attempts: 3, .. }
        ));
    }

    #[test]
    fn telemetry_counts_retries_and_exhaustion() {
        let mut sim = Sim::new(3);
        let reg = sim.install_metrics();
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: 1e-9, // effectively zero
                burst_seconds: 0.0,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 64]));
            let policy = RetryPolicy {
                max_attempts: 3,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::Dynamo(table), ctx.clone(), policy);
            client.get("k", 64, &RequestOpts::default()).await
        });
        sim.run();
        assert!(h.try_take().unwrap().is_err());
        let snap = reg.snapshot();
        // 3 attempts: 2 backoff retries, then exhaustion on the third.
        assert_eq!(snap.counters["storage.client.retries"], 2);
        assert_eq!(snap.counters["storage.client.throttles"], 3);
        assert_eq!(snap.counters["storage.client.exhausted"], 1);
        // Per-backend core counters see the failed ops too.
        assert_eq!(snap.counters["storage.dynamodb.ops_failed"], 3);
    }

    #[test]
    fn get_range_counts_throttles_then_succeeds() {
        let mut sim = Sim::new(7);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: 2.0,
                burst_seconds: 0.5,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 64]));
            let client = RetryingClient::new(
                Storage::Dynamo(Rc::clone(&table)),
                ctx.clone(),
                RetryPolicy::default(),
            );
            let opts = RequestOpts::default();
            // Drain the tiny burst so the client's first attempts throttle.
            let _ = table.get("k", &opts).await;
            let _ = table.get("k", &opts).await;
            client.get_range("k", 0, 32, 64, &opts).await
        });
        sim.run();
        let (blob, stats) = h.try_take().unwrap().unwrap();
        assert_eq!(blob.len(), 32);
        assert!(stats.attempts >= 2, "attempts {}", stats.attempts);
        assert!(stats.throttles >= 1, "throttles {}", stats.throttles);
    }

    #[test]
    fn put_counts_throttles_then_succeeds() {
        let mut sim = Sim::new(8);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                write_iops: 2.0,
                burst_seconds: 0.5,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            let client = RetryingClient::new(
                Storage::Dynamo(Rc::clone(&table)),
                ctx.clone(),
                RetryPolicy::default(),
            );
            let opts = RequestOpts::default();
            // Drain the write burst first.
            let _ = table.put("a", Blob::new(vec![0u8; 8]), &opts).await;
            let _ = table.put("b", Blob::new(vec![0u8; 8]), &opts).await;
            client.put("k", Blob::new(vec![0u8; 64]), &opts).await
        });
        sim.run();
        let stats = h.try_take().unwrap().unwrap();
        assert!(stats.attempts >= 2, "attempts {}", stats.attempts);
        assert!(stats.throttles >= 1, "throttles {}", stats.throttles);
    }

    #[test]
    fn get_range_timeouts_exhaust_like_get() {
        let mut sim = Sim::new(9);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            let opts = RequestOpts::default();
            bucket
                .put("k", Blob::new(vec![0u8; 64]), &opts)
                .await
                .unwrap();
            let policy = RetryPolicy {
                base_timeout: SimDuration::from_millis(1),
                max_attempts: 4,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::S3(bucket), ctx.clone(), policy);
            client.get_range("k", 0, 32, 0, &opts).await
        });
        sim.run();
        let err = h.try_take().unwrap().unwrap_err();
        assert!(
            matches!(&err, StorageError::RetriesExhausted { attempts: 4, last } if last.contains("timed out")),
            "{err:?}"
        );
    }

    #[test]
    fn put_timeouts_exhaust_like_get() {
        let mut sim = Sim::new(10);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            let policy = RetryPolicy {
                base_timeout: SimDuration::from_millis(1),
                max_attempts: 4,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::S3(bucket), ctx.clone(), policy);
            client
                .put("k", Blob::new(vec![0u8; 64]), &RequestOpts::default())
                .await
        });
        sim.run();
        let err = h.try_take().unwrap().unwrap_err();
        assert!(
            matches!(&err, StorageError::RetriesExhausted { attempts: 4, last } if last.contains("timed out")),
            "{err:?}"
        );
    }

    #[test]
    fn injected_storage_throttles_are_counted_by_plan_and_stats() {
        let mut sim = Sim::new(11);
        let plan = sim.install_faults(skyrise_sim::FaultConfig {
            storage_throttle_prob: 1.0,
            ..skyrise_sim::FaultConfig::default()
        });
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            let opts = RequestOpts::default();
            bucket
                .put("k", Blob::new(vec![0u8; 64]), &opts)
                .await
                .unwrap();
            let policy = RetryPolicy {
                max_attempts: 3,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::S3(bucket), ctx.clone(), policy);
            client.get("k", 64, &opts).await
        });
        sim.run();
        let err = h.try_take().unwrap().unwrap_err();
        assert!(
            matches!(&err, StorageError::RetriesExhausted { attempts: 3, last } if last.contains("throttled")),
            "{err:?}"
        );
        // Every attempt was preempted by an injected throttle; the raw
        // bucket `put` above bypasses the client and samples nothing.
        assert_eq!(plan.stats().storage_throttles, 3);
    }

    #[test]
    fn timeout_triggers_retry_for_slow_tail() {
        // With a 1 ms timeout every attempt times out: the client must
        // classify them as timeouts, back off, and eventually give up.
        let mut sim = Sim::new(4);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let bucket = S3Bucket::standard(&ctx, &meter);
            let opts = RequestOpts::default();
            bucket
                .put("k", Blob::new(vec![0u8; 64]), &opts)
                .await
                .unwrap();
            let policy = RetryPolicy {
                base_timeout: SimDuration::from_millis(1),
                max_attempts: 4,
                jitter: false,
                ..RetryPolicy::default()
            };
            let client = RetryingClient::new(Storage::S3(bucket), ctx.clone(), policy);
            client.get("k", 0, &opts).await
        });
        sim.run();
        let err = h.try_take().unwrap().unwrap_err();
        assert!(
            matches!(&err, StorageError::RetriesExhausted { last, .. } if last.contains("timed out")),
            "{err:?}"
        );
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let mut sim = Sim::new(5);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let policy = RetryPolicy {
                jitter: false,
                ..RetryPolicy::default()
            };
            (
                policy.backoff(&ctx, 1).as_millis(),
                policy.backoff(&ctx, 2).as_millis(),
                policy.backoff(&ctx, 3).as_millis(),
                policy.backoff(&ctx, 20).as_millis(),
            )
        });
        sim.run();
        let (b1, b2, b3, bcap) = h.try_take().unwrap();
        assert_eq!((b1, b2, b3), (100, 200, 400));
        assert_eq!(bcap, 20_000, "capped");
    }

    #[test]
    fn size_based_timeout_scales() {
        let policy = RetryPolicy::default();
        let small = policy.timeout_for(0);
        let big = policy.timeout_for(64 << 20);
        assert_eq!(small.as_millis(), 200);
        // 64 MiB at 40 MiB/s expected, x2 slack = 3.2 s extra.
        assert!(
            (big.as_secs_f64() - 3.4).abs() < 0.05,
            "{}",
            big.as_secs_f64()
        );
    }

    #[test]
    fn dynamo_range_fallback_reports_full_transfer() {
        let mut sim = Sim::new(12);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let table = DynamoTable::on_demand(&ctx, &meter);
            table.backdoor().put("k", Blob::new(vec![7u8; 256]));
            let storage = Storage::Dynamo(table);
            let opts = RequestOpts::default();
            let ranged = storage.get_range_metered("k", 16, 4, &opts).await.unwrap();
            let suffix = storage.get_suffix("k", 8, &opts).await.unwrap();
            let billed =
                meter.borrow().storage[&skyrise_pricing::StorageService::DynamoDb].bytes_read;
            (ranged, suffix, billed)
        });
        sim.run();
        let (ranged, suffix, billed) = h.try_take().unwrap();
        // The slice is 4 bytes, but the fallback moved (and billed) all 256.
        assert_eq!(ranged.blob.len(), 4);
        assert_eq!(ranged.transferred, 256);
        assert_eq!(suffix.blob.len(), 8);
        assert_eq!(suffix.object_len, 256);
        assert_eq!(suffix.transferred, 256);
        assert_eq!(billed, 512, "both requests billed the full payload");
    }

    #[test]
    fn s3_suffix_reports_sliced_transfer() {
        let mut sim = Sim::new(13);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let storage = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let opts = RequestOpts::default();
            let data: Vec<u8> = (0..=255u8).collect();
            storage.put("k", Blob::new(data), &opts).await.unwrap();
            let suffix = storage.get_suffix("k", 8, &opts).await.unwrap();
            let whole = storage.get_suffix("k", 9999, &opts).await.unwrap();
            let ranged = storage.get_range_metered("k", 16, 4, &opts).await.unwrap();
            (suffix, whole, ranged)
        });
        sim.run();
        let (suffix, whole, ranged) = h.try_take().unwrap();
        assert_eq!(&suffix.blob.bytes[..], &(248..=255u8).collect::<Vec<_>>());
        assert_eq!(suffix.object_len, 256);
        assert_eq!(suffix.transferred, 8);
        // Over-long suffix requests clamp to the whole object.
        assert_eq!(whole.blob.len(), 256);
        assert_eq!(whole.transferred, 256);
        assert_eq!(ranged.blob.len(), 4);
        assert_eq!(ranged.transferred, 4);
    }

    #[test]
    fn client_suffix_and_metered_range_retry_like_get() {
        let mut sim = Sim::new(14);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let cfg = DynamoConfig {
                read_iops: 2.0,
                burst_seconds: 0.5,
                ..DynamoConfig::default()
            };
            let table = DynamoTable::new(ctx.clone(), meter, cfg, None);
            table.backdoor().put("k", Blob::new(vec![0u8; 64]));
            let client = RetryingClient::new(
                Storage::Dynamo(Rc::clone(&table)),
                ctx.clone(),
                RetryPolicy::default(),
            );
            let opts = RequestOpts::default();
            // Drain the tiny burst so the first attempts throttle.
            let _ = table.get("k", &opts).await;
            let _ = table.get("k", &opts).await;
            let (suffix, s1) = client.get_suffix("k", 8, 64, &opts).await.unwrap();
            let (ranged, _) = client
                .get_range_metered("k", 0, 32, 64, &opts)
                .await
                .unwrap();
            (suffix, s1, ranged)
        });
        sim.run();
        let (suffix, stats, ranged) = h.try_take().unwrap();
        assert_eq!(suffix.blob.len(), 8);
        assert_eq!(suffix.transferred, 64);
        assert!(stats.attempts >= 2, "attempts {}", stats.attempts);
        assert_eq!(ranged.blob.len(), 32);
        assert_eq!(ranged.transferred, 64);
    }

    #[test]
    fn storage_enum_dispatches_names() {
        let mut sim = Sim::new(6);
        let ctx = sim.ctx();
        let meter = shared_meter();
        let h = sim.spawn(async move {
            let s3 = Storage::S3(S3Bucket::standard(&ctx, &meter));
            let xp = Storage::S3(S3Bucket::express(&ctx, &meter));
            let dy = Storage::Dynamo(DynamoTable::on_demand(&ctx, &meter));
            let ef = Storage::Efs(EfsFilesystem::elastic(&ctx, &meter));
            vec![s3.name(), xp.name(), dy.name(), ef.name()]
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap(),
            vec!["S3 Standard", "S3 Express", "DynamoDB", "EFS"]
        );
    }
}
