//! Machinery shared by every storage service: IOPS admission, latency
//! sampling, bandwidth-constrained payload movement, and usage metering.

use crate::error::{Result, StorageError};
use skyrise_net::{transfer, RateLimiter, SharedNic, TransferOpts};
use skyrise_pricing::{SharedMeter, StorageService};
use skyrise_sim::telemetry::{Counter, Gauge, HistogramHandle, MetricRegistry};
use skyrise_sim::{LatencyDist, SimCtx, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Admission control on operations per second: a token bucket over *ops*.
/// Capacity is a short burst allowance (the quota times `burst_seconds`).
#[derive(Debug, Clone)]
pub struct OpsLimiter {
    inner: Rc<RefCell<RateLimiter>>,
    burst_seconds: f64,
}

impl OpsLimiter {
    /// `rate` operations/second with `burst_seconds` worth of burst.
    pub fn new(rate: f64, burst_seconds: f64) -> Self {
        OpsLimiter {
            inner: Rc::new(RefCell::new(RateLimiter::continuous(
                // Burst "rate" for ops admission is effectively unbounded;
                // tokens are the constraint.
                rate.max(1.0) * 1e6,
                rate,
                rate * burst_seconds,
            ))),
            burst_seconds,
        }
    }

    /// Try to admit one operation at `now`.
    pub fn try_admit(&self, now: SimTime) -> bool {
        let mut l = self.inner.borrow_mut();
        l.advance(now);
        if l.available() >= 1.0 {
            l.consume(now, 1.0);
            true
        } else {
            false
        }
    }

    /// Replace the sustained rate, keeping the burst window.
    pub fn set_rate(&self, rate: f64) {
        *self.inner.borrow_mut() =
            RateLimiter::continuous(rate.max(1.0) * 1e6, rate, rate * self.burst_seconds);
    }

    /// The sustained admission rate (ops/s).
    pub fn rate(&self) -> f64 {
        self.inner.borrow().baseline_rate()
    }
}

/// Per-direction request parameters of a service.
#[derive(Debug, Clone)]
pub struct DirectionModel {
    /// First-byte latency distribution (seconds).
    pub latency: LatencyDist,
    /// Per-request bandwidth once streaming (bytes/s).
    pub per_request_bw: f64,
}

/// What a request needs from its caller.
#[derive(Clone, Default)]
pub struct RequestOpts {
    /// The client's NIC; payload movement consumes its tokens. `None`
    /// models an unconstrained client.
    pub client_nic: Option<SharedNic>,
}

impl RequestOpts {
    /// Request issued from the given client NIC.
    pub fn from_nic(nic: &SharedNic) -> Self {
        RequestOpts {
            client_nic: Some(Rc::clone(nic)),
        }
    }
}

/// Time a throttle rejection takes to come back to the client.
pub const REJECT_LATENCY: SimDuration = SimDuration::from_millis(4);

/// Cached per-backend telemetry handles (DESIGN.md §10), keyed by a slug
/// of the service name (`storage.s3_standard.op_secs`, ...). Resolved once
/// at core construction; all no-ops without a registry.
struct CoreMetrics {
    ops_ok: Counter,
    ops_failed: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    op_secs: HistogramHandle,
    inflight: Gauge,
    conn_rejects: Counter,
}

impl CoreMetrics {
    fn new(reg: &MetricRegistry, service: StorageService) -> Self {
        let slug = service_slug(service);
        CoreMetrics {
            ops_ok: reg.counter(&format!("storage.{slug}.ops_ok")),
            ops_failed: reg.counter(&format!("storage.{slug}.ops_failed")),
            bytes_read: reg.counter(&format!("storage.{slug}.bytes_read")),
            bytes_written: reg.counter(&format!("storage.{slug}.bytes_written")),
            op_secs: reg.histogram(&format!("storage.{slug}.op_secs")),
            inflight: reg.gauge(&format!("storage.{slug}.inflight")),
            conn_rejects: reg.counter(&format!("storage.{slug}.conn_rejects")),
        }
    }
}

/// Metric-name slug for a storage service: its display name lowercased
/// with runs of non-alphanumerics collapsed to `_` ("S3 Standard" ->
/// "s3_standard").
pub fn service_slug(service: StorageService) -> String {
    let mut slug = String::new();
    for c in service.name().chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') {
            slug.push('_');
        }
    }
    slug.trim_matches('_').to_string()
}

/// Shared internals of a storage service.
pub struct ServiceCore {
    /// Simulation context.
    pub ctx: SimCtx,
    /// Usage ledger for billing.
    pub meter: SharedMeter,
    /// Which service this core backs (pricing key).
    pub service: StorageService,
    /// Read-direction latency/bandwidth model.
    pub read: DirectionModel,
    /// Write-direction latency/bandwidth model.
    pub write: DirectionModel,
    /// The service's aggregate-bandwidth endpoint: `outbound` caps reads
    /// (service -> client), `inbound` caps writes (client -> service).
    pub service_nic: SharedNic,
    /// Concurrent in-flight request ceiling (None = unbounded).
    pub max_inflight: Option<u32>,
    inflight: Cell<u32>,
    metrics: CoreMetrics,
}

impl ServiceCore {
    /// Construct with aggregate bandwidth caps in bytes/second.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: SimCtx,
        meter: SharedMeter,
        service: StorageService,
        read: DirectionModel,
        write: DirectionModel,
        aggregate_read_bw: f64,
        aggregate_write_bw: f64,
        max_inflight: Option<u32>,
    ) -> Self {
        let service_nic = skyrise_net::Nic::new(
            RateLimiter::pure_rate(aggregate_write_bw, skyrise_net::DEFAULT_SLICE),
            RateLimiter::pure_rate(aggregate_read_bw, skyrise_net::DEFAULT_SLICE),
        );
        let metrics = CoreMetrics::new(&ctx.metrics(), service);
        ServiceCore {
            ctx,
            meter,
            service,
            read,
            write,
            service_nic,
            max_inflight,
            inflight: Cell::new(0),
            metrics,
        }
    }

    /// Record a request in the meter (failures cost too).
    pub fn meter_request(&self, write: bool, logical_bytes: u64, failed: bool) {
        if failed {
            self.metrics.ops_failed.inc();
        } else {
            self.metrics.ops_ok.inc();
            if write {
                self.metrics.bytes_written.add(logical_bytes);
            } else {
                self.metrics.bytes_read.add(logical_bytes);
            }
        }
        self.meter
            .borrow_mut()
            .record_storage_request(self.service, write, logical_bytes, failed);
    }

    /// Record a completed operation's end-to-end latency (admission to
    /// last byte) into the backend's `storage.<slug>.op_secs` histogram.
    pub fn record_op(&self, start: SimTime) {
        self.metrics
            .op_secs
            .record_duration(self.ctx.now().duration_since(start));
    }

    /// Admit against the in-flight ceiling; the guard releases on drop.
    pub fn admit_connection(&self) -> Result<InflightGuard<'_>> {
        if let Some(max) = self.max_inflight {
            if self.inflight.get() >= max {
                self.metrics.conn_rejects.inc();
                return Err(StorageError::ConnectionRejected);
            }
        }
        self.inflight.set(self.inflight.get() + 1);
        self.metrics.inflight.set(self.inflight.get() as f64);
        Ok(InflightGuard { core: self })
    }

    /// Sample first-byte latency for a direction and sleep it. Returns the
    /// sampled duration so callers can attach it to trace spans.
    pub async fn first_byte(&self, write: bool) -> SimDuration {
        let dist = if write {
            &self.write.latency
        } else {
            &self.read.latency
        };
        let secs = self.ctx.with_rng(|r| r.sample(dist));
        let d = SimDuration::from_secs_f64(secs);
        self.ctx.sleep(d).await;
        d
    }

    /// Stream `logical_bytes` to/from the client after the first byte,
    /// bounded by per-request bandwidth, the service aggregate, and the
    /// client NIC.
    // simlint: allow(CONS002): metered by every caller via `meter_request` before streaming; this helper only models wire time.
    pub async fn stream(&self, write: bool, logical_bytes: u64, opts: &RequestOpts) {
        if logical_bytes == 0 {
            return;
        }
        let model = if write { &self.write } else { &self.read };
        let topts = TransferOpts {
            flows: 1,
            flow_cap: Some(model.per_request_bw),
            label: Some(self.service.name()),
            ..Default::default()
        };
        let unconstrained = skyrise_net::Nic::unlimited();
        let client = opts.client_nic.as_ref().unwrap_or(&unconstrained);
        if write {
            transfer(&self.ctx, client, &self.service_nic, logical_bytes, &topts).await;
        } else {
            transfer(&self.ctx, &self.service_nic, client, logical_bytes, &topts).await;
        }
    }
}

/// RAII in-flight counter.
pub struct InflightGuard<'a> {
    core: &'a ServiceCore,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.core.inflight.set(self.core.inflight.get() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_sim::Sim;

    #[test]
    fn ops_limiter_admits_at_rate() {
        let l = OpsLimiter::new(100.0, 1.0);
        let mut admitted = 0;
        // Burst: ~100 ops at t=0.
        for _ in 0..500 {
            if l.try_admit(SimTime::ZERO) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 100);
        // After one second, another ~100.
        let t1 = SimTime::from_nanos(1_000_000_000);
        let mut more = 0;
        for _ in 0..500 {
            if l.try_admit(t1) {
                more += 1;
            }
        }
        assert_eq!(more, 100);
    }

    #[test]
    fn ops_limiter_set_rate() {
        let l = OpsLimiter::new(100.0, 1.0);
        l.set_rate(10.0);
        assert!((l.rate() - 10.0).abs() < 1e-9);
        let mut admitted = 0;
        for _ in 0..100 {
            if l.try_admit(SimTime::from_nanos(1)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn service_slug_normalizes_names() {
        assert_eq!(service_slug(StorageService::S3Standard), "s3_standard");
        assert_eq!(service_slug(StorageService::S3Express), "s3_express");
        assert_eq!(service_slug(StorageService::Efs), "efs");
    }

    #[test]
    fn inflight_guard_releases() {
        let sim = Sim::new(1);
        let ctx = sim.ctx();
        let meter = skyrise_pricing::shared_meter();
        let core = ServiceCore::new(
            ctx,
            meter,
            StorageService::Efs,
            DirectionModel {
                latency: LatencyDist::constant(0.001),
                per_request_bw: 1e9,
            },
            DirectionModel {
                latency: LatencyDist::constant(0.001),
                per_request_bw: 1e9,
            },
            1e12,
            1e12,
            Some(2),
        );
        let g1 = core.admit_connection().unwrap();
        let _g2 = core.admit_connection().unwrap();
        assert!(matches!(
            core.admit_connection().err(),
            Some(StorageError::ConnectionRejected)
        ));
        drop(g1);
        assert!(core.admit_connection().is_ok());
    }
}
