//! Storage error types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors a simulated storage service can return.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageError {
    /// Request rejected by rate limiting (S3's `503 SlowDown`,
    /// DynamoDB's `ProvisionedThroughputExceededException`).
    Throttled,
    /// The client-side timeout elapsed before the service responded.
    Timeout,
    /// No object under the requested key.
    NotFound {
        /// The missing key.
        key: String,
    },
    /// Payload exceeds the service's object/item size limit.
    TooLarge {
        /// The service's limit (bytes).
        limit: u64,
        /// The offered payload size (bytes).
        got: u64,
    },
    /// Requested byte range falls outside the object.
    InvalidRange {
        /// Object length (bytes).
        len: u64,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        requested: u64,
    },
    /// Service refused the connection (concurrent-client limit).
    ConnectionRejected,
    /// Retries exhausted; carries the final error's description.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Throttled => write!(f, "throttled (SlowDown)"),
            StorageError::Timeout => write!(f, "request timed out"),
            StorageError::NotFound { key } => write!(f, "no such key: {key}"),
            StorageError::TooLarge { limit, got } => {
                write!(f, "payload of {got} B exceeds the {limit} B limit")
            }
            StorageError::InvalidRange {
                len,
                offset,
                requested,
            } => write!(f, "range {offset}+{requested} outside object of {len} B"),
            StorageError::ConnectionRejected => write!(f, "connection rejected"),
            StorageError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TooLarge {
            limit: 400 * 1024,
            got: 500 * 1024,
        };
        assert!(e.to_string().contains("409600"));
        assert!(StorageError::Throttled.to_string().contains("SlowDown"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::Throttled, StorageError::Throttled);
        assert_ne!(
            StorageError::Throttled,
            StorageError::NotFound { key: "k".into() }
        );
    }
}
