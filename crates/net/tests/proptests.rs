//! Property-based invariants of the token-bucket network model.

use proptest::prelude::*;
use skyrise_net::{IdleRefill, RateLimiter};
use skyrise_sim::{SimDuration, SimTime};

const SLICE: SimDuration = SimDuration::from_millis(10);

proptest! {
    /// Conservation: a continuous bucket can never grant more than its
    /// initial capacity plus baseline-rate x elapsed time.
    #[test]
    fn continuous_bucket_conserves_tokens(
        burst_mibs in 10.0f64..2000.0,
        base_mibs in 1.0f64..500.0,
        cap_mib in 1.0f64..1000.0,
        demands in prop::collection::vec(0.0f64..50e6, 1..200),
    ) {
        let mib = 1024.0 * 1024.0;
        let mut b = RateLimiter::continuous(burst_mibs * mib, base_mibs * mib, cap_mib * mib);
        let mut t = SimTime::ZERO;
        let mut granted = 0.0;
        for d in &demands {
            granted += b.grant(t, SLICE, *d);
            t += SLICE;
        }
        let elapsed = (demands.len() as f64 - 1.0).max(0.0) * SLICE.as_secs_f64();
        let budget = cap_mib * mib + base_mibs * mib * elapsed + 1.0;
        prop_assert!(granted <= budget, "granted {granted} > budget {budget}");
    }

    /// The burst-rate ceiling holds per slice, whatever the token level.
    #[test]
    fn grant_never_exceeds_burst_rate_per_slice(
        burst_mibs in 1.0f64..1000.0,
        steps in 1usize..100,
    ) {
        let mib = 1024.0 * 1024.0;
        let mut b = RateLimiter::continuous(burst_mibs * mib, burst_mibs * mib, 100.0 * 1e9);
        let per_slice = burst_mibs * mib * SLICE.as_secs_f64();
        let mut t = SimTime::ZERO;
        for _ in 0..steps {
            let g = b.grant(t, SLICE, f64::MAX);
            prop_assert!(g <= per_slice + 1.0, "{g} > {per_slice}");
            t += SLICE;
        }
    }

    /// Lambda-style buckets: total spend never exceeds one-off + initial
    /// rechargeable + slot refills + idle refills (bounded by elapsed
    /// idle periods x capacity).
    #[test]
    fn lambda_bucket_oneoff_never_refills(
        idle_gaps in prop::collection::vec(1u64..10, 1..6),
    ) {
        let mib = 1024.0 * 1024.0;
        let mut b = RateLimiter::lambda_style(
            1200.0 * mib,
            150.0 * mib,
            150.0 * mib,
            SimDuration::from_millis(100),
            7.5 * mib,
            IdleRefill {
                threshold: SimDuration::from_millis(500),
                fraction: 1.0,
            },
        );
        let mut t = SimTime::ZERO;
        // Drain fully.
        for _ in 0..200 {
            b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        prop_assert!(b.oneoff() < 1.0, "one-off spent after drain");
        // Any sequence of idle gaps only ever restores the rechargeable half.
        for gap_s in idle_gaps {
            t += SimDuration::from_secs(gap_s);
            b.advance(t);
            prop_assert!(b.oneoff() < 1.0, "one-off must never refill");
            prop_assert!(
                b.available() <= 150.0 * mib + 1.0,
                "idle refill capped at the rechargeable half: {}",
                b.available() / mib
            );
            // Drain again.
            for _ in 0..30 {
                b.grant(t, SLICE, f64::MAX);
                t += SLICE;
            }
        }
    }

    /// The exact conservation ledger balances under arbitrary workloads:
    /// `tokens + oneoff + consumed == initial + refilled` (relative error),
    /// for both bucket families. This is the invariant the runtime
    /// sanitizer asserts during every transfer (`RateLimiter::assert_conserved`).
    #[test]
    fn ledger_conservation_holds(
        lambda_style in any::<bool>(),
        demands in prop::collection::vec(0.0f64..50e6, 1..300),
        gaps_ms in prop::collection::vec(0u64..5_000, 1..300),
    ) {
        let mib = 1024.0 * 1024.0;
        let mut b = if lambda_style {
            RateLimiter::lambda_style(
                1200.0 * mib,
                150.0 * mib,
                150.0 * mib,
                SimDuration::from_millis(100),
                7.5 * mib,
                IdleRefill {
                    threshold: SimDuration::from_millis(500),
                    fraction: 1.0,
                },
            )
        } else {
            RateLimiter::continuous(1e9, 1e8, 5e8)
        };
        let mut t = SimTime::ZERO;
        for (d, gap) in demands.iter().zip(gaps_ms.iter().cycle()) {
            b.grant(t, SLICE, *d);
            prop_assert!(
                b.conservation_error() < 1e-9,
                "ledger out of balance: rel err {}",
                b.conservation_error()
            );
            t += SimDuration::from_millis(*gap);
        }
        // The ledger's components individually make sense.
        prop_assert!(b.initial() > 0.0);
        prop_assert!(b.refilled() >= 0.0);
        prop_assert!(b.consumed() >= 0.0);
    }

    /// Granting is monotone in demand: asking for less never yields more.
    #[test]
    fn grant_is_monotone_in_demand(want_a in 0.0f64..1e9, want_b in 0.0f64..1e9) {
        let (lo, hi) = if want_a <= want_b { (want_a, want_b) } else { (want_b, want_a) };
        let mk = || RateLimiter::continuous(1e9, 1e8, 5e8);
        let g_lo = mk().grant(SimTime::ZERO, SLICE, lo);
        let g_hi = mk().grant(SimTime::ZERO, SLICE, hi);
        prop_assert!(g_lo <= g_hi + 1e-9);
        prop_assert!(g_lo <= lo + 1e-9);
    }
}
