//! NIC presets matching the parameters the paper derives for AWS.

use crate::bucket::{IdleRefill, RateLimiter};
use crate::fabric::{Nic, SharedNic};
use skyrise_sim::{SimDuration, GIB, MIB};

/// Lambda inbound burst bandwidth (paper Sec. 4.2.1: ~1.2 GiB/s).
pub const LAMBDA_BURST_IN: f64 = 1.2 * GIB as f64;
/// Lambda outbound burst bandwidth ("reduced and shows higher variation").
pub const LAMBDA_BURST_OUT: f64 = 1.0 * GIB as f64;
/// Rechargeable half of the Lambda token budget (~150 MiB).
pub const LAMBDA_RECHARGEABLE: f64 = 150.0 * MIB as f64;
/// One-off, non-rechargeable half of the Lambda token budget (~150 MiB).
pub const LAMBDA_ONEOFF: f64 = 150.0 * MIB as f64;
/// Lambda baseline refill: 7.5 MiB per 100 ms interval = 75 MiB/s.
pub const LAMBDA_SLOT_BYTES: f64 = 7.5 * MIB as f64;
/// Lambda baseline refill slot length.
pub const LAMBDA_SLOT: SimDuration = SimDuration::from_millis(100);
/// Idle gap after which the rechargeable pool refills.
pub const LAMBDA_IDLE_THRESHOLD: SimDuration = SimDuration::from_millis(500);
/// Aggregate throughput ceiling observed inside a customer VPC (~20 GiB/s).
pub const VPC_AGGREGATE_CAP: f64 = 20.0 * GIB as f64;
/// EC2 single-flow (single TCP connection) limit: 5 Gbps.
pub const EC2_SINGLE_FLOW_CAP: f64 = 5.0 / 8.0 * 1e9;

/// The egress/ingress limiter of a Lambda function sandbox. `scale`
/// perturbs the burst bandwidth (sampled per sandbox by the platform to
/// model the "high variation for burst throughputs" with "very stable
/// burst capacities").
pub fn lambda_limiter(burst_rate: f64) -> RateLimiter {
    RateLimiter::lambda_style(
        burst_rate,
        LAMBDA_RECHARGEABLE,
        LAMBDA_ONEOFF,
        LAMBDA_SLOT,
        LAMBDA_SLOT_BYTES,
        IdleRefill {
            threshold: LAMBDA_IDLE_THRESHOLD,
            fraction: 1.0,
        },
    )
}

/// A Lambda sandbox NIC with nominal (unperturbed) parameters.
pub fn lambda_nic() -> SharedNic {
    lambda_nic_scaled(1.0, 1.0)
}

/// A Lambda sandbox NIC with per-direction burst-rate scaling factors.
pub fn lambda_nic_scaled(in_scale: f64, out_scale: f64) -> SharedNic {
    Nic::new(
        lambda_limiter(LAMBDA_BURST_IN * in_scale),
        lambda_limiter(LAMBDA_BURST_OUT * out_scale),
    )
}

/// An EC2-style NIC from burst bandwidth, baseline bandwidth, and bucket
/// capacity (each direction identical; EC2 buckets are symmetric).
pub fn ec2_nic(burst: f64, baseline: f64, bucket: f64) -> SharedNic {
    Nic::symmetric(RateLimiter::continuous(burst, baseline, bucket))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_nic_has_independent_directions() {
        let nic = lambda_nic();
        let n = nic.borrow();
        assert!(n.inbound.burst_rate() > n.outbound.burst_rate());
        assert_eq!(n.inbound.available(), 300.0 * MIB as f64);
    }

    #[test]
    fn lambda_baseline_is_75_mibps() {
        let nic = lambda_nic();
        let n = nic.borrow();
        assert!((n.inbound.baseline_rate() - 75.0 * MIB as f64).abs() < 1.0);
    }

    #[test]
    fn single_flow_cap_is_5_gbps() {
        assert_eq!(EC2_SINGLE_FLOW_CAP, 625e6);
    }
}
