//! Token-bucket rate limiters.
//!
//! The paper reverse-engineers two bucket flavours (Sec. 4.2):
//!
//! * **EC2-style** — a classic continuous-refill bucket: tokens accrue at
//!   the baseline bandwidth up to a capacity that grows with instance
//!   size; while tokens remain, traffic may burst to the burst bandwidth.
//! * **Lambda-style** — an initial ~300 MiB budget split into a one-off,
//!   non-rechargeable half and a rechargeable half; once empty, 7.5 MiB of
//!   tokens arrive in discrete 100 ms slots (75 MiB/s baseline), and the
//!   rechargeable half refills as soon as the function stops using the
//!   network ("refills halfway to the initial capacity").
//!
//! Both are expressed by [`RateLimiter`] with a [`RefillPolicy`].

use serde::{Deserialize, Serialize};
use skyrise_sim::{SimDuration, SimTime};

/// How tokens return to the bucket.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum RefillPolicy {
    /// Tokens accrue continuously at `rate` bytes/second (EC2 style).
    Continuous {
        /// Refill rate (bytes/s).
        rate: f64,
    },
    /// Tokens arrive in discrete `bytes_per_slot` jumps every `slot`
    /// (Lambda style: 7.5 MiB per 100 ms).
    Slotted {
        /// Slot length.
        slot: SimDuration,
        /// Tokens added per slot (bytes).
        bytes_per_slot: f64,
    },
}

/// Refill-on-idle behaviour (Lambda style).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IdleRefill {
    /// Minimum gap without traffic before the refill triggers.
    pub threshold: SimDuration,
    /// The rechargeable token level is restored to `fraction * capacity`.
    pub fraction: f64,
}

/// A directional token bucket limiting one endpoint's ingress or egress.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateLimiter {
    /// Maximum instantaneous rate while tokens are available (bytes/s).
    burst_rate: f64,
    /// Capacity of the rechargeable token pool (bytes).
    capacity: f64,
    /// Current rechargeable tokens (bytes).
    tokens: f64,
    /// Remaining one-off, never-refilled budget (bytes).
    oneoff: f64,
    refill: RefillPolicy,
    idle_refill: Option<IdleRefill>,
    last_advance: SimTime,
    last_use: SimTime,
    /// Total bytes ever consumed (for accounting/tests).
    consumed: f64,
    /// Budget at construction: initial tokens + one-off (bytes).
    initial: f64,
    /// Total tokens actually added by refills, post-capping (bytes).
    refilled: f64,
}

impl RateLimiter {
    /// A continuous-refill bucket (EC2 style): starts full.
    pub fn continuous(burst_rate: f64, baseline_rate: f64, capacity: f64) -> Self {
        assert!(burst_rate > 0.0 && baseline_rate >= 0.0 && capacity >= 0.0);
        RateLimiter {
            burst_rate,
            capacity,
            tokens: capacity,
            oneoff: 0.0,
            refill: RefillPolicy::Continuous {
                rate: baseline_rate,
            },
            idle_refill: None,
            last_advance: SimTime::ZERO,
            last_use: SimTime::ZERO,
            consumed: 0.0,
            initial: capacity,
            refilled: 0.0,
        }
    }

    /// A Lambda-style bucket: `rechargeable` tokens plus a `oneoff` budget,
    /// slotted baseline refill, and refill-on-idle of the rechargeable pool.
    pub fn lambda_style(
        burst_rate: f64,
        rechargeable: f64,
        oneoff: f64,
        slot: SimDuration,
        bytes_per_slot: f64,
        idle: IdleRefill,
    ) -> Self {
        RateLimiter {
            burst_rate,
            capacity: rechargeable,
            tokens: rechargeable,
            oneoff,
            refill: RefillPolicy::Slotted {
                slot,
                bytes_per_slot,
            },
            idle_refill: Some(idle),
            last_advance: SimTime::ZERO,
            last_use: SimTime::ZERO,
            consumed: 0.0,
            initial: rechargeable + oneoff,
            refilled: 0.0,
        }
    }

    /// An unlimited limiter (rate cap only, effectively infinite tokens).
    pub fn unlimited(rate: f64) -> Self {
        RateLimiter::continuous(rate, rate, f64::MAX / 4.0)
    }

    /// A pure rate limit with no burst accumulation beyond one `slice`.
    pub fn pure_rate(rate: f64, slice: SimDuration) -> Self {
        RateLimiter::continuous(rate, rate, rate * slice.as_secs_f64())
    }

    /// Bring token state up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let before = self.tokens;
        match self.refill {
            RefillPolicy::Continuous { rate } => {
                let dt = (now - self.last_advance).as_secs_f64();
                self.tokens = (self.tokens + rate * dt).min(self.capacity);
            }
            RefillPolicy::Slotted {
                slot,
                bytes_per_slot,
            } => {
                let slot_ns = slot.as_nanos();
                let prev_slots = self.last_advance.as_nanos() / slot_ns;
                let now_slots = now.as_nanos() / slot_ns;
                let crossed = now_slots.saturating_sub(prev_slots);
                if crossed > 0 {
                    self.tokens =
                        (self.tokens + crossed as f64 * bytes_per_slot).min(self.capacity);
                }
            }
        }
        if let Some(idle) = self.idle_refill {
            if now.duration_since(self.last_use) >= idle.threshold {
                self.tokens = self.tokens.max(idle.fraction * self.capacity);
            }
        }
        // Conservation ledger: record what the refill actually added after
        // capping, so granted + remaining always equals initial + refilled.
        self.refilled += self.tokens - before;
        self.last_advance = now;
        debug_assert!(
            self.conservation_error() < 1e-6,
            "token bucket leaked on advance: rel err {}",
            self.conservation_error()
        );
    }

    /// Maximum bytes grantable over the next `slice` starting at `now`.
    /// Call [`RateLimiter::advance`] first (or use [`RateLimiter::grant`]).
    pub fn peek(&self, slice: SimDuration) -> f64 {
        let by_rate = self.burst_rate * slice.as_secs_f64();
        by_rate.min(self.tokens + self.oneoff).max(0.0)
    }

    /// Consume `bytes` of tokens (rechargeable pool first, then one-off).
    /// Callers must not consume more than [`RateLimiter::peek`] allowed.
    pub fn consume(&mut self, now: SimTime, bytes: f64) {
        debug_assert!(bytes >= 0.0);
        if bytes <= 0.0 {
            return;
        }
        let from_tokens = bytes.min(self.tokens);
        self.tokens -= from_tokens;
        let rest = bytes - from_tokens;
        self.oneoff = (self.oneoff - rest).max(0.0);
        self.consumed += bytes;
        self.last_use = now;
        debug_assert!(
            self.conservation_error() < 1e-6,
            "token bucket leaked on consume: rel err {} (overdraw past peek?)",
            self.conservation_error()
        );
    }

    /// Advance, then atomically grant up to `want` bytes for the coming
    /// `slice`; returns the granted amount.
    pub fn grant(&mut self, now: SimTime, slice: SimDuration, want: f64) -> f64 {
        self.advance(now);
        let g = self.peek(slice).min(want);
        if g > 0.0 {
            self.consume(now, g);
        }
        g
    }

    /// Current rechargeable tokens.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Remaining one-off budget.
    pub fn oneoff(&self) -> f64 {
        self.oneoff
    }

    /// Total combined budget currently spendable at burst rate.
    pub fn available(&self) -> f64 {
        self.tokens + self.oneoff
    }

    /// Lifetime bytes consumed.
    pub fn consumed(&self) -> f64 {
        self.consumed
    }

    /// The burst-rate ceiling (bytes/s).
    pub fn burst_rate(&self) -> f64 {
        self.burst_rate
    }

    /// Baseline sustained rate (bytes/s).
    pub fn baseline_rate(&self) -> f64 {
        match self.refill {
            RefillPolicy::Continuous { rate } => rate,
            RefillPolicy::Slotted {
                slot,
                bytes_per_slot,
            } => bytes_per_slot / slot.as_secs_f64(),
        }
    }

    /// Rechargeable capacity (bytes).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Budget at construction (initial tokens + one-off, bytes).
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// Total tokens added by refills so far, after capping (bytes).
    pub fn refilled(&self) -> f64 {
        self.refilled
    }

    /// Fraction of one full-burst slice currently *unavailable*, in
    /// `[0, 1]`: 0 when a whole `slice` at burst rate could be granted
    /// right now, 1 when the bucket is empty. This is the telemetry
    /// layer's bucket-saturation ratio; call [`RateLimiter::advance`]
    /// first so the reading reflects `now`.
    pub fn saturation(&self, slice: SimDuration) -> f64 {
        let budget = self.burst_rate * slice.as_secs_f64();
        if budget <= 0.0 {
            return 0.0;
        }
        (1.0 - self.peek(slice) / budget).clamp(0.0, 1.0)
    }

    /// Relative error of the token-conservation law
    ///
    /// ```text
    /// tokens + oneoff + consumed == initial + refilled
    /// ```
    ///
    /// Every byte now spendable or already spent must have entered the
    /// bucket at construction or through a refill. The error is relative to
    /// the larger side (floored at 1.0 byte) so it stays meaningful for
    /// both small buckets and the quasi-infinite `unlimited()` bucket.
    pub fn conservation_error(&self) -> f64 {
        let lhs = self.tokens + self.oneoff + self.consumed;
        let rhs = self.initial + self.refilled;
        (lhs - rhs).abs() / lhs.abs().max(rhs.abs()).max(1.0)
    }

    /// Assert conservation against the simulation sanitizer (no-op when the
    /// sanitizer is disabled). `what` names the bucket in the panic message.
    pub fn assert_conserved(&self, san: &skyrise_sim::Sanitizer, what: &str) {
        san.check(self.conservation_error() < 1e-6, || {
            format!(
                "token bucket `{what}` violates conservation: \
                 tokens {} + oneoff {} + consumed {} != initial {} + refilled {}",
                self.tokens, self.oneoff, self.consumed, self.initial, self.refilled
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyrise_sim::MIB;

    const SLICE: SimDuration = SimDuration::from_millis(10);

    fn mib(x: f64) -> f64 {
        x * MIB as f64
    }

    fn lambda_bucket() -> RateLimiter {
        RateLimiter::lambda_style(
            mib(1228.8), // 1.2 GiB/s
            mib(150.0),
            mib(150.0),
            SimDuration::from_millis(100),
            mib(7.5),
            IdleRefill {
                threshold: SimDuration::from_millis(500),
                fraction: 1.0,
            },
        )
    }

    #[test]
    fn continuous_bucket_bursts_then_sustains_baseline() {
        let burst = mib(1000.0);
        let base = mib(100.0);
        let cap = mib(500.0);
        let mut b = RateLimiter::continuous(burst, base, cap);
        let mut t = SimTime::ZERO;
        let mut sent = 0.0;
        // Burst phase: cap / (burst - base) seconds of full-rate traffic.
        for _ in 0..200 {
            sent += b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        // ~2 seconds elapsed: 500 MiB bucket + ~199 MiB baseline refill
        // (refill accrues up to the start of the final slice).
        let expect = mib(500.0 + 199.0);
        assert!(
            (sent - expect).abs() < mib(1.5),
            "sent {} MiB",
            sent / MIB as f64
        );
        // Steady state: each slice grants ~baseline.
        let g = b.grant(t, SLICE, f64::MAX);
        assert!((g - base * SLICE.as_secs_f64()).abs() < 1.0, "g {g}");
    }

    #[test]
    fn continuous_bucket_refills_to_capacity_when_idle() {
        let mut b = RateLimiter::continuous(mib(1000.0), mib(100.0), mib(200.0));
        let t0 = SimTime::ZERO;
        b.grant(t0, SimDuration::from_secs(1), f64::MAX); // drain
        assert!(b.tokens() < mib(1.0));
        b.advance(t0 + SimDuration::from_secs(10));
        assert!((b.tokens() - mib(200.0)).abs() < 1.0, "capped refill");
    }

    #[test]
    fn lambda_bucket_initial_burst_is_300_mib() {
        let mut b = lambda_bucket();
        let mut t = SimTime::ZERO;
        let mut sent = 0.0;
        // Drain for 260 ms (the paper observes ~250 ms of 1.2 GiB/s).
        for _ in 0..26 {
            sent += b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        // 300 MiB budget + 2 crossed slot refills (t=100ms, 200ms).
        let expect = mib(300.0 + 15.0);
        assert!(
            (sent - expect).abs() < mib(2.0),
            "burst {} MiB",
            sent / MIB as f64
        );
    }

    #[test]
    fn lambda_bucket_baseline_is_spiky_75_mibps() {
        let mut b = lambda_bucket();
        let mut t = SimTime::ZERO;
        // Exhaust the initial budget.
        for _ in 0..100 {
            b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        // Now measure one second: should total ~75 MiB, arriving in spikes.
        let mut per_slice = Vec::new();
        for _ in 0..100 {
            per_slice.push(b.grant(t, SLICE, f64::MAX));
            t += SLICE;
        }
        let total: f64 = per_slice.iter().sum();
        assert!(
            (total - mib(75.0)).abs() < mib(1.0),
            "total {}",
            total / MIB as f64
        );
        // Spiky: most slices grant zero, a few grant 7.5 MiB.
        let zeros = per_slice.iter().filter(|&&g| g < 1.0).count();
        assert!(zeros >= 85, "zeros {zeros}");
        let spikes = per_slice.iter().filter(|&&g| g > mib(7.0)).count();
        assert_eq!(spikes, 10, "one spike per 100ms slot");
    }

    #[test]
    fn lambda_idle_refill_restores_rechargeable_half_only() {
        let mut b = lambda_bucket();
        let mut t = SimTime::ZERO;
        // First burst: drain everything.
        for _ in 0..100 {
            b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        assert!(b.oneoff() < 1.0, "one-off spent");
        // 3-second break (the paper's experiment).
        t += SimDuration::from_secs(3);
        b.advance(t);
        let avail = b.available();
        // Rechargeable pool restored to 150 MiB; one-off stays empty.
        assert!(
            (avail - mib(150.0)).abs() < mib(1.0),
            "second burst {}",
            avail / MIB as f64
        );
        // Second burst total is roughly half the first.
        let mut sent = 0.0;
        for _ in 0..30 {
            sent += b.grant(t, SLICE, f64::MAX);
            t += SLICE;
        }
        assert!(
            sent < mib(300.0 + 25.0) / 1.8,
            "second burst shorter: {}",
            sent / MIB as f64
        );
    }

    #[test]
    fn oneoff_consumed_after_rechargeable() {
        let mut b = lambda_bucket();
        let t = SimTime::ZERO;
        b.advance(t);
        b.consume(t, mib(100.0));
        assert!((b.tokens() - mib(50.0)).abs() < 1.0);
        assert!((b.oneoff() - mib(150.0)).abs() < 1.0);
        b.consume(t, mib(100.0));
        assert!(b.tokens() < 1.0);
        assert!((b.oneoff() - mib(100.0)).abs() < 1.0);
    }

    #[test]
    fn peek_respects_burst_rate() {
        let mut b = lambda_bucket();
        b.advance(SimTime::ZERO);
        let allow = b.peek(SLICE);
        assert!((allow - mib(1228.8) * 0.01).abs() < 1.0);
    }

    #[test]
    fn grant_caps_at_want() {
        let mut b = lambda_bucket();
        let g = b.grant(SimTime::ZERO, SLICE, 1234.0);
        assert_eq!(g, 1234.0);
        assert_eq!(b.consumed(), 1234.0);
    }

    #[test]
    fn pure_rate_has_no_burst_memory() {
        let mut b = RateLimiter::pure_rate(mib(100.0), SLICE);
        let mut t = SimTime::from_nanos(0);
        // Idle for 10 seconds; a pure rate limiter must not accumulate.
        t += SimDuration::from_secs(10);
        let g = b.grant(t, SLICE, f64::MAX);
        assert!(g <= mib(100.0) * 0.0101, "g {}", g / MIB as f64);
    }

    #[test]
    fn baseline_rate_reported_for_both_policies() {
        let b = lambda_bucket();
        assert!((b.baseline_rate() - mib(75.0)).abs() < 1.0);
        let c = RateLimiter::continuous(mib(10.0), mib(2.0), mib(5.0));
        assert!((c.baseline_rate() - mib(2.0)).abs() < 1e-6);
    }

    #[test]
    fn conservation_holds_under_mixed_workload() {
        let mut b = lambda_bucket();
        let mut t = SimTime::from_nanos(0);
        // Burst, starve, idle-refill, burst again: the ledger must balance
        // the whole way through.
        for i in 0..5_000u64 {
            let want = if i % 7 == 0 { f64::MAX } else { mib(0.3) };
            b.grant(t, SLICE, want);
            t += if i % 100 == 99 {
                SimDuration::from_secs(3) // long enough to trip idle refill
            } else {
                SLICE
            };
            assert!(
                b.conservation_error() < 1e-9,
                "step {i}: rel err {}",
                b.conservation_error()
            );
        }
        assert!(b.consumed() > 0.0);
        assert!(b.refilled() > 0.0);
    }

    #[test]
    fn conservation_holds_for_continuous_and_pure_rate() {
        for mut b in [
            RateLimiter::continuous(mib(100.0), mib(10.0), mib(50.0)),
            RateLimiter::pure_rate(mib(100.0), SLICE),
        ] {
            let mut t = SimTime::from_nanos(0);
            for _ in 0..2_000 {
                b.grant(t, SLICE, mib(0.7));
                t += SLICE;
            }
            assert!(b.conservation_error() < 1e-9, "{}", b.conservation_error());
        }
    }

    #[test]
    fn conservation_holds_for_unlimited_bucket() {
        // The quasi-infinite bucket sits at f64 magnitudes where absolute
        // comparison is meaningless; the relative error must still be ~0.
        let mut b = RateLimiter::unlimited(mib(1000.0));
        let mut t = SimTime::from_nanos(0);
        for _ in 0..1_000 {
            b.grant(t, SLICE, mib(500.0));
            t += SLICE;
        }
        assert!(b.conservation_error() < 1e-9, "{}", b.conservation_error());
    }

    #[test]
    fn saturation_tracks_token_depletion() {
        let mut b = lambda_bucket();
        b.advance(SimTime::ZERO);
        // Full bucket: a whole burst slice is available.
        assert_eq!(b.saturation(SLICE), 0.0);
        // Drain everything: nothing grantable, fully saturated.
        b.consume(SimTime::ZERO, b.available());
        assert_eq!(b.saturation(SLICE), 1.0);
        // Partial budget: strictly between.
        let mut c = RateLimiter::continuous(mib(100.0), mib(10.0), mib(50.0));
        c.advance(SimTime::ZERO);
        c.consume(SimTime::ZERO, mib(50.0) - mib(100.0) * 0.01 / 2.0);
        let s = c.saturation(SLICE);
        assert!(s > 0.4 && s < 0.6, "saturation {s}");
    }

    #[test]
    fn ledger_accessors_match_construction() {
        let b = lambda_bucket();
        assert!((b.initial() - (b.capacity() + b.oneoff())).abs() < 1.0);
        assert_eq!(b.refilled(), 0.0);
    }
}
