//! # skyrise-net — token-bucket network model
//!
//! Implements the network behaviour the paper derives for AWS (Sec. 4.2):
//! per-endpoint dual token buckets with burst and baseline bandwidth,
//! Lambda's slotted refill and refill-on-idle, EC2's size-dependent
//! continuous buckets, the 5 Gbps single-flow limit, and the aggregate
//! throughput ceiling observed inside customer VPCs.
//!
//! The central entry points are [`Nic`] (an endpoint), [`transfer`] (a
//! timed, constraint-respecting data movement), and [`Fabric`] (a shared
//! medium cap).

#![warn(missing_docs)]

pub mod bucket;
pub mod fabric;
pub mod presets;

pub use bucket::{IdleRefill, RateLimiter, RefillPolicy};
pub use fabric::{transfer, Fabric, Nic, SharedNic, TransferOpts, TransferStats, DEFAULT_SLICE};
