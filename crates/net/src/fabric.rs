//! Network endpoints, shared fabric constraints, and timed transfers.
//!
//! A transfer moves bytes between two NICs in small virtual-time slices;
//! each slice grants the minimum of the sender's egress bucket, the
//! receiver's ingress bucket, an optional per-flow cap (EC2's well-known
//! 5 Gbps single-flow limit), and an optional shared fabric limit (the
//! ~20 GiB/s aggregate ceiling the paper observes inside a customer VPC).

use crate::bucket::RateLimiter;
use serde::{Deserialize, Serialize};
use skyrise_sim::telemetry::{Counter, TimelineHandle};
use skyrise_sim::{IntervalSeries, SimCtx, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Default scheduling slice for transfers.
pub const DEFAULT_SLICE: SimDuration = SimDuration::from_millis(10);

/// A network interface with independent ingress/egress buckets — the paper
/// concludes "the inbound and outbound token buckets are maintained
/// independently of each other".
#[derive(Debug)]
pub struct Nic {
    /// Ingress limiter.
    pub inbound: RateLimiter,
    /// Egress limiter.
    pub outbound: RateLimiter,
}

impl Nic {
    /// Build from two limiters.
    pub fn new(inbound: RateLimiter, outbound: RateLimiter) -> SharedNic {
        Rc::new(RefCell::new(Nic { inbound, outbound }))
    }

    /// Identical limiter in both directions.
    pub fn symmetric(limiter: RateLimiter) -> SharedNic {
        Rc::new(RefCell::new(Nic {
            inbound: limiter.clone(),
            outbound: limiter,
        }))
    }

    /// A NIC with effectively unlimited bandwidth (test servers).
    pub fn unlimited() -> SharedNic {
        Nic::symmetric(RateLimiter::unlimited(f64::MAX / 8.0))
    }
}

/// Shared handle to a NIC.
pub type SharedNic = Rc<RefCell<Nic>>;

/// A shared medium constraint applied across many transfers, e.g. the VPC
/// aggregate throughput quota.
#[derive(Clone)]
pub struct Fabric {
    limiter: Rc<RefCell<RateLimiter>>,
    name: &'static str,
}

impl Fabric {
    /// A fabric enforcing `rate` bytes/second aggregate with no burst
    /// accumulation.
    pub fn rate_capped(name: &'static str, rate: f64) -> Self {
        Fabric {
            limiter: Rc::new(RefCell::new(RateLimiter::pure_rate(rate, DEFAULT_SLICE))),
            name,
        }
    }

    /// Human-readable name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn grant(&self, now: SimTime, slice: SimDuration, want: f64) -> f64 {
        self.limiter.borrow_mut().grant(now, slice, want)
    }

    fn peek(&self, now: SimTime, slice: SimDuration) -> f64 {
        let mut l = self.limiter.borrow_mut();
        l.advance(now);
        l.peek(slice)
    }
}

/// Options controlling a [`transfer`].
#[derive(Clone, Default)]
pub struct TransferOpts {
    /// Number of parallel TCP connections ("paths" in the paper's setup).
    /// Zero is treated as one.
    pub flows: u32,
    /// Per-flow bandwidth cap in bytes/second (e.g. EC2's 5 Gbps single-flow
    /// limit). `None` disables the cap.
    pub flow_cap: Option<f64>,
    /// Shared fabric constraint (e.g. a VPC).
    pub fabric: Option<Fabric>,
    /// Scheduling slice; defaults to [`DEFAULT_SLICE`].
    pub slice: Option<SimDuration>,
    /// Receive-side throughput recorder.
    pub recorder: Option<Rc<RefCell<IntervalSeries>>>,
    /// Endpoint label attached to trace spans (e.g. the storage service).
    pub label: Option<&'static str>,
}

/// Outcome of a completed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Bytes moved.
    pub bytes: u64,
    /// Transfer start time.
    pub start: SimTime,
    /// Completion time of the last byte.
    pub end: SimTime,
}

impl TransferStats {
    /// Mean throughput in bytes/second over the whole transfer.
    pub fn mean_throughput(&self) -> f64 {
        let d = (self.end - self.start).as_secs_f64();
        if d <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes as f64 / d
        }
    }
}

/// Move `bytes` from `src` (egress) to `dst` (ingress), honouring every
/// constraint in `opts`. Completes when the last byte lands.
pub async fn transfer(
    ctx: &SimCtx,
    src: &SharedNic,
    dst: &SharedNic,
    bytes: u64,
    opts: &TransferOpts,
) -> TransferStats {
    let slice = opts.slice.unwrap_or(DEFAULT_SLICE);
    let start = ctx.now();
    let mut remaining = bytes as f64;
    let flow_allow_per_slice = opts
        .flow_cap
        .map(|cap| cap * opts.flows.max(1) as f64 * slice.as_secs_f64());

    let tracer = ctx.tracer();
    let lane = tracer.next_lane();
    let span = tracer.span(ctx, "net", lane, "transfer");
    span.attr("bytes", bytes);
    if let Some(label) = opts.label {
        span.attr("endpoint", label);
    }
    let mut stalled_slices: u64 = 0;
    let mut flowing = true;

    // Telemetry (DESIGN.md §10): handles resolved once per transfer; the
    // per-lane pair is keyed by the endpoint label so suite exports break
    // bytes out by storage service. All of it is a no-op without a registry.
    let metrics = ctx.metrics();
    let telem = metrics.enabled();
    let m_transfers = metrics.counter("net.transfer.count");
    let m_throttles = metrics.counter("net.fabric.throttle_onsets");
    let m_stalls = metrics.counter("net.transfer.stalled_slices");
    let m_secs = metrics.histogram("net.transfer.secs");
    let m_src_sat = metrics.gauge("net.bucket.src_saturation");
    let m_dst_sat = metrics.gauge("net.bucket.dst_saturation");
    let (m_lane_bytes, m_lane_tl) = if telem {
        let lane_name = opts.label.unwrap_or("unlabeled");
        (
            metrics.counter(&format!("net.lane.{lane_name}.bytes")),
            metrics.timeline(&format!("net.lane.{lane_name}"), SimDuration::from_secs(1)),
        )
    } else {
        (Counter::disabled(), TimelineHandle::disabled())
    };

    while remaining > 0.0 {
        let now = ctx.now();
        // Peek every constraint before consuming from any.
        let allow_src = {
            let mut n = src.borrow_mut();
            n.outbound.advance(now);
            if telem {
                m_src_sat.set(n.outbound.saturation(slice));
            }
            n.outbound.peek(slice)
        };
        let allow_dst = {
            let mut n = dst.borrow_mut();
            n.inbound.advance(now);
            if telem {
                m_dst_sat.set(n.inbound.saturation(slice));
            }
            n.inbound.peek(slice)
        };
        let mut allow = allow_src.min(allow_dst).min(remaining);
        if let Some(f) = flow_allow_per_slice {
            allow = allow.min(f);
        }
        if let Some(fabric) = &opts.fabric {
            allow = allow.min(fabric.peek(now, slice));
        }

        if allow > 0.5 {
            if !flowing {
                // Token buckets replenished enough to resume.
                tracer.instant(ctx, "net", lane, "bucket-refill");
                flowing = true;
            }
            // Commit the grant everywhere.
            src.borrow_mut().outbound.consume(now, allow);
            dst.borrow_mut().inbound.consume(now, allow);
            let san = ctx.sanitizer();
            if san.enabled() {
                src.borrow().outbound.assert_conserved(&san, "src.outbound");
                dst.borrow().inbound.assert_conserved(&san, "dst.inbound");
            }
            if let Some(fabric) = &opts.fabric {
                fabric.grant(now, slice, allow);
            }
            remaining -= allow;

            // Time actually needed within this slice at the granted volume.
            let limiting = allow_src
                .min(allow_dst)
                .min(flow_allow_per_slice.unwrap_or(f64::MAX));
            let frac = if limiting > 0.0 {
                (allow / limiting).min(1.0)
            } else {
                1.0
            };
            let dur = slice.mul_f64(frac);
            if let Some(rec) = &opts.recorder {
                rec.borrow_mut().record_span(now, now + dur, allow);
            }
            m_lane_bytes.add(allow as u64);
            m_lane_tl.record_span(now, now + dur, allow);
            if remaining <= 0.5 {
                ctx.sleep(dur).await;
                break;
            }
            ctx.sleep(slice).await;
        } else {
            // Nothing grantable this slice — wait for refill.
            if flowing {
                let onset = tracer.instant(ctx, "net", lane, "throttle-onset");
                onset
                    .attr("src_tokens", allow_src)
                    .attr("dst_tokens", allow_dst);
                if let Some(label) = opts.label {
                    onset.attr("endpoint", label);
                }
                m_throttles.inc();
                flowing = false;
            }
            stalled_slices += 1;
            ctx.sleep(slice).await;
        }
    }
    span.attr("stalled_slices", stalled_slices);
    let end = ctx.now();
    m_transfers.inc();
    m_stalls.add(stalled_slices);
    m_secs.record_duration(end.duration_since(start));

    TransferStats { bytes, start, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::IdleRefill;
    use skyrise_sim::{join_all, Sim, MIB};

    fn mib(x: f64) -> f64 {
        x * MIB as f64
    }

    fn lambda_nic() -> SharedNic {
        let mk = |burst: f64| {
            RateLimiter::lambda_style(
                mib(burst),
                mib(150.0),
                mib(150.0),
                SimDuration::from_millis(100),
                mib(7.5),
                IdleRefill {
                    threshold: SimDuration::from_millis(500),
                    fraction: 1.0,
                },
            )
        };
        Nic::new(mk(1228.8), mk(1024.0))
    }

    #[test]
    fn transfer_within_burst_runs_at_burst_rate() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            transfer(&ctx, &server, &client, 120 * MIB, &TransferOpts::default()).await
        });
        sim.run();
        let stats = h.try_take().unwrap();
        let gibps = stats.mean_throughput() / (1024.0 * MIB as f64);
        assert!((gibps - 1.2).abs() < 0.05, "throughput {gibps} GiB/s");
    }

    #[test]
    fn transfer_beyond_burst_degrades_to_baseline() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            // 600 MiB: 300 burst + ~300 at 75 MiB/s => ~0.25s + ~4s.
            transfer(&ctx, &server, &client, 600 * MIB, &TransferOpts::default()).await
        });
        sim.run();
        let stats = h.try_take().unwrap();
        let dur = (stats.end - stats.start).as_secs_f64();
        assert!(dur > 3.5 && dur < 4.6, "duration {dur}s");
    }

    #[test]
    fn independent_in_out_buckets() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            // Drain inbound fully.
            transfer(&ctx, &server, &client, 310 * MIB, &TransferOpts::default()).await;
            // Outbound must still be at full burst.
            let out = transfer(&ctx, &client, &server, 100 * MIB, &TransferOpts::default()).await;
            out.mean_throughput()
        });
        sim.run();
        let tput = h.try_take().unwrap() / MIB as f64;
        assert!(tput > 900.0, "outbound unaffected: {tput} MiB/s");
    }

    #[test]
    fn vpc_fabric_caps_aggregate_throughput() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let fabric = Fabric::rate_capped("vpc", mib(100.0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ctx2 = ctx.clone();
                    let fabric = fabric.clone();
                    ctx.spawn(async move {
                        let a = Nic::unlimited();
                        let b = Nic::unlimited();
                        let opts = TransferOpts {
                            fabric: Some(fabric),
                            ..Default::default()
                        };
                        transfer(&ctx2, &a, &b, 100 * MIB, &opts).await
                    })
                })
                .collect();
            let stats = join_all(handles).await;
            stats.iter().map(|s| s.end).max().unwrap()
        });
        sim.run();
        let end = h.try_take().unwrap().as_secs_f64();
        // 400 MiB through a 100 MiB/s fabric: ~4s.
        assert!((end - 4.0).abs() < 0.3, "end {end}s");
    }

    #[test]
    fn flow_cap_limits_single_connection() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let a = Nic::unlimited();
            let b = Nic::unlimited();
            let opts = TransferOpts {
                flows: 1,
                flow_cap: Some(mib(625.0)), // ~5 Gbps
                ..Default::default()
            };
            transfer(&ctx, &a, &b, 625 * MIB, &opts).await
        });
        sim.run();
        let stats = h.try_take().unwrap();
        let dur = (stats.end - stats.start).as_secs_f64();
        assert!((dur - 1.0).abs() < 0.05, "duration {dur}");
    }

    #[test]
    fn multiple_flows_raise_the_cap() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let a = Nic::unlimited();
            let b = Nic::unlimited();
            let opts = TransferOpts {
                flows: 4,
                flow_cap: Some(mib(625.0)),
                ..Default::default()
            };
            transfer(&ctx, &a, &b, 2500 * MIB, &opts).await
        });
        sim.run();
        let stats = h.try_take().unwrap();
        let dur = (stats.end - stats.start).as_secs_f64();
        assert!((dur - 1.0).abs() < 0.05, "duration {dur}");
    }

    #[test]
    fn recorder_sees_all_bytes() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let rec = Rc::new(RefCell::new(IntervalSeries::new(
            SimTime::ZERO,
            SimDuration::from_millis(20),
        )));
        let rec2 = Rc::clone(&rec);
        sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            let opts = TransferOpts {
                recorder: Some(rec2),
                ..Default::default()
            };
            transfer(&ctx, &server, &client, 50 * MIB, &opts).await;
        });
        sim.run();
        let total = rec.borrow().total();
        assert!((total - (50 * MIB) as f64).abs() < 1.0, "total {total}");
    }

    #[test]
    fn telemetry_counts_bytes_and_throttles() {
        let mut sim = Sim::new(2);
        let reg = sim.install_metrics();
        let ctx = sim.ctx();
        sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            let opts = TransferOpts {
                label: Some("s3"),
                ..Default::default()
            };
            // 400 MiB is beyond the 300 MiB burst: the transfer must hit
            // the spiky slotted-refill regime and stall between slots.
            transfer(&ctx, &server, &client, 400 * MIB, &opts).await;
        });
        sim.run();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["net.transfer.count"], 1);
        assert!(snap.counters["net.lane.s3.bytes"] >= 399 * MIB);
        assert!(snap.counters["net.fabric.throttle_onsets"] >= 1);
        assert!(snap.counters["net.transfer.stalled_slices"] >= 1);
        assert_eq!(snap.histograms["net.transfer.secs"].count(), 1);
        assert!(snap.gauges["net.bucket.dst_saturation"] > 0.9);
        assert!(snap.timelines.contains_key("net.lane.s3"));
    }

    #[test]
    fn concurrent_transfers_share_one_nic() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let client = lambda_nic();
            let server = Nic::unlimited();
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let ctx2 = ctx.clone();
                    let client = Rc::clone(&client);
                    let server = Rc::clone(&server);
                    ctx.spawn(async move {
                        transfer(&ctx2, &server, &client, 150 * MIB, &TransferOpts::default()).await
                    })
                })
                .collect();
            join_all(handles).await
        });
        sim.run();
        let stats = h.try_take().unwrap();
        // Combined 300 MiB fits the burst budget: both finish ~0.25s.
        let end = stats
            .iter()
            .map(|s| s.end.as_secs_f64())
            .fold(0.0, f64::max);
        assert!(end < 0.35, "end {end}");
    }
}
