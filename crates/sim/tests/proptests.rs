//! Property-based invariants of the simulation kernel.

use proptest::prelude::*;
use skyrise_sim::{join_all, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events fire in exactly non-decreasing timestamp order, whatever the
    /// spawn order, and the clock ends at the latest deadline.
    #[test]
    fn timers_fire_in_order(delays in prop::collection::vec(0u64..10_000, 1..60)) {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let ctx = sim.ctx();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_micros(d)).await;
                log.borrow_mut().push(ctx.now().as_nanos());
            });
        }
        let end = sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let max_us = *delays.iter().max().expect("non-empty");
        prop_assert_eq!(end.as_nanos(), max_us * 1_000);
    }

    /// Sequential sleeps accumulate exactly.
    #[test]
    fn sleeps_accumulate_exactly(parts in prop::collection::vec(0u64..1_000_000, 1..50)) {
        let mut sim = Sim::new(2);
        let ctx = sim.ctx();
        let parts2 = parts.clone();
        sim.spawn(async move {
            for p in parts2 {
                ctx.sleep(SimDuration::from_nanos(p)).await;
            }
        });
        let end = sim.run();
        prop_assert_eq!(end.as_nanos(), parts.iter().sum::<u64>());
    }

    /// A semaphore of `k` permits never admits more than `k` concurrent
    /// holders and eventually serves everyone.
    #[test]
    fn semaphore_invariants(k in 1usize..8, tasks in 1usize..40) {
        let mut sim = Sim::new(3);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let sem = skyrise_sim::sync::Semaphore::new(k);
            let cur = Rc::new(std::cell::Cell::new(0usize));
            let peak = Rc::new(std::cell::Cell::new(0usize));
            let served = Rc::new(std::cell::Cell::new(0usize));
            let handles: Vec<_> = (0..tasks)
                .map(|i| {
                    let sem = sem.clone();
                    let cur = Rc::clone(&cur);
                    let peak = Rc::clone(&peak);
                    let served = Rc::clone(&served);
                    let ctx2 = ctx.clone();
                    ctx.spawn(async move {
                        let _g = sem.acquire().await;
                        cur.set(cur.get() + 1);
                        peak.set(peak.get().max(cur.get()));
                        ctx2.sleep(SimDuration::from_micros(1 + (i as u64 % 7))).await;
                        cur.set(cur.get() - 1);
                        served.set(served.get() + 1);
                    })
                })
                .collect();
            join_all(handles).await;
            (peak.get(), served.get())
        });
        sim.run();
        let (peak, served) = h.try_take().expect("done");
        prop_assert!(peak <= k);
        prop_assert_eq!(served, tasks);
    }

    /// Replays are bit-identical: the same seed and workload produce the
    /// same event trace; a different seed (almost surely) does not.
    #[test]
    fn replay_determinism(seed in 0u64..1_000, n in 2usize..30) {
        fn trace(seed: u64, n: usize) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..n {
                let ctx = sim.ctx();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    let d = ctx.with_rng(|r| r.gen_range_u64(1, 1_000_000));
                    ctx.sleep(SimDuration::from_nanos(d)).await;
                    log.borrow_mut().push(ctx.now().as_nanos());
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        prop_assert_eq!(trace(seed, n), trace(seed, n));
    }

    /// `IntervalSeries::record_span` conserves mass: however a span aligns
    /// with the bucket grid, the sum over all buckets equals the sum of the
    /// recorded amounts (within f64 tolerance).
    #[test]
    fn record_span_conserves_amount(
        interval_ns in 1u64..5_000_000,
        origin_ns in 0u64..1_000_000,
        spans in prop::collection::vec(
            (0u64..50_000_000, 0u64..10_000_000, 1e-3f64..1e6),
            1..40,
        ),
    ) {
        let mut s = skyrise_sim::IntervalSeries::new(
            skyrise_sim::SimTime::from_nanos(origin_ns),
            SimDuration::from_nanos(interval_ns),
        );
        let mut expected = 0.0f64;
        for &(start_ns, len_ns, amount) in &spans {
            s.record_span(
                skyrise_sim::SimTime::from_nanos(start_ns),
                skyrise_sim::SimTime::from_nanos(start_ns + len_ns),
                amount,
            );
            expected += amount;
        }
        let total = s.total();
        prop_assert!(
            (total - expected).abs() <= 1e-9 * expected.max(1.0),
            "total {} != expected {}", total, expected
        );
    }

    /// Histogram quantiles respect the recorded min/max and are monotone.
    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(1e-6f64..1e3, 1..300)) {
        let mut h = skyrise_sim::Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!(h.min() <= qs[0] + 1e-12);
        prop_assert!(qs[5] <= h.max() + 1e-12);
    }
}
