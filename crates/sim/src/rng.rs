//! Seeded randomness and the distributions the infrastructure models need.
//!
//! Cloud latencies are famously heavy-tailed (the paper measures S3 reads
//! with a 27 ms median and a 10 s maximum — 374× the median). We model such
//! behaviour as a lognormal body mixed with a bounded Pareto tail. All
//! sampling is funnelled through [`SimRng`], one instance per simulation,
//! so a run is a pure function of its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The simulation's random number generator.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Construct from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Standard normal via Box–Muller.
    pub fn gen_std_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gen_std_normal()
    }

    /// Lognormal with parameters `mu`, `sigma` of the underlying normal.
    #[inline]
    pub fn gen_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gen_std_normal()).exp()
    }

    /// Exponential with the given mean (`1/lambda`).
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// Pareto with scale `x_m` and shape `alpha` (> 0): support `[x_m, inf)`.
    pub fn gen_pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        let u = 1.0 - self.gen_f64();
        x_m / u.powf(1.0 / alpha)
    }

    /// Draw a sample from a [`LatencyDist`].
    pub fn sample(&mut self, dist: &LatencyDist) -> f64 {
        dist.sample(self)
    }
}

/// A latency distribution: lognormal body + optional bounded Pareto tail.
///
/// Parameterised by observable quantities (median, p95) rather than raw
/// `mu`/`sigma`, so models can be written straight from the paper's
/// reported quantiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyDist {
    /// `mu` of the lognormal body (`ln(median)`).
    pub mu: f64,
    /// `sigma` of the lognormal body.
    pub sigma: f64,
    /// Probability that a sample is drawn from the tail instead of the body.
    pub tail_prob: f64,
    /// Pareto scale of the tail (tail samples start here).
    pub tail_scale: f64,
    /// Pareto shape of the tail.
    pub tail_shape: f64,
    /// Hard cap applied to every sample (e.g. a client-visible timeout bound).
    pub max: f64,
}

/// z-score of the 95th percentile of the standard normal.
const Z95: f64 = 1.6448536269514722;

impl LatencyDist {
    /// Build from a median and a 95th percentile (both in seconds), plus a
    /// tail specification. `p95` must exceed `median`.
    pub fn from_quantiles(median: f64, p95: f64, tail_prob: f64, max: f64) -> Self {
        assert!(median > 0.0 && p95 > median, "need 0 < median < p95");
        let mu = median.ln();
        let sigma = (p95.ln() - mu) / Z95;
        LatencyDist {
            mu,
            sigma,
            tail_prob,
            // Tail starts around p99 of the body and decays slowly.
            tail_scale: (mu + 2.33 * sigma).exp(),
            tail_shape: 1.2,
            max,
        }
    }

    /// A degenerate (constant) distribution — useful in tests.
    pub fn constant(value: f64) -> Self {
        LatencyDist {
            mu: value.ln(),
            sigma: 0.0,
            tail_prob: 0.0,
            tail_scale: value,
            tail_shape: 1.0,
            max: value,
        }
    }

    /// Median of the body.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Approximate p95 of the body.
    pub fn p95(&self) -> f64 {
        (self.mu + Z95 * self.sigma).exp()
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        let v = if self.tail_prob > 0.0 && rng.gen_bool(self.tail_prob) {
            rng.gen_pareto(self.tail_scale, self.tail_shape)
        } else {
            rng.gen_lognormal(self.mu, self.sigma)
        };
        v.min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    #[test]
    fn determinism() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0, 1_000_000), b.gen_range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| r.gen_exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_support() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(r.gen_pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn latency_dist_hits_requested_quantiles() {
        // S3 Standard read from the paper: median 27 ms, p95 75 ms.
        let d = LatencyDist::from_quantiles(0.027, 0.075, 0.0, 60.0);
        let mut r = rng();
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| r.sample(&d)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        let p95 = samples[n * 95 / 100];
        assert!((med - 0.027).abs() / 0.027 < 0.05, "median {med}");
        assert!((p95 - 0.075).abs() / 0.075 < 0.06, "p95 {p95}");
    }

    #[test]
    fn latency_dist_tail_produces_outliers() {
        let d = LatencyDist::from_quantiles(0.027, 0.075, 0.002, 12.0);
        let mut r = rng();
        let n = 200_000;
        let max = (0..n).map(|_| r.sample(&d)).fold(0.0f64, f64::max);
        // Outliers should reach orders of magnitude above the median.
        assert!(max > 1.0, "max {max}");
        assert!(max <= 12.0, "cap respected: {max}");
    }

    #[test]
    fn constant_dist_is_constant() {
        let d = LatencyDist::constant(0.005);
        let mut r = rng();
        for _ in 0..100 {
            assert!((r.sample(&d) - 0.005).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "median")]
    fn from_quantiles_validates() {
        let _ = LatencyDist::from_quantiles(0.1, 0.05, 0.0, 1.0);
    }
}
