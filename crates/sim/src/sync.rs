//! Asynchronous coordination primitives for simulation tasks.
//!
//! All primitives are single-threaded (`Rc`-based) and deterministic:
//! waiters are released strictly in FIFO order.

use crate::executor::SimCtx;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// mpsc channel
// ---------------------------------------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

/// Create an unbounded mpsc channel. The `ctx` argument pins the channel to
/// a simulation (not otherwise used today, but part of the API contract so
/// primitives can later hook the scheduler).
pub fn channel<T>(_ctx: &SimCtx) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChannelState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value. Returns `Err(v)` if the receiver is gone.
    pub fn send(&self, v: T) -> Result<(), T> {
        let mut s = self.state.borrow_mut();
        if !s.receiver_alive {
            return Err(v);
        }
        s.queue.push_back(v);
        if let Some(w) = s.recv_waker.take() {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            if let Some(w) = s.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next value; resolves to `None` once all senders dropped
    /// and the queue drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.rx.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a oneshot channel; a future.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Create a oneshot channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            state: Rc::clone(&state),
        },
        OneshotReceiver { state },
    )
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, v: T) {
        let mut s = self.state.borrow_mut();
        s.value = Some(v);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
        // Drop impl will mark sender dead; value already present.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.sender_alive = false;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Some(v));
        }
        if !s.sender_alive {
            return Poll::Ready(None);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct Waiter {
    waker: Option<Waker>,
    /// `None` while waiting, `Some(true)` once granted, `Some(false)` if the
    /// acquire future was dropped before being granted.
    state: Cell<WaiterState>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WaiterState {
    Waiting,
    Granted,
    Cancelled,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Rc<RefCell<Waiter>>>,
}

/// A counting semaphore with FIFO fairness.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create with an initial permit count.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Acquire one permit, waiting if none is available. The permit is
    /// released when the returned guard drops.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            waiter: None,
        }
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut s = self.state.borrow_mut();
        if s.permits > 0 && s.waiters.is_empty() {
            s.permits -= 1;
            Some(SemaphoreGuard { sem: self.clone() })
        } else {
            None
        }
    }

    /// Add permits (used by guards on drop and for dynamic resizing).
    pub fn release(&self, n: usize) {
        let mut s = self.state.borrow_mut();
        s.permits += n;
        // Hand permits to waiters in FIFO order.
        while s.permits > 0 {
            let Some(w) = s.waiters.pop_front() else {
                break;
            };
            let w = w.borrow_mut();
            match w.state.get() {
                WaiterState::Cancelled => continue,
                WaiterState::Waiting => {
                    s.permits -= 1;
                    w.state.set(WaiterState::Granted);
                    if let Some(waker) = w.waker.clone() {
                        waker.wake();
                    }
                }
                WaiterState::Granted => unreachable!("granted waiter still queued"),
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphoreGuard> {
        if let Some(w) = &self.waiter {
            let wb = w.borrow_mut();
            match wb.state.get() {
                WaiterState::Granted => {
                    drop(wb);
                    self.waiter = None;
                    return Poll::Ready(SemaphoreGuard {
                        sem: self.sem.clone(),
                    });
                }
                WaiterState::Waiting => {
                    drop(wb);
                    w.borrow_mut().waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                WaiterState::Cancelled => unreachable!("cancelled while polled"),
            }
        }
        // First poll: fast path or enqueue.
        let mut s = self.sem.state.borrow_mut();
        if s.permits > 0 && s.waiters.is_empty() {
            s.permits -= 1;
            drop(s);
            return Poll::Ready(SemaphoreGuard {
                sem: self.sem.clone(),
            });
        }
        let w = Rc::new(RefCell::new(Waiter {
            waker: Some(cx.waker().clone()),
            state: Cell::new(WaiterState::Waiting),
        }));
        s.waiters.push_back(Rc::clone(&w));
        drop(s);
        self.waiter = Some(w);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let state = w.borrow().state.get();
            match state {
                WaiterState::Waiting => w.borrow().state.set(WaiterState::Cancelled),
                // Granted but never returned: give the permit back.
                WaiterState::Granted => self.sem.release(1),
                WaiterState::Cancelled => {}
            }
        }
    }
}

/// RAII permit. Dropping releases the permit.
pub struct SemaphoreGuard {
    sem: Semaphore,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        self.sem.release(1);
    }
}

// ---------------------------------------------------------------------------
// Event (one-time broadcast) and WaitGroup
// ---------------------------------------------------------------------------

struct EventState {
    set: bool,
    waiters: Vec<Waker>,
}

/// A one-time broadcast event: tasks wait until some task calls `set()`.
/// Used for experiment start barriers (the paper synchronises client VMs
/// "via a shared queue upon startup").
#[derive(Clone)]
pub struct Event {
    state: Rc<RefCell<EventState>>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Create an unset event.
    pub fn new() -> Self {
        Event {
            state: Rc::new(RefCell::new(EventState {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Fire the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        let mut s = self.state.borrow_mut();
        s.set = true;
        for w in s.waiters.drain(..) {
            w.wake();
        }
    }

    /// True once fired.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Wait until the event fires (immediate if already fired).
    pub fn wait(&self) -> EventWait {
        EventWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    state: Rc<RefCell<EventState>>,
}

impl Future for EventWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.set {
            Poll::Ready(())
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Counts down from `n`; waiters resume when the count reaches zero.
#[derive(Clone)]
pub struct WaitGroup {
    remaining: Rc<Cell<usize>>,
    event: Event,
}

impl WaitGroup {
    /// Create with an initial count.
    pub fn new(n: usize) -> Self {
        let wg = WaitGroup {
            remaining: Rc::new(Cell::new(n)),
            event: Event::new(),
        };
        if n == 0 {
            wg.event.set();
        }
        wg
    }

    /// Decrement the count; fires waiters at zero. Panics below zero.
    pub fn done(&self) {
        let r = self.remaining.get();
        assert!(r > 0, "WaitGroup::done called more times than count");
        self.remaining.set(r - 1);
        if r == 1 {
            self.event.set();
        }
    }

    /// Wait for the count to reach zero.
    pub fn wait(&self) -> EventWait {
        self.event.wait()
    }

    /// Remaining count.
    pub fn remaining(&self) -> usize {
        self.remaining.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn channel_delivers_in_order() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let (tx, mut rx) = channel::<u32>(&ctx);
            let producer_ctx = ctx.clone();
            ctx.spawn(async move {
                for i in 0..5 {
                    producer_ctx.sleep(SimDuration::from_millis(10)).await;
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_send_after_receiver_drop_errs() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let (tx, rx) = channel::<u32>(&ctx);
            drop(rx);
            tx.send(1).is_err()
        });
        sim.run();
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn oneshot_roundtrip_and_drop() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let (tx, rx) = oneshot::<&'static str>();
            let ctx2 = ctx.clone();
            ctx.spawn(async move {
                ctx2.sleep(SimDuration::from_secs(1)).await;
                tx.send("hello");
            });
            let got = rx.await;

            let (tx2, rx2) = oneshot::<u32>();
            drop(tx2);
            let none = rx2.await;
            (got, none)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (Some("hello"), None));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let sem = Semaphore::new(2);
            let peak = Rc::new(Cell::new(0usize));
            let cur = Rc::new(Cell::new(0usize));
            let handles: Vec<_> = (0..10)
                .map(|_| {
                    let sem = sem.clone();
                    let peak = Rc::clone(&peak);
                    let cur = Rc::clone(&cur);
                    let ctx2 = ctx.clone();
                    ctx.spawn(async move {
                        let _g = sem.acquire().await;
                        cur.set(cur.get() + 1);
                        peak.set(peak.get().max(cur.get()));
                        ctx2.sleep(SimDuration::from_millis(5)).await;
                        cur.set(cur.get() - 1);
                    })
                })
                .collect();
            crate::executor::join_all(handles).await;
            peak.get()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 2);
    }

    #[test]
    fn semaphore_fifo_order() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let sem = Semaphore::new(1);
            let order = Rc::new(RefCell::new(Vec::new()));
            let first = sem.acquire().await;
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let sem = sem.clone();
                    let order = Rc::clone(&order);
                    ctx.spawn(async move {
                        let _g = sem.acquire().await;
                        order.borrow_mut().push(i);
                    })
                })
                .collect();
            // Let all of them enqueue before releasing.
            ctx.sleep(SimDuration::from_millis(1)).await;
            drop(first);
            crate::executor::join_all(handles).await;
            let v = order.borrow().clone();
            v
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn event_releases_all_waiters() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let ev = Event::new();
            let count = Rc::new(Cell::new(0));
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let ev = ev.clone();
                    let count = Rc::clone(&count);
                    ctx.spawn(async move {
                        ev.wait().await;
                        count.set(count.get() + 1);
                    })
                })
                .collect();
            ctx.sleep(SimDuration::from_secs(1)).await;
            assert_eq!(count.get(), 0);
            ev.set();
            crate::executor::join_all(handles).await;
            count.get()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 8);
    }

    #[test]
    fn waitgroup_zero_is_immediately_ready() {
        let mut sim = Sim::new(1);
        let h = sim.spawn(async move {
            let wg = WaitGroup::new(0);
            wg.wait().await;
            true
        });
        sim.run();
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn waitgroup_counts_down() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let wg = WaitGroup::new(3);
            for i in 1..=3u64 {
                let wg = wg.clone();
                let ctx2 = ctx.clone();
                ctx.spawn(async move {
                    ctx2.sleep(SimDuration::from_millis(i * 10)).await;
                    wg.done();
                });
            }
            wg.wait().await;
            ctx.now().as_nanos()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 30_000_000);
    }
}
