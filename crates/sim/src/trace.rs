//! Virtual-time tracing: structured spans and point events.
//!
//! Every event is stamped with virtual [`SimTime`], so traces are as
//! deterministic as the simulation itself: identical seeds yield
//! byte-identical exports. A [`Tracer`] is a cheap cloneable handle; the
//! default (disabled) tracer makes every recording call a no-op branch, so
//! instrumented hot paths pay ~nothing when tracing is off.
//!
//! Two exporters are provided:
//! * [`Tracer::chrome_trace_json`] — Chrome Trace Event Format (load in
//!   Perfetto / `chrome://tracing`), pid = service, tid = lane.
//! * [`Tracer::jsonl`] — flat JSONL event log, one event per line, raw
//!   nanosecond timestamps.

use crate::executor::SimCtx;
use crate::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// An attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (bytes, rows, counts).
    U64(u64),
    /// Float (seconds, rates, fractions).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (keys, function names).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> serde_json::Value {
        match self {
            AttrValue::U64(v) => serde_json::Value::from(*v),
            AttrValue::F64(v) => serde_json::Value::from(*v),
            AttrValue::Bool(v) => serde_json::Value::from(*v),
            AttrValue::Str(v) => serde_json::Value::from(v.as_str()),
        }
    }
}

/// Whether an event covers a time range or marks an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration event (`ph:"X"` in Chrome trace terms).
    Span,
    /// A point event (`ph:"i"`).
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Start (spans) or occurrence (instants) on the virtual timeline.
    pub ts: SimTime,
    /// Span length; `None` for instants and for spans still open at export.
    pub dur: Option<SimDuration>,
    /// Span or instant.
    pub kind: EventKind,
    /// Emitting service — becomes the Chrome-trace process (pid).
    pub service: &'static str,
    /// Instance / worker / request lane — becomes the Chrome-trace thread (tid).
    pub lane: u64,
    /// Event name.
    pub name: &'static str,
    /// Key/value attributes, in recording order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct TraceBuf {
    run_id: u64,
    events: RefCell<Vec<TraceEvent>>,
    next_lane: Cell<u64>,
}

/// A cheap cloneable tracing handle.
///
/// The default tracer is *disabled*: every method is a no-op costing only a
/// branch. An enabled tracer (see [`crate::Sim::install_tracer`]) appends
/// events to a shared buffer in execution order, which — the executor being
/// deterministic — makes exports byte-identical across same-seed runs.
#[derive(Clone, Default)]
pub struct Tracer {
    buf: Option<Rc<TraceBuf>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer tagged with a run id (conventionally the sim seed).
    pub fn new(run_id: u64) -> Self {
        Tracer {
            buf: Some(Rc::new(TraceBuf {
                run_id,
                events: RefCell::new(Vec::new()),
                next_lane: Cell::new(0),
            })),
        }
    }

    /// True when events are being recorded. Gate expensive attribute
    /// construction (string formatting) on this.
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// The run id this tracer was created with (`None` when disabled).
    pub fn run_id(&self) -> Option<u64> {
        self.buf.as_ref().map(|b| b.run_id)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.events.borrow().len())
    }

    /// True when no events have been recorded (or tracing is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh lane (Chrome-trace tid) for a request / instance.
    /// Deterministic: lanes are handed out in recording order.
    pub fn next_lane(&self) -> u64 {
        match &self.buf {
            Some(b) => {
                let lane = b.next_lane.get();
                b.next_lane.set(lane + 1);
                lane
            }
            None => 0,
        }
    }

    fn push(&self, ev: TraceEvent) -> Option<usize> {
        let buf = self.buf.as_ref()?;
        let mut events = buf.events.borrow_mut();
        events.push(ev);
        Some(events.len() - 1)
    }

    /// Open a span starting now. The span closes (its duration is recorded)
    /// when the returned guard drops, or explicitly via [`Span::end`].
    pub fn span(&self, ctx: &SimCtx, service: &'static str, lane: u64, name: &'static str) -> Span {
        if self.buf.is_none() {
            return Span::noop();
        }
        let idx = self.push(TraceEvent {
            ts: ctx.now(),
            dur: None,
            kind: EventKind::Span,
            service,
            lane,
            name,
            attrs: Vec::new(),
        });
        Span {
            buf: self.buf.clone(),
            idx: idx.unwrap_or(0),
            end_ctx: Some(ctx.clone()),
        }
    }

    /// Record a span with explicit start/end — for phases whose timing is
    /// computed rather than awaited (e.g. per-operator slices of one CPU
    /// charge). The returned guard only patches attributes.
    pub fn span_at(
        &self,
        start: SimTime,
        end: SimTime,
        service: &'static str,
        lane: u64,
        name: &'static str,
    ) -> Span {
        if self.buf.is_none() {
            return Span::noop();
        }
        let idx = self.push(TraceEvent {
            ts: start,
            dur: Some(end.duration_since(start)),
            kind: EventKind::Span,
            service,
            lane,
            name,
            attrs: Vec::new(),
        });
        Span {
            buf: self.buf.clone(),
            idx: idx.unwrap_or(0),
            end_ctx: None,
        }
    }

    /// Record a point event at the current virtual time. Attributes can be
    /// chained onto the returned guard.
    pub fn instant(
        &self,
        ctx: &SimCtx,
        service: &'static str,
        lane: u64,
        name: &'static str,
    ) -> Span {
        if self.buf.is_none() {
            return Span::noop();
        }
        let idx = self.push(TraceEvent {
            ts: ctx.now(),
            dur: None,
            kind: EventKind::Instant,
            service,
            lane,
            name,
            attrs: Vec::new(),
        });
        Span {
            buf: self.buf.clone(),
            idx: idx.unwrap_or(0),
            end_ctx: None,
        }
    }

    /// Run `f` over the recorded events (empty slice when disabled).
    pub fn with_events<T>(&self, f: impl FnOnce(&[TraceEvent]) -> T) -> T {
        match &self.buf {
            Some(b) => f(&b.events.borrow()),
            None => f(&[]),
        }
    }

    /// Export this run as Chrome Trace Event Format JSON (pid = service,
    /// tid = lane). Load the file in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json_multi(&[(String::new(), self)])
    }

    /// Export this run as a flat JSONL event log: one JSON object per line
    /// with raw nanosecond timestamps, in execution order.
    pub fn jsonl(&self) -> String {
        jsonl_multi(&[(String::new(), self)])
    }
}

/// Merge several traced runs into one Chrome-trace JSON document. Each run
/// gets its services namespaced as `label/service` (label omitted when
/// empty), so multi-seed experiments stay distinguishable in Perfetto.
pub fn chrome_trace_json_multi(runs: &[(String, &Tracer)]) -> String {
    // Deterministic pid assignment: first-seen order across runs/events.
    let mut pid_names: Vec<String> = Vec::new();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_ev = |out: &mut String, first: &mut bool, v: serde_json::Value| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&v.to_string());
        *first = false;
    };
    for (label, tracer) in runs {
        tracer.with_events(|events| {
            for ev in events {
                let pname = if label.is_empty() {
                    ev.service.to_string()
                } else {
                    format!("{label}/{}", ev.service)
                };
                let pid = match pid_names.iter().position(|p| *p == pname) {
                    Some(i) => i,
                    None => {
                        pid_names.push(pname.clone());
                        let pid = pid_names.len() - 1;
                        push_ev(
                            &mut out,
                            &mut first,
                            serde_json::json!({
                                "name": "process_name",
                                "ph": "M",
                                "pid": pid,
                                "tid": 0,
                                "args": {"name": pname},
                            }),
                        );
                        pid
                    }
                };
                let mut args = serde_json::Map::new();
                for (k, v) in &ev.attrs {
                    args.insert((*k).to_string(), v.to_json());
                }
                let ts_us = ev.ts.as_nanos() as f64 / 1e3;
                let v = match ev.kind {
                    EventKind::Span => serde_json::json!({
                        "name": ev.name,
                        "ph": "X",
                        "pid": pid,
                        "tid": ev.lane,
                        "ts": ts_us,
                        "dur": ev.dur.unwrap_or(SimDuration::ZERO).as_nanos() as f64 / 1e3,
                        "args": args,
                    }),
                    EventKind::Instant => serde_json::json!({
                        "name": ev.name,
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": ev.lane,
                        "ts": ts_us,
                        "args": args,
                    }),
                };
                push_ev(&mut out, &mut first, v);
            }
        });
    }
    out.push_str("\n]}\n");
    out
}

/// Merge several traced runs into one JSONL log. Each line carries the run
/// label (when non-empty) and run id alongside the event fields.
pub fn jsonl_multi(runs: &[(String, &Tracer)]) -> String {
    let mut out = String::new();
    for (label, tracer) in runs {
        let run_id = tracer.run_id().unwrap_or(0);
        tracer.with_events(|events| {
            for (seq, ev) in events.iter().enumerate() {
                let mut obj = serde_json::Map::new();
                if !label.is_empty() {
                    obj.insert("run".into(), serde_json::Value::from(label.as_str()));
                }
                obj.insert("run_id".into(), serde_json::Value::from(run_id));
                obj.insert("seq".into(), serde_json::Value::from(seq));
                obj.insert("ts_ns".into(), serde_json::Value::from(ev.ts.as_nanos()));
                obj.insert(
                    "kind".into(),
                    serde_json::Value::from(match ev.kind {
                        EventKind::Span => "span",
                        EventKind::Instant => "instant",
                    }),
                );
                obj.insert("service".into(), serde_json::Value::from(ev.service));
                obj.insert("lane".into(), serde_json::Value::from(ev.lane));
                obj.insert("name".into(), serde_json::Value::from(ev.name));
                if let Some(d) = ev.dur {
                    obj.insert("dur_ns".into(), serde_json::Value::from(d.as_nanos()));
                }
                let mut attrs = serde_json::Map::new();
                for (k, v) in &ev.attrs {
                    attrs.insert((*k).to_string(), v.to_json());
                }
                if !attrs.is_empty() {
                    obj.insert("attrs".into(), serde_json::Value::Object(attrs));
                }
                out.push_str(&serde_json::Value::Object(obj).to_string());
                out.push('\n');
            }
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------------

/// Guard for an in-flight span (or a handle onto an instant / pre-closed
/// span, for attribute patching). Dropping a live span stamps its duration
/// with the current virtual time.
pub struct Span {
    buf: Option<Rc<TraceBuf>>,
    idx: usize,
    /// `Some` while the span is open and should be closed on drop.
    end_ctx: Option<SimCtx>,
}

impl Span {
    fn noop() -> Self {
        Span {
            buf: None,
            idx: 0,
            end_ctx: None,
        }
    }

    /// True when this span is actually recording.
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Attach an attribute. No-op (the value is not converted) when tracing
    /// is disabled. Returns `&self` for chaining.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) -> &Self {
        if let Some(buf) = &self.buf {
            buf.events.borrow_mut()[self.idx]
                .attrs
                .push((key, value.into()));
        }
        self
    }

    /// Close the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(buf), Some(ctx)) = (&self.buf, &self.end_ctx) {
            // Skip the duration patch if the simulation is already gone.
            if let Some(now) = ctx.try_now() {
                let mut events = buf.events.borrow_mut();
                let ev = &mut events[self.idx];
                ev.dur = Some(now.duration_since(ev.ts));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut sim = Sim::new(1);
        let ctx = sim.ctx();
        let tracer = Tracer::disabled();
        let t2 = tracer.clone();
        sim.spawn(async move {
            let span = t2.span(&ctx, "svc", 0, "work");
            span.attr("bytes", 42u64);
            ctx.sleep(SimDuration::from_millis(5)).await;
            t2.instant(&ctx, "svc", 0, "tick");
        });
        sim.run();
        assert!(!tracer.enabled());
        assert_eq!(tracer.len(), 0);
        assert_eq!(tracer.jsonl(), "");
    }

    #[test]
    fn span_durations_follow_virtual_time() {
        let mut sim = Sim::new(1);
        let tracer = sim.install_tracer();
        let ctx = sim.ctx();
        let t2 = tracer.clone();
        sim.spawn(async move {
            let span = t2.span(&ctx, "svc", 3, "work");
            span.attr("bytes", 42u64).attr("cold", true);
            ctx.sleep(SimDuration::from_millis(5)).await;
            drop(span);
            t2.instant(&ctx, "svc", 3, "tick").attr("n", 1u64);
        });
        sim.run();
        assert_eq!(tracer.len(), 2);
        tracer.with_events(|evs| {
            assert_eq!(evs[0].name, "work");
            assert_eq!(evs[0].dur, Some(SimDuration::from_millis(5)));
            assert_eq!(evs[0].lane, 3);
            assert_eq!(evs[0].attrs.len(), 2);
            assert_eq!(evs[1].kind, EventKind::Instant);
            assert_eq!(evs[1].ts, SimTime::from_nanos(5_000_000));
        });
    }

    #[test]
    fn exports_are_valid_json_and_deterministic() {
        fn run() -> (String, String) {
            let mut sim = Sim::new(7);
            let tracer = sim.install_tracer();
            let ctx = sim.ctx();
            let t2 = tracer.clone();
            sim.spawn(async move {
                for i in 0..3u64 {
                    let span = t2.span(&ctx, "net", t2.next_lane(), "transfer");
                    span.attr("bytes", 100 * i);
                    let d = ctx.with_rng(|r| r.gen_range_u64(1, 50));
                    ctx.sleep(SimDuration::from_micros(d)).await;
                }
                t2.instant(&ctx, "storage", 0, "throttle-503");
            });
            sim.run();
            (tracer.chrome_trace_json(), tracer.jsonl())
        }
        let (chrome, jsonl) = run();
        let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().expect("traceEvents array");
        // 4 events + 2 process_name metadata records.
        assert_eq!(events.len(), 6);
        assert!(events.iter().any(|e| e["ph"] == "X"));
        assert!(events.iter().any(|e| e["ph"] == "i"));
        assert!(events.iter().any(|e| e["ph"] == "M"));
        for line in jsonl.lines() {
            let _: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        }
        assert_eq!(jsonl.lines().count(), 4);
        // Byte-identical across same-seed runs.
        let (chrome2, jsonl2) = run();
        assert_eq!(chrome, chrome2);
        assert_eq!(jsonl, jsonl2);
    }

    #[test]
    fn span_at_records_computed_windows() {
        let sim = Sim::new(1);
        let tracer = sim.install_tracer();
        tracer
            .span_at(
                SimTime::from_nanos(100),
                SimTime::from_nanos(400),
                "worker",
                9,
                "filter",
            )
            .attr("rows", 1000u64);
        tracer.with_events(|evs| {
            assert_eq!(evs[0].ts, SimTime::from_nanos(100));
            assert_eq!(evs[0].dur, Some(SimDuration::from_nanos(300)));
        });
    }

    #[test]
    fn lanes_are_sequential() {
        let sim = Sim::new(1);
        let tracer = sim.install_tracer();
        assert_eq!(tracer.next_lane(), 0);
        assert_eq!(tracer.next_lane(), 1);
        assert_eq!(Tracer::disabled().next_lane(), 0);
    }
}
